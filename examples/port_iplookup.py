#!/usr/bin/env python3
"""Porting an LPM router with the flow-cache accelerator.

The paper's Section 2 motivation: "The latency of LPM (longest prefix
match) functions could vary by orders of magnitude depending on whether
the program uses the 'flow cache'."  This example:

1. builds the `iplookup` element with a 512-rule table and profiles it
   on a skewed traffic mix;
2. asks Clara's algorithm identifier where the LPM loop is;
3. ports the NF three ways — naive, Clara (flow cache on the identified
   loop), and a hand-written expert port — and compares them across
   rule-table sizes (the paper's Figure 10(c)).

Run:  python examples/port_iplookup.py
"""

from repro.click.elements import build_element
from repro.core import Clara, TrainConfig
from repro.nic.compiler import compile_module
from repro.nic.machine import WorkloadCharacter
from repro.nic.port import PortConfig
from repro.nic.regions import REGION_IMEM
from repro.workload.spec import WorkloadSpec


def build_rules(n_rules: int) -> dict:
    """A deterministic sorted rule table (longest prefixes first)."""
    prefixes, masklens, ports = [], [], []
    for i in range(n_rules):
        masklen = 32 - (i * 24 // max(n_rules - 1, 1))  # 32 down to 8
        prefixes.append((i * 0x01000193) & (0xFFFFFFFF << (32 - masklen))
                        & 0xFFFFFFFF)
        masklens.append(masklen)
        ports.append(i % 8)
    return {
        "n_rules": n_rules,
        "rule_prefix": prefixes,
        "rule_masklen": masklens,
        "rule_port": ports,
    }


def main() -> None:
    print("Training Clara (quick mode, cached)...")
    clara = Clara(seed=0).train(TrainConfig.quick(), cache="auto")
    workload = WorkloadSpec(name="edge", n_flows=20_000, zipf_alpha=1.0,
                            n_packets=400)
    placement = {
        "rule_prefix": REGION_IMEM,
        "rule_masklen": REGION_IMEM,
        "rule_port": REGION_IMEM,
    }

    print(f"{'rules':>6s} {'naive lat(us)':>14s} {'clara lat(us)':>14s}"
          f" {'speedup':>8s}  identified region")
    for n_rules in (16, 64, 256, 1024):
        element = build_element("iplookup", n_rules=n_rules)
        analysis = clara.analyze(element, workload,
                                 state=build_rules(n_rules))
        lpm_regions = [
            insight.subject
            for insight in analysis.report.of_type("accelerator")
            if insight.value["accel"] == "lpm"
        ]
        config = clara.port_config(analysis)
        config.placement.update(placement)

        naive = clara.nic.simulate(
            compile_module(analysis.prepared.module,
                           PortConfig(placement=placement)),
            analysis.block_freq,
            analysis.workload,
            cores=12,
        )
        wc = WorkloadCharacter(
            packet_bytes=workload.packet_bytes,
            flow_cache_hit_rate=analysis.workload.flow_cache_hit_rate,
            lpm_miss_penalty_cycles=naive.per_packet_cycles,
        )
        tuned = clara.nic.simulate(
            compile_module(analysis.prepared.module, config),
            analysis.block_freq,
            wc,
            cores=12,
        )
        print(f"{n_rules:6d} {naive.latency_us:14.2f}"
              f" {tuned.latency_us:14.2f}"
              f" {naive.latency_us / tuned.latency_us:7.1f}x"
              f"  {', '.join(lpm_regions) or '(none found)'}")


if __name__ == "__main__":
    main()
