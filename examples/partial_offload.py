#!/usr/bin/env python3
"""Partial offloading: splitting a firewall between host and NIC.

The paper's Section 6 sketches partial offloading as future work:
"a partial offloading scenario might split the NF program between host
CPUs and SmartNICs ... Clara would also need to reason about the
communication between SmartNICs and the host."  This example runs the
extension that does exactly that.

A stateful firewall has a *fast path* (established-connection lookups)
and a *slow path* (ACL evaluation + flow setup on TCP SYNs).  When SYNs
are rare, punting the slow path to the host keeps almost all packets on
the NIC while freeing NIC instruction store and state for the fast
path.  The advisor evaluates candidate splits built from the profiled
per-packet paths and reports when splitting beats full offload.

Run:  python examples/partial_offload.py
"""

from repro.click.elements import build_element, install_state
from repro.click.interp import Interpreter
from repro.core.partition import PartitionAdvisor
from repro.core.prepare import prepare_element
from repro.nic.machine import WorkloadCharacter
from repro.workload import generate_trace
from repro.workload.spec import WorkloadSpec


N_ACL = 64


def profile_firewall(syn_fraction: float):
    # A long ACL makes flow setup expensive: only the final
    # catch-all rule admits traffic, so every SYN walks all 64 rules.
    element = build_element("firewall", n_acl=N_ACL)
    prepared = prepare_element(element)
    interp = Interpreter(prepared.module)
    prefixes = [0xFFFFFFFF] * (N_ACL - 1) + [0]
    masks = [0xFFFFFFFF] * (N_ACL - 1) + [0]
    actions = [0] * (N_ACL - 1) + [1]
    install_state(
        interp,
        {
            "n_acl": N_ACL,
            "acl_prefix": prefixes,
            "acl_mask": masks,
            "acl_action": actions,
        },
    )
    spec = WorkloadSpec(
        name=f"syn{syn_fraction:.0%}",
        n_flows=64,
        n_packets=500,
        syn_fraction=syn_fraction,
    )
    profile = interp.run_trace(generate_trace(spec, seed=0))
    return prepared, profile


def main() -> None:
    # Two micro-engines only: the NIC, not the wire, is the bottleneck,
    # so where the slow path runs actually matters.
    advisor = PartitionAdvisor(cores=2)
    workload = WorkloadCharacter(packet_bytes=256, emem_cache_hit_rate=0.4)

    for syn_fraction in (0.02, 0.2, 0.6):
        prepared, profile = profile_firewall(syn_fraction)
        best, evaluated = advisor.advise(prepared, profile, workload)
        print(f"\n=== firewall, {syn_fraction:.0%} SYNs "
              f"({len(profile.path_counts)} distinct packet paths) ===")
        for partition in sorted(
            evaluated, key=lambda p: -p.throughput_mpps
        ):
            if partition.is_full_offload:
                kind = "full offload"
            elif partition.punt_fraction >= 1.0:
                kind = "no offload (all host)"
            else:
                kind = f"split ({len(partition.host_blocks)} host blocks)"
            marker = "  <== best" if partition is best else ""
            print(f"  {kind:28s} punt {partition.punt_fraction:5.1%}"
                  f"  predicted {partition.throughput_mpps:6.2f} Mpps{marker}")


if __name__ == "__main__":
    main()
