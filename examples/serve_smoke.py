#!/usr/bin/env python3
"""Smoke-drive the ``clara serve`` daemon end to end, out of process.

This is what CI's ``serve-smoke`` job runs: it exercises the daemon
exactly as an operator would —

1. launch ``python -m repro serve`` as a subprocess on a free port
   (pass a saved artifact path as ``argv[1]`` to skip training;
   otherwise the daemon trains quick-mode through the artifact cache);
2. poll ``GET /healthz`` until the daemon reports ready;
3. drive one request through every endpoint — analyze, lint,
   colocation — and check each response envelope; the analyze request
   carries an ``X-Clara-Request-Id`` and the echo is asserted (header
   and envelope);
4. confirm the error mapping (an unknown element must be a 404 with a
   typed error body, not a 500);
5. read the correlated events back from ``GET /v1/events`` and export
   the whole journal with ``clara events --jsonl serve_events.jsonl``
   (CI uploads the file as a build artifact);
6. scrape ``GET /metrics``, check the request counters moved, and run
   the payload through the strict exposition-format validator;
7. SIGTERM the daemon and require a clean exit status 0.

Any failed check raises, which exits non-zero and fails the job.

Run:  python examples/serve_smoke.py [artifact.pkl]
"""

import json
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

#: generous deadline: a cold cache means the daemon trains first.
READY_DEADLINE_S = 600


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def request(url, payload=None, timeout=120, request_id=None):
    """``(status, parsed_body)``; HTTP error statuses are returned.
    ``request_id`` rides the ``X-Clara-Request-Id`` header."""
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    if request_id is not None:
        headers["X-Clara-Request-Id"] = request_id
    req = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, err.read(), dict(err.headers)


#: wire schema this client speaks (see repro.serve.schemas.WIRE_SCHEMA)
WIRE_SCHEMA = 4


def envelope_of(body, expected_kind):
    env = json.loads(body.decode("utf-8"))
    assert env["schema"] == WIRE_SCHEMA, env
    assert env["kind"] == expected_kind, env
    assert env["error"] is None, env
    return env["result"]


def wait_ready(base, proc):
    deadline = time.monotonic() + READY_DEADLINE_S
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                f"daemon exited early with status {proc.returncode}"
            )
        try:
            status, body, _headers = request(f"{base}/healthz", timeout=5)
        except (urllib.error.URLError, ConnectionError, TimeoutError):
            time.sleep(0.5)
            continue
        if status == 200:
            return envelope_of(body, "health")
        time.sleep(0.5)
    raise SystemExit(f"daemon not ready after {READY_DEADLINE_S}s")


def main() -> None:
    port = free_port()
    base = f"http://127.0.0.1:{port}"
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--port", str(port),
        "--colocation-programs", "6", "--colocation-groups", "4",
    ]
    if len(sys.argv) > 1:
        cmd += ["--load", sys.argv[1]]
    print(f"launching: {' '.join(cmd)}")
    proc = subprocess.Popen(cmd)
    try:
        health = wait_ready(base, proc)
        assert health["ready"] is True, health
        print(f"ready: wire schema {health['wire_schema']},"
              f" kinds {health['request_kinds']}")

        rid = "smoke-analyze-1"
        status, body, headers = request(f"{base}/v1/analyze", {
            "element": "aggcounter",
            "workload": {"name": "smoke", "n_flows": 4096,
                         "n_packets": 60},
        }, request_id=rid)
        assert status == 200, (status, body)
        assert headers.get("X-Clara-Request-Id") == rid, headers
        env = json.loads(body.decode("utf-8"))
        assert env["request_id"] == rid, env
        result = envelope_of(body, "analysis_result")
        assert result["report"]["nf_name"] == "aggcounter", result
        assert result["port_config"]["cores"] >= 1, result
        print("analyze: ok (request id echoed)")

        status, body, _headers = request(f"{base}/v1/lint",
                                         {"elements": ["aggcounter"]})
        assert status == 200, (status, body)
        result = envelope_of(body, "lint_run")
        assert result["reports"][0]["module"] == "aggcounter", result
        print(f"lint: ok ({result['n_warnings']} warning(s))")

        status, body, _headers = request(f"{base}/v1/lint", {
            "elements": ["aggcounter"], "target": "dpu-offpath",
        })
        assert status == 200, (status, body)
        result = envelope_of(body, "lint_run")
        assert result["target"] == "dpu-offpath", result
        print("lint (dpu-offpath): ok")

        status, body, _headers = request(f"{base}/v1/colocation", {
            "elements": ["aggcounter", "udpcount", "iplookup"],
            "workload": {"name": "smoke", "n_packets": 50},
        })
        assert status == 200, (status, body)
        result = envelope_of(body, "colocation_ranking")
        assert len(result["pairs"]) == 3, result
        print("colocation: ok (3 ranked pairs)")

        status, body, _headers = request(f"{base}/v1/analyze",
                                         {"element": "nope"})
        assert status == 404, (status, body)
        error = json.loads(body.decode("utf-8"))["error"]
        assert error["type"] == "UnknownElementError", error
        print("error mapping: ok (unknown element -> 404)")

        status, body, _headers = request(f"{base}/v1/analyze", {
            "element": "aggcounter", "target": "no-such-nic",
        })
        assert status == 404, (status, body)
        error = json.loads(body.decode("utf-8"))["error"]
        assert error["type"] == "UnknownTargetError", error
        print("error mapping: ok (unknown target -> 404)")

        status, body, _headers = request(
            f"{base}/v1/events?request_id={rid}"
        )
        assert status == 200, (status, body)
        result = envelope_of(body, "events")
        kinds = [e["kind"] for e in result["events"]]
        assert "request_start" in kinds, kinds
        assert all(e["request_id"] == rid for e in result["events"]), \
            result["events"]
        print(f"events: ok ({result['n_returned']} event(s) for {rid})")

        # The CLI client over the same endpoint, exporting the full
        # journal as JSON lines (CI uploads this as a build artifact).
        subprocess.run(
            [sys.executable, "-m", "repro", "events", "--url", base,
             "--jsonl", "serve_events.jsonl"],
            check=True,
        )
        with open("serve_events.jsonl", encoding="utf-8") as handle:
            n_lines = sum(1 for _ in handle)
        assert n_lines > 0, "empty event journal export"
        print(f"clara events: ok ({n_lines} journal line(s) exported)")

        status, body, _headers = request(f"{base}/metrics")
        assert status == 200, status
        text = body.decode("utf-8")
        assert "http_requests_total" in text, text[:400]
        assert 'endpoint="/v1/analyze"' in text, text[:400]
        assert "slo_latency_seconds" in text, text[:400]
        from repro.obs import validate_exposition

        problems = validate_exposition(text)
        assert not problems, problems
        print("metrics: ok (exposition format validated)")
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        returncode = proc.wait(timeout=30)
    assert returncode == 0, f"daemon exited {returncode}, expected 0"
    print("serve smoke: all checks passed, clean shutdown")


if __name__ == "__main__":
    main()
