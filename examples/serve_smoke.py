#!/usr/bin/env python3
"""Smoke-drive the ``clara serve`` daemon end to end, out of process.

This is what CI's ``serve-smoke`` job runs: it exercises the daemon
exactly as an operator would —

1. launch ``python -m repro serve`` as a subprocess on a free port
   (pass a saved artifact path as ``argv[1]`` to skip training;
   otherwise the daemon trains quick-mode through the artifact cache);
2. poll ``GET /healthz`` until the daemon reports ready;
3. drive one request through every endpoint — analyze, lint,
   colocation — and check each response envelope;
4. confirm the error mapping (an unknown element must be a 404 with a
   typed error body, not a 500);
5. scrape ``GET /metrics`` and check the request counters moved;
6. SIGTERM the daemon and require a clean exit status 0.

Any failed check raises, which exits non-zero and fails the job.

Run:  python examples/serve_smoke.py [artifact.pkl]
"""

import json
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

#: generous deadline: a cold cache means the daemon trains first.
READY_DEADLINE_S = 600


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def request(url, payload=None, timeout=120):
    """``(status, parsed_body)``; HTTP error statuses are returned."""
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


#: wire schema this client speaks (see repro.serve.schemas.WIRE_SCHEMA)
WIRE_SCHEMA = 3


def envelope_of(body, expected_kind):
    env = json.loads(body.decode("utf-8"))
    assert env["schema"] == WIRE_SCHEMA, env
    assert env["kind"] == expected_kind, env
    assert env["error"] is None, env
    return env["result"]


def wait_ready(base, proc):
    deadline = time.monotonic() + READY_DEADLINE_S
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                f"daemon exited early with status {proc.returncode}"
            )
        try:
            status, body = request(f"{base}/healthz", timeout=5)
        except (urllib.error.URLError, ConnectionError, TimeoutError):
            time.sleep(0.5)
            continue
        if status == 200:
            return envelope_of(body, "health")
        time.sleep(0.5)
    raise SystemExit(f"daemon not ready after {READY_DEADLINE_S}s")


def main() -> None:
    port = free_port()
    base = f"http://127.0.0.1:{port}"
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--port", str(port),
        "--colocation-programs", "6", "--colocation-groups", "4",
    ]
    if len(sys.argv) > 1:
        cmd += ["--load", sys.argv[1]]
    print(f"launching: {' '.join(cmd)}")
    proc = subprocess.Popen(cmd)
    try:
        health = wait_ready(base, proc)
        assert health["ready"] is True, health
        print(f"ready: wire schema {health['wire_schema']},"
              f" kinds {health['request_kinds']}")

        status, body = request(f"{base}/v1/analyze", {
            "element": "aggcounter",
            "workload": {"name": "smoke", "n_flows": 4096,
                         "n_packets": 60},
        })
        assert status == 200, (status, body)
        result = envelope_of(body, "analysis_result")
        assert result["report"]["nf_name"] == "aggcounter", result
        assert result["port_config"]["cores"] >= 1, result
        print("analyze: ok")

        status, body = request(f"{base}/v1/lint",
                               {"elements": ["aggcounter"]})
        assert status == 200, (status, body)
        result = envelope_of(body, "lint_run")
        assert result["reports"][0]["module"] == "aggcounter", result
        print(f"lint: ok ({result['n_warnings']} warning(s))")

        status, body = request(f"{base}/v1/lint", {
            "elements": ["aggcounter"], "target": "dpu-offpath",
        })
        assert status == 200, (status, body)
        result = envelope_of(body, "lint_run")
        assert result["target"] == "dpu-offpath", result
        print("lint (dpu-offpath): ok")

        status, body = request(f"{base}/v1/colocation", {
            "elements": ["aggcounter", "udpcount", "iplookup"],
            "workload": {"name": "smoke", "n_packets": 50},
        })
        assert status == 200, (status, body)
        result = envelope_of(body, "colocation_ranking")
        assert len(result["pairs"]) == 3, result
        print("colocation: ok (3 ranked pairs)")

        status, body = request(f"{base}/v1/analyze", {"element": "nope"})
        assert status == 404, (status, body)
        error = json.loads(body.decode("utf-8"))["error"]
        assert error["type"] == "UnknownElementError", error
        print("error mapping: ok (unknown element -> 404)")

        status, body = request(f"{base}/v1/analyze", {
            "element": "aggcounter", "target": "no-such-nic",
        })
        assert status == 404, (status, body)
        error = json.loads(body.decode("utf-8"))["error"]
        assert error["type"] == "UnknownTargetError", error
        print("error mapping: ok (unknown target -> 404)")

        status, body = request(f"{base}/metrics")
        assert status == 200, status
        text = body.decode("utf-8")
        assert "http_requests_total" in text, text[:400]
        assert 'endpoint="/v1/analyze"' in text, text[:400]
        print("metrics: ok")
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        returncode = proc.wait(timeout=30)
    assert returncode == 0, f"daemon exited {returncode}, expected 0"
    print("serve smoke: all checks passed, clean shutdown")


if __name__ == "__main__":
    main()
