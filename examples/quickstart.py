#!/usr/bin/env python3
"""Quickstart: generate offloading insights for an unported NF.

This walks the full Clara workflow from the paper's Figure 2:

1. train the one-time models (instruction predictor, algorithm
   identifier, scale-out cost model) — here in "quick" size so the
   script finishes in seconds;
2. take an *unported* Click element (the UDPCount flow counter) and a
   workload specification;
3. print the insight report: predicted per-block instruction counts,
   counted memory accesses, reverse-ported API profiles, accelerator
   opportunities, suggested core count, state placement, and
   coalescing packs;
4. turn the insights into a port configuration and compare the Clara
   port against a naive port on the simulated SmartNIC.

Run:  python examples/quickstart.py
"""

from repro.click.elements import build_element
from repro.core import Clara, TrainConfig
from repro.nic.compiler import compile_module
from repro.nic.port import PortConfig
from repro.workload.spec import WorkloadSpec


def main() -> None:
    print("Training Clara (quick mode, cached)...")
    clara = Clara(seed=0).train(TrainConfig.quick(), cache="auto")

    # An unported legacy NF and the traffic we expect it to serve.
    element = build_element("udpcount", flow_entries=262_144)
    workload = WorkloadSpec(
        name="datacenter-udp",
        n_flows=50_000,
        packet_bytes=256,
        udp_fraction=1.0,
        n_packets=400,
    )

    print(f"Analyzing '{element.name}' under workload '{workload.name}'...\n")
    analysis = clara.analyze(element, workload)
    print(analysis.report.render())

    # Apply the insights and measure both ports on the simulated NIC.
    config = clara.port_config(analysis)
    cores = max(config.cores, 8)
    naive = clara.nic.simulate(
        compile_module(analysis.prepared.module, PortConfig()),
        analysis.block_freq,
        analysis.workload,
        cores=cores,
    )
    tuned = clara.nic.simulate(
        compile_module(analysis.prepared.module, config),
        analysis.block_freq,
        analysis.workload,
        cores=cores,
    )
    print(f"Port comparison on the simulated SmartNIC ({cores} cores):")
    print(f"  naive port: {naive.throughput_mpps:6.2f} Mpps,"
          f" {naive.latency_us:6.2f} us")
    print(f"  Clara port: {tuned.throughput_mpps:6.2f} Mpps,"
          f" {tuned.latency_us:6.2f} us")
    speedup = naive.latency_us / tuned.latency_us
    print(f"  latency improvement: {speedup:.2f}x")


if __name__ == "__main__":
    main()
