#!/usr/bin/env python3
"""Planning NF colocation on one SmartNIC.

A deployment question from the paper's Section 4.5: given several NFs
and room for two on the NIC, which pair should share it?  This example
trains the colocation ranker on synthesized programs, ranks all pairs
of four real NFs, and validates the ranking against full colocation
simulations.

Run:  python examples/colocation_planner.py
"""

import itertools

from repro.click.elements import build_element, initial_state, install_state
from repro.click.frontend import lower_element
from repro.click.interp import Interpreter
from repro.core.colocation import ColocationAdvisor, make_candidate
from repro.core.prepare import prepare_element
from repro.workload import characterize, generate_trace
from repro.workload.spec import WorkloadSpec

NFS = ("mazunat", "dnsproxy", "udpcount", "webgen")


def main() -> None:
    advisor = ColocationAdvisor(seed=0)
    print("Building the synthesized training pool...")
    pool, pool_workload = advisor.build_candidate_pool(n_programs=16)
    print(f"Training the LambdaMART ranker on {len(pool)} candidates...")
    advisor.fit(pool, pool_workload, n_groups=25, group_size=5)

    spec = WorkloadSpec(name="prod", n_flows=200_000, zipf_alpha=0.4,
                        n_packets=300)
    candidates = {}
    for nf in NFS:
        nf_spec = WorkloadSpec(
            name="prod", n_flows=200_000, zipf_alpha=0.4, n_packets=300,
            udp_fraction=1.0 if nf in ("udpcount", "dnsproxy") else 0.0,
        )
        element = build_element(nf)
        module = lower_element(element)
        interp = Interpreter(module)
        install_state(interp, initial_state(element))
        profile = interp.run_trace(generate_trace(nf_spec, seed=0))
        candidates[nf] = make_candidate(prepare_element(element), profile)
        c = candidates[nf]
        print(f"  {nf:10s} compute/pkt={c.compute_per_pkt:7.0f}"
              f" state-mem/pkt={c.memory_per_pkt:5.1f}"
              f" intensity={c.arithmetic_intensity:7.1f}")

    pairs = list(itertools.combinations(NFS, 2))
    order = advisor.rank_pairs(
        [(candidates[a], candidates[b]) for a, b in pairs]
    )
    workload = characterize(spec)
    print("\nClara's colocation ranking (friendliest first), with the")
    print("measured total-throughput loss for validation:")
    for position, index in enumerate(order, start=1):
        a, b = pairs[index]
        result = advisor.measure_pair(candidates[a], candidates[b], workload)
        print(f"  #{position} {a}+{b:10s} measured loss"
              f" {result.total_throughput_loss:6.1%}"
              f"  (latency +{result.total_latency_loss:.0%})")
    best = pairs[order[0]]
    print(f"\nRecommendation: colocate {best[0]} with {best[1]}.")


if __name__ == "__main__":
    main()
