#!/usr/bin/env python3
"""Exploring multicore scale-out for a ported NF.

Reproduces the paper's Figure 11 workflow on one NF: sweep the core
count under two traffic regimes, print the throughput/latency curves,
mark the knee, and compare against Clara's GBDT suggestion — all
without touching real hardware.

Run:  python examples/scaleout_explorer.py
"""

from dataclasses import replace

from repro.click.elements import build_element, initial_state, install_state
from repro.click.frontend import lower_element
from repro.click.interp import Interpreter
from repro.core import Clara, TrainConfig
from repro.nic.compiler import compile_module
from repro.nic.port import PortConfig
from repro.workload import LARGE_FLOWS, SMALL_FLOWS, characterize, generate_trace

NF = "mazunat"


def main() -> None:
    print("Training Clara (quick mode, cached)...")
    clara = Clara(seed=0).train(TrainConfig.quick(), cache="auto")

    element = build_element(NF)
    module = lower_element(element)
    program = compile_module(module, PortConfig())

    for spec0 in (LARGE_FLOWS, SMALL_FLOWS):
        spec = replace(spec0, n_packets=300)
        interp = Interpreter(module)
        install_state(interp, initial_state(element))
        profile = interp.run_trace(generate_trace(spec, seed=0))
        freq = {
            b: c / profile.packets for b, c in profile.block_counts.items()
        }
        workload = characterize(spec)
        sweep = clara.nic.sweep_cores(program, freq, workload)
        knee = clara.nic.optimal_cores(sweep)

        analysis = clara.analyze(element, spec)
        suggested = analysis.report.suggested_cores

        print(f"\n=== {NF} under '{spec0.name}' "
              f"(EMEM cache hit {workload.emem_cache_hit_rate:.0%}) ===")
        print(f"{'cores':>6s} {'tput(Mpps)':>11s} {'lat(us)':>9s}"
              f" {'ratio':>7s}")
        for cores in (1, 2, 4, 8, 12, 16, 24, 32, 40, 48, 60):
            perf = sweep[cores]
            marker = "  <-- knee" if cores == knee else ""
            print(f"{cores:6d} {perf.throughput_mpps:11.2f}"
                  f" {perf.latency_us:9.2f} {perf.tput_lat_ratio:7.2f}"
                  f"{marker}")
        print(f"measured knee: {knee} cores; Clara suggests: {suggested}")


if __name__ == "__main__":
    main()
