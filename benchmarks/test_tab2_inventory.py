"""Table 2: the evaluated Click programs — LoC, statefulness, compiled
instruction counts, stateful memory accesses, framework API calls.

Regenerates the inventory over our element library (same NF names as
the paper where the paper names them).
"""

import pytest

from repro.click.elements import TABLE2_ELEMENTS, build_element
from repro.click.render import element_loc
from repro.core.prepare import prepare_element
from repro.nic.compiler import compile_module


@pytest.fixture(scope="module")
def inventory():
    rows = []
    for name in TABLE2_ELEMENTS:
        element = build_element(name)
        prepared = prepare_element(element)
        program = compile_module(prepared.module)
        rows.append(
            {
                "name": name,
                "loc": element_loc(element),
                "instr": program.handler.n_total,
                "stateful": element.is_stateful,
                "mem": prepared.annotation.n_mem_stateful,
                "api": prepared.annotation.n_api,
                "blocks": len(prepared.blocks),
            }
        )
    return rows


def test_tab2_inventory(inventory, write_result, benchmark):
    lines = [
        "Table 2: evaluated Click elements",
        f"{'element':14s} {'LoC':>5s} {'NIC instr':>9s} {'State':>6s}"
        f" {'Mem':>5s} {'API':>4s} {'blocks':>7s}",
    ]
    for row in inventory:
        lines.append(
            f"{row['name']:14s} {row['loc']:5d} {row['instr']:9d}"
            f" {'yes' if row['stateful'] else 'no':>6s} {row['mem']:5d}"
            f" {row['api']:4d} {row['blocks']:7d}"
        )
    write_result("tab2_inventory", "\n".join(lines))

    benchmark.pedantic(
        lambda: prepare_element(build_element("mininat")), rounds=5,
        iterations=1,
    )

    by_name = {r["name"]: r for r in inventory}
    # Paper-shape claims about the inventory:
    assert len(inventory) == 17
    # The first five elements are stateless, the rest stateful.
    for name in TABLE2_ELEMENTS[:5]:
        assert not by_name[name]["stateful"], name
        assert by_name[name]["mem"] == 0
    for name in TABLE2_ELEMENTS[5:]:
        assert by_name[name]["stateful"], name
    # The big NFs dwarf the micro-elements (paper: Mazu-NAT at 4127
    # instructions vs tcpack's 142; our NIC library keeps hashmap
    # walks out of line, so the visible gap is smaller but present).
    assert by_name["mazunat"]["instr"] > 2 * by_name["tcpack"]["instr"]
    assert by_name["mazunat"]["api"] > 2 * by_name["tcpack"]["api"]
    assert by_name["ipclassifier"]["instr"] > by_name["iplookup"]["instr"]
    # Every element calls into the framework API.
    assert all(r["api"] >= 3 for r in inventory)
