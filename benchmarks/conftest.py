"""Shared fixtures for the evaluation benchmarks.

Every benchmark regenerates one table or figure of the paper's Section
5, writes its rows into ``results/<artifact>.txt``, and asserts the
paper's qualitative claims (who wins, by roughly what factor, where
crossovers fall).  Heavy artifacts — the trained Clara instance, host
profiles — are session-scoped.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.click.elements import build_element, initial_state, install_state
from repro.click.frontend import lower_element
from repro.click.interp import Interpreter
from repro.core.artifacts import TrainConfig
from repro.core.pipeline import Clara
from repro.nic.machine import NICModel
from repro.workload import generate_trace
from repro.workload.spec import WorkloadSpec

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    def _write(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text)
        print(f"\n{text}")

    return _write


@pytest.fixture(scope="session")
def nic_model() -> NICModel:
    return NICModel()


#: One config for every benchmark module, so a single cached artifact
#: (under ``$REPRO_CLARA_CACHE`` / ``~/.cache/repro-clara``) serves all
#: of them — and subsequent benchmark runs skip training entirely.
BENCHMARK_TRAIN_CONFIG = TrainConfig(
    n_predictor_programs=160,
    n_scaleout_programs=60,
    predictor_epochs=40,
)


@pytest.fixture(scope="session")
def clara(nic_model) -> Clara:
    """A fully trained Clara instance (the expensive one-time phase,
    parallelized and artifact-cached)."""
    instance = Clara(nic=nic_model, seed=0)
    instance.train(
        BENCHMARK_TRAIN_CONFIG,
        workers=min(os.cpu_count() or 1, 8),
        cache="auto",
    )
    return instance


def profile_element(name, spec: WorkloadSpec, state=None, seed=0,
                    mutate=None, **params):
    """Lower + host-profile one element; returns (element, module,
    profile, block frequency map).  ``mutate(packet, index)`` can
    adjust trace packets (e.g. to direct traffic at a generator NF's
    configured flow)."""
    element = build_element(name, **params)
    module = lower_element(element)
    interp = Interpreter(module, seed=seed)
    install_state(interp, initial_state(element))
    if state:
        install_state(interp, state)
    trace = generate_trace(spec, seed=seed)
    if mutate is not None:
        for i, packet in enumerate(trace):
            mutate(packet, i)
    profile = interp.run_trace(trace)
    freq = {b: c / profile.packets for b, c in profile.block_counts.items()}
    return element, module, profile, freq


@pytest.fixture(scope="session")
def profiler():
    return profile_element
