"""Figure 14: NF colocation analysis.

(a) ranking accuracy by training objective — total throughput loss is
    the best objective: top-1 70+%, top-3 85+% on synthesized NF
    groups;
(b)/(c) the four real NFs (NF1 Mazu-NAT, NF2 DNSProxy, NF3 UDPCount,
    NF4 Webgen), six colocation pairs: throughput degradation varies
    across pairs and Clara's ranking orders them well; latency rises
    under colocation even though the ranking objective is throughput.
"""

from dataclasses import replace
import itertools

import numpy as np
import pytest

from repro.core.colocation import (
    ColocationAdvisor,
    OBJECTIVES,
    make_candidate,
    ranking_accuracy,
)
from repro.core.prepare import prepare_element
from repro.click.elements import build_element
from repro.workload import characterize
from repro.workload.spec import WorkloadSpec

REAL_NFS = ("mazunat", "dnsproxy", "udpcount", "webgen")


@pytest.fixture(scope="module")
def pool_and_workload(nic_model):
    advisor = ColocationAdvisor(nic=nic_model, seed=0)
    pool, wc = advisor.build_candidate_pool(n_programs=20)
    return advisor, pool, wc


def _evaluate_objective(nic_model, pool, wc, objective, seed, n_groups=25,
                        group_size=5):
    advisor = ColocationAdvisor(nic=nic_model, objective=objective, seed=seed)
    advisor.fit(pool, wc, n_groups=n_groups, group_size=group_size, seed=seed)
    # Always score against the paper's headline measure: who actually
    # loses the least total throughput.
    scorer = ColocationAdvisor(nic=nic_model,
                               objective="total_throughput_loss", seed=seed)
    rng = np.random.default_rng(seed + 1)
    losses_per_query, rankings = [], []
    for _ in range(25):
        idx = rng.choice(len(pool), size=(group_size, 2))
        pairs = [(pool[i], pool[j]) for i, j in idx if i != j]
        if len(pairs) < 4:
            continue
        losses_per_query.append(
            [scorer.pair_loss(scorer.measure_pair(a, b, wc)) for a, b in pairs]
        )
        rankings.append(advisor.rank_pairs(pairs))
    return (
        ranking_accuracy(losses_per_query, rankings, k=1),
        ranking_accuracy(losses_per_query, rankings, k=2),
        ranking_accuracy(losses_per_query, rankings, k=3),
    )


def test_fig14a_ranking_accuracy(pool_and_workload, nic_model, write_result,
                                 benchmark):
    _advisor, pool, wc = pool_and_workload
    rows = [
        "Figure 14(a): colocation ranking accuracy by training objective",
        f"{'objective':26s} {'top-1':>6s} {'top-2':>6s} {'top-3':>6s}",
    ]
    accs = {}
    for objective in OBJECTIVES:
        top1, top2, top3 = _evaluate_objective(
            nic_model, pool, wc, objective, seed=0
        )
        accs[objective] = (top1, top2, top3)
        rows.append(f"{objective:26s} {top1:6.2f} {top2:6.2f} {top3:6.2f}")
    write_result("fig14a_ranking", "\n".join(rows))
    benchmark(lambda: None)

    # Paper: total throughput loss achieves 70+% top-1 and 85+% top-3.
    t1, _t2, t3 = accs["total_throughput_loss"]
    assert t1 >= 0.7
    assert t3 >= 0.85
    # And it is at least as good as the latency objectives at top-1.
    assert t1 >= max(accs["total_latency_loss"][0],
                     accs["average_latency_loss"][0]) - 0.05


@pytest.fixture(scope="module")
def real_nf_pairs(pool_and_workload, nic_model, profiler):
    advisor, pool, wc = pool_and_workload
    advisor.fit(pool, wc, n_groups=30, group_size=5)
    spec = WorkloadSpec(name="fig14", n_flows=200_000, zipf_alpha=0.4,
                        n_packets=300)
    candidates = {}
    for nf in REAL_NFS:
        nf_spec = replace(
            spec, udp_fraction=1.0 if nf in ("udpcount", "dnsproxy") else 0.0
        )
        _el, module, profile, freq = profiler(nf, nf_spec)
        prepared = prepare_element(build_element(nf))
        candidates[nf] = make_candidate(prepared, profile)
    pairs = list(itertools.combinations(REAL_NFS, 2))
    results = {
        pair: advisor.measure_pair(candidates[pair[0]], candidates[pair[1]],
                                   characterize(spec))
        for pair in pairs
    }
    return advisor, candidates, pairs, results


def test_fig14bc_real_nf_pairs(real_nf_pairs, write_result, benchmark):
    advisor, candidates, pairs, results = real_nf_pairs
    rows = [
        "Figure 14(b)/(c): colocation of the four real NFs, six pairs",
        f"{'pair':22s} {'tput loss':>10s} {'lat increase':>13s}",
    ]
    tput_losses = {}
    for pair in pairs:
        res = results[pair]
        tput_losses[pair] = res.total_throughput_loss
        rows.append(
            f"{pair[0]}+{pair[1]:12s} {res.total_throughput_loss:10.1%}"
            f" {res.total_latency_loss:13.1%}"
        )
    # Clara's predicted friendliness ranking over the six pairs.
    pair_objs = [(candidates[a], candidates[b]) for a, b in pairs]
    order = advisor.rank_pairs(pair_objs)
    ranked = [pairs[i] for i in order]
    rows.append(
        "Clara ranking (friendliest first): "
        + "  ".join(f"{a}+{b}" for a, b in ranked)
    )
    write_result("fig14bc_pairs", "\n".join(rows))
    benchmark(lambda: None)

    losses = list(tput_losses.values())
    # Degradation varies across pairs (paper: up to ~15 points spread).
    assert max(losses) - min(losses) > 0.02
    assert all(l >= -1e-9 for l in losses)
    # Paper: "Clara has correctly ranked all top-3 choices for these
    # NFs" — the predicted top-3 set matches the measured top-3 set,
    # and the #1 suggestion is among the two actually-friendliest.
    true_order = sorted(pairs, key=lambda p: tput_losses[p])
    assert set(ranked[:3]) == set(true_order[:3])
    assert ranked[0] in true_order[:2]
    # Latency also degrades under contention for the worst pair.
    worst_pair = max(pairs, key=lambda p: tput_losses[p])
    assert results[worst_pair].total_latency_loss > 0.0
