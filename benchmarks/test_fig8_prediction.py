"""Figure 8 + Section 5.2: cross-platform instruction prediction.

"Clara outperforms DNN, CNN and AutoML in instruction prediction" —
WMAPE per NF, LSTM vs the histogram-feature baselines, trained on the
same synthesized dataset; plus the memory-counting accuracy claim
(96.4%+) and overall WMAPE (paper: 10.74% on synthesized, 6.0%-22.3%
across real NFs).
"""

import numpy as np
import pytest

from repro.click.elements import build_element
from repro.core.predictor import histogram_dataset, PredictorDataset
from repro.core.prepare import prepare_element
from repro.ml.automl import AutoMLRegressor
from repro.ml.cnn import CNNRegressor
from repro.ml.encoding import encode_blocks, histogram_features
from repro.ml.metrics import wmape
from repro.ml.mlp import MLPRegressor
from repro.nic.compiler import compile_module

#: The representative NFs of Figure 8.
FIG8_NFS = (
    "tcpack",
    "udpipencap",
    "timefilter",
    "anonipaddr",
    "tcpresp",
    "forcetcp",
    "aggcounter",
    "tcpgen",
)


@pytest.fixture(scope="module")
def baselines(clara):
    """DNN/CNN/AutoML trained on exactly Clara's synthesized data."""
    dataset = PredictorDataset.synthesize(n_programs=80, seed=0)
    vocab = clara.predictor.vocab
    X_hist, y = histogram_dataset(vocab, dataset)
    dnn = MLPRegressor(X_hist.shape[1], hidden=(64, 32), lr=2e-3)
    dnn.fit(X_hist, y, epochs=60, seed=0)
    automl = AutoMLRegressor(seed=0).fit(X_hist, y)
    X_seq, mask = encode_blocks(
        vocab, dataset.sequences, clara.predictor.max_len
    )
    cnn = CNNRegressor(vocab.size, n_filters=16, seed=0)
    cnn.fit(X_seq, mask, y, epochs=30, seed=0)
    return {"vocab": vocab, "dnn": dnn, "cnn": cnn, "automl": automl}


def _nf_ground_truth(name):
    prepared = prepare_element(build_element(name))
    program = compile_module(prepared.module)
    gt = {b.name: float(b.n_compute) for b in program.handler.blocks}
    sequences = prepared.block_token_sequences()
    y = np.array([gt[b.name] for b in prepared.blocks])
    return prepared, sequences, y


def test_fig8_prediction(clara, baselines, write_result, benchmark):
    rows = [
        "Figure 8: instruction-prediction WMAPE per NF (lower is better)",
        f"{'NF':12s} {'Clara':>7s} {'DNN':>7s} {'CNN':>7s} {'AutoML':>7s}",
    ]
    per_model = {"clara": [], "dnn": [], "cnn": [], "automl": []}
    for name in FIG8_NFS:
        prepared, sequences, y = _nf_ground_truth(name)
        clara_pred = clara.predictor.predict_sequences(sequences)
        X_hist = histogram_features(baselines["vocab"], sequences)
        dnn_pred = baselines["dnn"].predict(X_hist)
        automl_pred = baselines["automl"].predict(X_hist)
        X_seq, mask = encode_blocks(
            baselines["vocab"], sequences, clara.predictor.max_len
        )
        cnn_pred = baselines["cnn"].predict(X_seq, mask)
        scores = {
            "clara": wmape(y, clara_pred),
            "dnn": wmape(y, dnn_pred),
            "cnn": wmape(y, cnn_pred),
            "automl": wmape(y, automl_pred),
        }
        for key, value in scores.items():
            per_model[key].append(value)
        rows.append(
            f"{name:12s} {scores['clara']:7.3f} {scores['dnn']:7.3f}"
            f" {scores['cnn']:7.3f} {scores['automl']:7.3f}"
        )
    means = {k: float(np.mean(v)) for k, v in per_model.items()}
    rows.append(
        f"{'MEAN':12s} {means['clara']:7.3f} {means['dnn']:7.3f}"
        f" {means['cnn']:7.3f} {means['automl']:7.3f}"
    )
    write_result("fig8_prediction", "\n".join(rows))

    # Timed kernel: LSTM inference over one NF's blocks.
    prepared, sequences, _y = _nf_ground_truth("tcpack")
    benchmark(lambda: clara.predictor.predict_sequences(sequences))

    # Paper claims: Clara wins on average; per-NF errors in a sane band.
    assert means["clara"] < means["dnn"]
    assert means["clara"] < means["cnn"]
    assert means["clara"] < means["automl"]
    assert means["clara"] < 0.30  # paper: 6.0%-22.3% per NF
    assert max(per_model["clara"]) < 0.55


def test_fig8_synthetic_holdout_wmape(clara, write_result, benchmark):
    """Held-out synthesized programs: the paper's converged WMAPE is
    10.74%; ours must land under 20%."""
    holdout = PredictorDataset.synthesize(n_programs=15, seed=99)
    score = benchmark.pedantic(
        lambda: clara.predictor.evaluate(holdout), rounds=1, iterations=1
    )
    write_result(
        "fig8_holdout",
        f"Held-out synthesized-program WMAPE: {score:.4f}"
        f" (paper: 0.1074 after convergence)",
    )
    assert score < 0.20


def test_memory_counting_accuracy(clara, write_result, benchmark):
    """Section 3.2: counting loads/stores is 96.4%-100% accurate.  In
    the simulator the stateful-memory mapping is 1:1 by construction,
    so counting must be exact on every library NF."""
    from repro.click.elements import ELEMENT_BUILDERS

    rows = ["Memory access counting vs compiled mem ops (Section 3.2)"]
    exact = 0
    total = 0
    for name in sorted(ELEMENT_BUILDERS):
        prepared = prepare_element(build_element(name))
        program = compile_module(prepared.module)
        for block, asm in zip(prepared.blocks, program.handler.blocks):
            counted = block.n_mem_stateful
            compiled = sum(
                1 for i in asm.instructions
                if i.is_memory and (i.region or "").startswith("state:")
            )
            total += 1
            if counted == compiled:
                exact += 1
    accuracy = exact / total
    rows.append(f"blocks exact: {exact}/{total} = {accuracy:.3%}")
    write_result("memory_counting", "\n".join(rows))
    benchmark(lambda: prepare_element(build_element("aggcounter")))
    assert accuracy >= 0.964  # the paper's lower bound
