"""Figure 12: NF state placement (small flows).

"On average, Clara's placement strategies reduce memory access latency
by 33%, and they improve throughput by 89% as compared to the baseline
[all data structures in EMEM]."  Includes the paper's UDPCount
anecdote: the small hot classifier/counter structures leave EMEM.
"""

from dataclasses import replace

import pytest

from repro.core.placement import PlacementAdvisor
from repro.nic.compiler import compile_module
from repro.nic.port import PortConfig
from repro.workload import SMALL_FLOWS, characterize

NFS = {
    # Production-sized tables so placement decisions are nontrivial.
    "mazunat": dict(map_entries=262_144),
    "dnsproxy": dict(cache_entries=262_144),
    "webgen": dict(max_flows=2048),
    "udpcount": dict(flow_entries=262_144),
}


@pytest.fixture(scope="module")
def placement_results(profiler, nic_model):
    spec = replace(SMALL_FLOWS, n_packets=300)
    out = {}
    advisor = PlacementAdvisor()
    for nf, params in NFS.items():
        nf_spec = replace(
            spec, udp_fraction=1.0 if nf in ("udpcount", "dnsproxy") else 0.0
        )
        _el, module, profile, freq = profiler(nf, nf_spec, **params)
        wc = characterize(nf_spec)
        solution = advisor.advise(module, profile)
        # Both ports use the checksum engine: Figure 12 isolates state
        # placement ("the baseline solution does not programmatically
        # manipulate state placement; all data structures are
        # allocated in EMEM"), and a software-checksum-bound NF would
        # mask any memory effect.
        naive = nic_model.simulate(
            compile_module(module, PortConfig(use_checksum_accel=True)),
            freq, wc, cores=5,
        )
        clara = nic_model.simulate(
            compile_module(
                module,
                PortConfig(
                    use_checksum_accel=True, placement=solution.assignment
                ),
            ),
            freq, wc, cores=5,
        )
        out[nf] = {
            "naive": naive,
            "clara": clara,
            "assignment": solution.assignment,
        }
    return out


def test_fig12_placement(placement_results, write_result, benchmark):
    rows = [
        "Figure 12: NF state placement vs all-EMEM baseline (small flows)",
        f"{'NF':10s} {'port':7s} {'tput(Mpps)':>11s} {'lat(us)':>9s}",
    ]
    tput_gains, lat_cuts = [], []
    for nf, data in placement_results.items():
        for label in ("naive", "clara"):
            perf = data[label]
            rows.append(
                f"{nf:10s} {label:7s} {perf.throughput_mpps:11.2f}"
                f" {perf.latency_us:9.2f}"
            )
        tput_gains.append(
            data["clara"].throughput_mpps / data["naive"].throughput_mpps - 1.0
        )
        lat_cuts.append(
            1.0 - data["clara"].latency_us / data["naive"].latency_us
        )
    avg_tput = sum(tput_gains) / len(tput_gains)
    avg_lat = sum(lat_cuts) / len(lat_cuts)
    rows.append(
        f"average: throughput {avg_tput:+.0%}, latency {-avg_lat:.0%}"
        " (paper: +89% tput, -33% latency)"
    )
    write_result("fig12_placement", "\n".join(rows))
    benchmark(lambda: None)

    # Paper shape: placement never hurts, and the average gains are
    # substantial on both axes.
    assert all(g >= -1e-9 for g in tput_gains)
    assert all(c >= -1e-9 for c in lat_cuts)
    assert avg_tput > 0.25
    assert avg_lat > 0.10


def test_fig12_udpcount_anecdote(placement_results, write_result, benchmark):
    """Section 5.5: "in 'UDPCount', small but frequently accessed data
    structures, such as the ipclassifier and the counter, are allocated
    in [SRAM] rather than EMEM"."""
    assignment = placement_results["udpcount"]["assignment"]
    benchmark(lambda: None)
    assert assignment["classifier"] != "emem"
    assert assignment["counter"] != "emem"
    assert assignment["flow_table"] == "emem"  # too big for SRAM
    write_result(
        "fig12_udpcount",
        "UDPCount placement: "
        + ", ".join(f"{k}->{v}" for k, v in sorted(assignment.items())),
    )
