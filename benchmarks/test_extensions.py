"""Extension experiments beyond the paper's evaluation (DESIGN.md §6):
partial offloading and model interpretability."""


from repro.click.elements import build_element, install_state
from repro.click.interp import Interpreter
from repro.core.explain import render_explanations, svm_top_patterns
from repro.core.partition import PartitionAdvisor
from repro.core.prepare import prepare_element
from repro.nic.machine import WorkloadCharacter
from repro.workload import generate_trace
from repro.workload.spec import WorkloadSpec


def test_ext_partial_offload(write_result, benchmark):
    """A firewall with an expensive, rarely taken ACL slow path: the
    partition advisor punts the slow path to the host and beats full
    offload when the NIC is the bottleneck; as the slow-path share
    grows, the split's margin erodes."""
    n_acl = 64
    advisor = PartitionAdvisor(cores=2)
    workload = WorkloadCharacter(packet_bytes=256, emem_cache_hit_rate=0.4)
    rows = ["Extension: partial offloading of the firewall slow path",
            f"{'SYN share':>10s} {'full offload':>13s} {'best split':>11s}"
            f" {'punt':>6s} {'no offload':>11s}"]
    margins = {}
    for syn_fraction in (0.02, 0.2, 0.6):
        element = build_element("firewall", n_acl=n_acl)
        prepared = prepare_element(element)
        interp = Interpreter(prepared.module)
        install_state(
            interp,
            {
                "n_acl": n_acl,
                "acl_prefix": [0xFFFFFFFF] * (n_acl - 1) + [0],
                "acl_mask": [0xFFFFFFFF] * (n_acl - 1) + [0],
                "acl_action": [0] * (n_acl - 1) + [1],
            },
        )
        spec = WorkloadSpec(name="t", n_flows=64, n_packets=400,
                            syn_fraction=syn_fraction)
        profile = interp.run_trace(generate_trace(spec, seed=0))
        _best, evaluated = advisor.advise(prepared, profile, workload)
        full = next(p for p in evaluated if p.is_full_offload)
        none = next(
            p for p in evaluated if p.host_blocks and p.punt_fraction >= 1.0
        )
        splits = [
            p for p in evaluated
            if p.host_blocks and 0.0 < p.punt_fraction < 1.0
        ]
        best_split = max(splits, key=lambda p: p.throughput_mpps)
        margins[syn_fraction] = (
            best_split.throughput_mpps / full.throughput_mpps
        )
        rows.append(
            f"{syn_fraction:10.0%} {full.throughput_mpps:13.2f}"
            f" {best_split.throughput_mpps:11.2f}"
            f" {best_split.punt_fraction:6.1%}"
            f" {none.throughput_mpps:11.2f}"
        )
    rows.append(
        "split/full margins: "
        + ", ".join(f"{k:.0%}: {v:.2f}x" for k, v in margins.items())
    )
    write_result("ext_partition", "\n".join(rows))
    benchmark(lambda: None)

    # Splitting wins when the slow path is rare, and the advantage
    # shrinks as the punted share grows (PCIe crossings accumulate).
    assert margins[0.02] > 1.05
    assert margins[0.02] > margins[0.6]


def test_ext_explanations(clara, write_result, benchmark):
    """Interpretability report: GBDT importances + SVM idioms."""
    text = render_explanations(clara.scaleout.model, clara.identifier)
    write_result("ext_explanations", text)
    benchmark(lambda: None)

    crc_patterns = svm_top_patterns(clara.identifier, "crc", top=8)
    flat = " ".join(t for p in crc_patterns for t in p.pattern)
    # Section 5.3: CRC's distinctive features are bitwise ops + shifts.
    assert any(op in flat for op in ("xor", "lshr", "shl", "and"))
    assert "feature importances" in text
