"""Figure 13: memory access coalescing.

"We use the number of cores required to saturate the bandwidth as the
performance metric.  Effective packing leads to fewer memory access
stalls, so full bandwidth can be achieved with fewer cores."  Paper:
latency cut 42%-68%, core counts reduced 25%-55% on aggcounter,
timefilter, webtcp, tcpgen.
"""


import pytest

from repro.core.coalescing import CoalescingAdvisor
from repro.nic.compiler import compile_module
from repro.nic.machine import WorkloadCharacter
from repro.nic.port import PortConfig
from repro.workload.spec import WorkloadSpec

ELEMENTS = ("aggcounter", "timefilter", "webtcp", "tcpgen")

SPEC = WorkloadSpec(name="fig13", n_flows=50_000, zipf_alpha=0.4,
                    n_packets=300)

STATE = {
    "timefilter": {"min_gap_ns": 10_000},
    "tcpgen": {"sport": 80, "dport": 1234, "iss": 1000},
    "webtcp": {"object_size": 6000},
}


def _tcpgen_traffic(packet, index):
    """Point half the trace at tcpgen's configured flow so its
    ACK-processing path executes (a generator NF only reacts to its
    own connection's return traffic)."""
    if index % 2 == 0 and packet.tcp is not None:
        packet.tcp["th_sport"] = 1234
        packet.tcp["th_dport"] = 80
        packet.tcp["th_ack"] = 1001


MUTATE = {"tcpgen": _tcpgen_traffic}


def cores_to_saturate(nic_model, program, freq, wc, fraction=0.95):
    """Smallest core count reaching ``fraction`` of 60-core tput."""
    sweep = nic_model.sweep_cores(program, freq, wc)
    peak = sweep[60].throughput_mpps
    for c in sorted(sweep):
        if sweep[c].throughput_mpps >= fraction * peak:
            return c, sweep[c]
    return 60, sweep[60]


@pytest.fixture(scope="module")
def coalescing_results(profiler, nic_model):
    out = {}
    advisor = CoalescingAdvisor(seed=0)
    wc = WorkloadCharacter(packet_bytes=SPEC.packet_bytes,
                           emem_cache_hit_rate=0.25)
    for nf in ELEMENTS:
        spec = SPEC
        _el, module, profile, freq = profiler(
            nf, spec, state=STATE.get(nf), mutate=MUTATE.get(nf)
        )
        plan = advisor.advise(module, profile)
        naive_prog = compile_module(module, PortConfig())
        packed_prog = compile_module(module, PortConfig(packs=plan.packs))
        n_cores, n_perf = cores_to_saturate(nic_model, naive_prog, freq, wc)
        p_cores, p_perf = cores_to_saturate(nic_model, packed_prog, freq, wc)
        fixed = 12
        out[nf] = {
            "plan": plan,
            "naive_cores": n_cores,
            "packed_cores": p_cores,
            "naive_lat": nic_model.simulate(
                naive_prog, freq, wc, cores=fixed
            ).latency_us,
            "packed_lat": nic_model.simulate(
                packed_prog, freq, wc, cores=fixed
            ).latency_us,
        }
    return out


def test_fig13_coalescing(coalescing_results, write_result, benchmark):
    rows = [
        "Figure 13: memory access coalescing",
        f"{'element':11s} {'packs':>5s} {'cores naive':>12s}"
        f" {'cores clara':>12s} {'lat naive':>10s} {'lat clara':>10s}",
    ]
    lat_cuts, core_cuts = [], []
    for nf, data in coalescing_results.items():
        rows.append(
            f"{nf:11s} {len(data['plan'].packs):5d} {data['naive_cores']:12d}"
            f" {data['packed_cores']:12d} {data['naive_lat']:10.2f}"
            f" {data['packed_lat']:10.2f}"
        )
        lat_cuts.append(1.0 - data["packed_lat"] / data["naive_lat"])
        core_cuts.append(
            1.0 - data["packed_cores"] / max(data["naive_cores"], 1)
        )
    rows.append(
        f"latency cuts: {[f'{c:.0%}' for c in lat_cuts]}"
        f"  core cuts: {[f'{c:.0%}' for c in core_cuts]}"
        "  (paper: 42%-68% latency, 25%-55% cores)"
    )
    write_result("fig13_coalescing", "\n".join(rows))
    benchmark(lambda: None)

    # Every element gains on latency; saturation never needs more
    # cores; at least half the elements need strictly fewer cores.
    assert sum(1 for c in lat_cuts if c > 0.05) >= 3, lat_cuts
    assert all(c >= -1e-9 for c in core_cuts), core_cuts
    assert max(lat_cuts) > 0.25
    assert max(core_cuts) > 0.2


def test_fig13_tcpgen_cluster_anecdote(coalescing_results, write_result,
                                       benchmark):
    """Section 5.6: tcpgen's ACK-path variables cluster; good_pkt and
    bad_pkt are never packed together."""
    plan = coalescing_results["tcpgen"]["plan"]
    benchmark(lambda: None)
    clusters = plan.clusters
    assert clusters["send_next"] == clusters["recv_next"]
    together = [
        pack for pack in plan.packs
        if "good_pkt" in pack.variables and "bad_pkt" in pack.variables
    ]
    assert not together
    write_result(
        "fig13_tcpgen_clusters",
        "tcpgen packs: "
        + "; ".join("+".join(p.variables) for p in plan.packs),
    )
