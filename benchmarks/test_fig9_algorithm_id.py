"""Figure 9: algorithm-identification precision/recall.

"Clara achieves a precision of 96.6% and recall of 83.3% for these
accelerators" and "other models and AutoML have on-par performance,
because the accelerator algorithms have very distinct features."
We compare the SPE+SVM pipeline against kNN/DNN/DT/GBDT/AutoML on the
same features, evaluated on a held-out split of the curated corpus.
"""

import numpy as np
import pytest

from repro.core.algorithms import (
    ACCEL_CLASSES,
    AlgorithmIdentifier,
    build_algorithm_corpus,
)
from repro.ml.automl import AutoMLClassifier
from repro.ml.gbdt import GBDTClassifier
from repro.ml.knn import KNNClassifier
from repro.ml.metrics import precision_recall
from repro.ml.mlp import MLPClassifier
from repro.ml.tree import DecisionTreeClassifier


@pytest.fixture(scope="module")
def split_corpus():
    corpus = build_algorithm_corpus(seed=0, n_negatives=40)
    rng = np.random.default_rng(1)
    n = len(corpus.sequences)
    order = rng.permutation(n)
    test_idx = set(order[: n // 4].tolist())
    train, test = {"seq": [], "lab": []}, {"seq": [], "lab": []}
    for i in range(n):
        bucket = test if i in test_idx else train
        bucket["seq"].append(corpus.sequences[i])
        bucket["lab"].append(corpus.labels[i])
    return train, test


@pytest.fixture(scope="module")
def fitted(split_corpus):
    train, _test = split_corpus

    class _TrainCorpus:
        sequences = train["seq"]
        labels = train["lab"]

        @staticmethod
        def binary_labels(positive):
            return [1 if l == positive else 0 for l in train["lab"]]

    identifier = AlgorithmIdentifier(seed=0).fit(_TrainCorpus)
    return identifier


def _evaluate(predict_fn, sequences, labels):
    """Micro-averaged precision/recall over the accelerator classes."""
    tp = fp = fn = 0
    predictions = predict_fn(sequences)
    for accel in ACCEL_CLASSES:
        y = np.array([1 if l == accel else 0 for l in labels])
        p = np.array([1 if pred == accel else 0 for pred in predictions])
        pr = precision_recall(y, p)
        tp += pr["tp"]
        fp += pr["fp"]
        fn += pr["fn"]
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    return precision, recall


def test_fig9_algorithm_id(fitted, split_corpus, write_result, benchmark):
    train, test = split_corpus
    identifier = fitted

    # Baseline models consume the identifier's own feature pipeline
    # (SPE + manual features for the CRC extractor), so the comparison
    # isolates the classifier.
    classes = ["none", *ACCEL_CLASSES]

    def features_for(sequences):
        return np.concatenate(
            [identifier.features(a, sequences) for a in ACCEL_CLASSES], axis=1
        )

    X_train = features_for(train["seq"])
    y_train = np.array([classes.index(l) for l in train["lab"]])
    X_test = features_for(test["seq"])

    baselines = {
        "kNN": KNNClassifier(k=3),
        "DT": DecisionTreeClassifier(max_depth=8, seed=0),
        "GBDT": GBDTClassifier(n_rounds=40, seed=0),
        "DNN": MLPClassifier(X_train.shape[1], len(classes), hidden=(64, 32), lr=2e-3),
        "AutoML": AutoMLClassifier(seed=0),
    }
    rows = [
        "Figure 9: accelerator identification, held-out corpus quarter",
        f"{'model':8s} {'precision':>10s} {'recall':>8s}",
    ]
    scores = {}
    p, r = _evaluate(identifier.predict, test["seq"], test["lab"])
    scores["Clara"] = (p, r)
    rows.append(f"{'Clara':8s} {p:10.3f} {r:8.3f}")
    for name, model in baselines.items():
        model.fit(X_train, y_train)
        def predict(sequences, model=model):
            out = model.predict(features_for(sequences))
            return [classes[int(i)] for i in out]
        p, r = _evaluate(predict, test["seq"], test["lab"])
        scores[name] = (p, r)
        rows.append(f"{name:8s} {p:10.3f} {r:8.3f}")
    write_result("fig9_algorithm_id", "\n".join(rows))

    benchmark(lambda: identifier.classify_sequence(test["seq"][0]))

    # Paper claims: Clara's precision ~96.6%, recall ~83.3%; all models
    # roughly on par (within 25 points of Clara's F1).
    clara_p, clara_r = scores["Clara"]
    assert clara_p > 0.85
    assert clara_r > 0.70
    clara_f1 = 2 * clara_p * clara_r / (clara_p + clara_r)
    on_par = 0
    for name, (p, r) in scores.items():
        f1 = 2 * p * r / (p + r) if p + r else 0.0
        if f1 > clara_f1 - 0.25:
            on_par += 1
    assert on_par >= 4  # most models are on par (distinct features)
