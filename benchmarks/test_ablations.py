"""Ablations of Clara's design choices (Section 6, "Experience with ML
models", plus DESIGN.md's ablation inventory).

* Vocabulary compaction: "Our prior experience of applying LSTM
  without vocabulary compaction shows much lower performance."
* Reverse porting: replacing the reverse-ported API profiles with a
  naive calls-are-free assumption wrecks cost estimates for stateful
  NFs.
* Guided synthesis: training the predictor on baseline-synthesized
  (distribution-unaware) programs degrades real-NF prediction.
"""

import numpy as np

from repro.click.elements import build_element
from repro.click.frontend import lower_element
from repro.core.predictor import InstructionPredictor, PredictorDataset
from repro.core.prepare import prepare_element
from repro.ml.encoding import InstructionVocabulary, block_tokens, encode_blocks
from repro.ml.lstm import LSTMRegressor
from repro.ml.metrics import wmape
from repro.nfir.annotate import annotate_module
from repro.nic.compiler import compile_module
from repro.nic.libnfp import api_cost, sw_checksum_cycles
from repro.synthesis.generator import ClickGen, baseline_stats
from repro.synthesis.stats import extract_stats

EVAL_NFS = ("tcpack", "aggcounter", "timefilter", "mazunat", "udpcount")


def _raw_token_dataset(n_programs=40, seed=0):
    """Predictor dataset with compaction DISABLED (concrete operands)."""
    from repro.click.elements import all_elements
    from repro.nic.port import PortConfig

    stats = extract_stats(all_elements())
    gen = ClickGen(stats, seed=seed)
    sequences, targets = [], []
    for element in gen.elements(n_programs):
        module = lower_element(element)
        annotate_module(module)
        program = compile_module(module, PortConfig())
        for block, asm in zip(module.handler.blocks, program.handler.blocks):
            tokens = block_tokens(block, compact=False)
            if tokens:
                sequences.append(tokens)
                targets.append(float(asm.n_compute))
    return sequences, targets


def test_ablation_vocabulary_compaction(write_result, benchmark):
    """Train the same LSTM with and without vocabulary compaction and
    compare real-NF WMAPE (compaction must win by a wide margin)."""
    compact_ds = PredictorDataset.synthesize(n_programs=40, seed=0)
    compact = InstructionPredictor(epochs=20, seed=0).fit(compact_ds)

    raw_sequences, raw_targets = _raw_token_dataset(n_programs=40, seed=0)
    raw_vocab = InstructionVocabulary().fit(raw_sequences)
    X, mask = encode_blocks(raw_vocab, raw_sequences, compact.max_len)
    raw_model = LSTMRegressor(raw_vocab.size, hidden_dim=32, seed=0)
    raw_model.fit(X, mask, np.asarray(raw_targets), epochs=20, seed=0)

    rows = [
        "Ablation: vocabulary compaction (real-NF WMAPE, lower=better)",
        f"compact vocabulary size: {compact.vocab.size}",
        f"raw vocabulary size:     {raw_vocab.size}",
        f"{'NF':12s} {'compacted':>10s} {'raw':>8s}",
    ]
    compact_scores, raw_scores = [], []
    for nf in EVAL_NFS:
        prepared = prepare_element(build_element(nf))
        program = compile_module(prepared.module)
        y = np.array([float(b.n_compute) for b in program.handler.blocks])
        c_pred = compact.predict_sequences(prepared.block_token_sequences())
        raw_seqs = [
            block_tokens(b, compact=False)
            for b in prepared.module.handler.blocks
        ]
        Xr, mr = encode_blocks(raw_vocab, raw_seqs, compact.max_len)
        r_pred = raw_model.predict(Xr, mr)
        compact_scores.append(wmape(y, c_pred))
        raw_scores.append(wmape(y, r_pred))
        rows.append(
            f"{nf:12s} {compact_scores[-1]:10.3f} {raw_scores[-1]:8.3f}"
        )
    rows.append(
        f"{'MEAN':12s} {np.mean(compact_scores):10.3f}"
        f" {np.mean(raw_scores):8.3f}"
    )
    write_result("ablation_vocab", "\n".join(rows))
    benchmark(lambda: None)

    # The raw vocabulary explodes and generalization collapses.
    assert raw_vocab.size > compact.vocab.size * 3
    assert np.mean(compact_scores) < np.mean(raw_scores)


def test_ablation_reverse_porting(write_result, benchmark):
    """Per-packet cycle estimates with reverse-ported API profiles vs
    treating framework calls as free: the profile-less estimate
    collapses for stateful NFs (the point of Section 3.3)."""
    from repro.click.elements import initial_state, install_state
    from repro.click.interp import Interpreter
    from repro.nic.machine import NICModel, WorkloadCharacter
    from repro.nic.port import PortConfig
    from repro.workload import generate_trace
    from repro.workload.spec import WorkloadSpec

    model = NICModel()
    spec = WorkloadSpec(name="ab", n_flows=2000, n_packets=250)
    rows = [
        "Ablation: reverse-ported API profiles vs calls-are-free",
        f"{'NF':10s} {'true cyc':>9s} {'with RP':>9s} {'without':>9s}",
    ]
    errors_with, errors_without = [], []
    for nf in ("mazunat", "udpcount", "dnsproxy"):
        nf_spec = spec if nf == "mazunat" else WorkloadSpec(
            name="ab", n_flows=2000, n_packets=250, udp_fraction=1.0
        )
        element = build_element(nf)
        module = lower_element(element)
        interp = Interpreter(module)
        install_state(interp, initial_state(element))
        profile = interp.run_trace(generate_trace(nf_spec, seed=0))
        freq = {
            b: c / profile.packets for b, c in profile.block_counts.items()
        }
        program = compile_module(module, PortConfig())
        wc = WorkloadCharacter(packet_bytes=nf_spec.packet_bytes)
        truth = model.simulate(program, freq, wc, cores=8).per_packet_cycles

        # Estimate A: compute + memory + reverse-ported profiles for
        # the APIs that compile to library calls (stateful structures,
        # software checksums).  Inline-compiled packet APIs are already
        # visible in the assembly and are not re-priced.
        packets = max(profile.packets, 1)
        base = 120.0
        for block, asm in zip(module.handler.blocks, program.handler.blocks):
            f = freq.get(block.name, 0.0)
            base += f * asm.n_compute
            for instr in asm.memory_accesses():
                region = instr.region or ""
                latency = 200.0 if region.startswith("state:") else 55.0
                base += f * latency
        with_rp = base
        for api, count in profile.api_counts.items():
            per_pkt = count / packets
            if api.startswith("checksum_update"):
                with_rp += per_pkt * sw_checksum_cycles(nf_spec.packet_bytes)
            elif api.startswith(("hashmap_", "vector_")):
                cost = api_cost(api)
                with_rp += per_pkt * (
                    cost.cycles
                    + 200.0 * sum(c for _k, _s, c in cost.accesses)
                )
        without_rp = base  # library calls assumed free

        rows.append(
            f"{nf:10s} {truth:9.0f} {with_rp:9.0f} {without_rp:9.0f}"
        )
        errors_with.append(abs(with_rp - truth) / truth)
        errors_without.append(abs(without_rp - truth) / truth)
    rows.append(
        f"mean relative error: with RP {np.mean(errors_with):.1%},"
        f" without {np.mean(errors_without):.1%}"
    )
    write_result("ablation_reverse_port", "\n".join(rows))
    benchmark(lambda: None)
    assert np.mean(errors_with) < np.mean(errors_without)
    assert np.mean(errors_with) < 0.45


def test_ablation_guided_synthesis(write_result, benchmark):
    """Training the predictor on distribution-unaware programs hurts
    real-NF prediction (Table 1's fidelity translated into accuracy)."""
    guided_ds = PredictorDataset.synthesize(n_programs=40, seed=0)
    guided = InstructionPredictor(epochs=20, seed=0).fit(guided_ds)

    base_ds = PredictorDataset.synthesize(
        n_programs=40, seed=0, corpus=None
    )
    # Build the baseline dataset from the unguided generator.
    base_ds = PredictorDataset()
    gen = ClickGen(baseline_stats(), seed=0)
    for element in gen.elements(40):
        base_ds.extend_from_prepared(prepare_element(element))
    baseline = InstructionPredictor(epochs=20, seed=0).fit(base_ds)

    guided_scores, base_scores = [], []
    rows = [
        "Ablation: guided vs baseline synthesis for predictor training",
        f"{'NF':12s} {'guided':>8s} {'baseline':>9s}",
    ]
    for nf in EVAL_NFS:
        prepared = prepare_element(build_element(nf))
        program = compile_module(prepared.module)
        y = np.array([float(b.n_compute) for b in program.handler.blocks])
        sequences = prepared.block_token_sequences()
        guided_scores.append(wmape(y, guided.predict_sequences(sequences)))
        base_scores.append(wmape(y, baseline.predict_sequences(sequences)))
        rows.append(
            f"{nf:12s} {guided_scores[-1]:8.3f} {base_scores[-1]:9.3f}"
        )
    rows.append(
        f"{'MEAN':12s} {np.mean(guided_scores):8.3f}"
        f" {np.mean(base_scores):9.3f}"
    )
    write_result("ablation_synthesis", "\n".join(rows))
    benchmark(lambda: None)
    assert np.mean(guided_scores) < np.mean(base_scores)
