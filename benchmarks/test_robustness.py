"""Seed-robustness of the learning pipelines.

The paper's headline identifications must not hinge on one lucky seed:
across training seeds, the algorithm identifier must keep finding the
CRC helper in cmsketch/wepdecap and the LPM loop in iplookup while
leaving the header-manipulation NFs clean, and the instruction
predictor's held-out WMAPE must stay in band.
"""

import numpy as np

from repro.click.elements import build_element
from repro.core.algorithms import AlgorithmIdentifier, build_algorithm_corpus
from repro.core.predictor import InstructionPredictor, PredictorDataset
from repro.core.prepare import prepare_element

SEEDS = (0, 3, 7)


def test_identifier_robust_across_seeds(write_result, benchmark):
    rows = ["Identifier robustness across training seeds",
            f"{'seed':>5s} {'cmsketch crc':>13s} {'wepdecap crc':>13s}"
            f" {'iplookup lpm':>13s} {'tcpack clean':>13s}"]
    hits = {"cmsketch": 0, "wepdecap": 0, "iplookup": 0, "tcpack": 0}
    prepared = {
        nf: prepare_element(build_element(nf))
        for nf in ("cmsketch", "wepdecap", "iplookup", "tcpack")
    }
    for seed in SEEDS:
        corpus = build_algorithm_corpus(seed=seed, n_negatives=40)
        identifier = AlgorithmIdentifier(seed=seed).fit(corpus)
        found = {
            nf: identifier.identify(prep)
            for nf, prep in prepared.items()
        }
        cm = any(
            label == "crc" and "crc32_hash" in region
            for region, (label, _b) in found["cmsketch"].items()
        )
        wd = any(
            label == "crc" for _r, (label, _b) in found["wepdecap"].items()
        )
        ipl = any(
            label == "lpm" for _r, (label, _b) in found["iplookup"].items()
        )
        clean = not found["tcpack"]
        for nf, ok in (("cmsketch", cm), ("wepdecap", wd),
                       ("iplookup", ipl), ("tcpack", clean)):
            hits[nf] += int(ok)
        rows.append(
            f"{seed:5d} {str(cm):>13s} {str(wd):>13s} {str(ipl):>13s}"
            f" {str(clean):>13s}"
        )
    write_result("robustness_identifier", "\n".join(rows))
    benchmark(lambda: None)
    # Every key identification holds for every seed.
    assert all(count == len(SEEDS) for count in hits.values()), hits


def test_predictor_holdout_robust_across_seeds(write_result, benchmark):
    rows = ["Predictor held-out WMAPE across training seeds",
            f"{'seed':>5s} {'holdout WMAPE':>14s}"]
    scores = []
    holdout = PredictorDataset.synthesize(n_programs=12, seed=1234)
    for seed in SEEDS:
        dataset = PredictorDataset.synthesize(n_programs=60, seed=seed)
        predictor = InstructionPredictor(epochs=25, seed=seed).fit(dataset)
        score = predictor.evaluate(holdout)
        scores.append(score)
        rows.append(f"{seed:5d} {score:14.4f}")
    rows.append(f"mean {np.mean(scores):.4f}  max {max(scores):.4f}")
    write_result("robustness_predictor", "\n".join(rows))
    benchmark(lambda: None)
    # Paper: ~10.74% after convergence; allow 2x headroom at this
    # reduced training size, for every seed.
    assert max(scores) < 0.22, scores
