"""Figure 11: multicore scale-out factor analysis.

(a) core-count MAE: Clara's GBDT vs kNN/DNN/AutoML on the same
    features;
(b) suggested vs optimal core counts for the four complex NFs
    (paper: within 1%-6% of optimal on the 60-core NIC);
(c)/(d) throughput/latency-ratio curves for large-flow and small-flow
    workloads — every curve peaks and different NFs peak at different
    core counts; small flows peak no earlier than large flows;
(e)/(f) detailed latency+throughput curves for MazuNAT and Webgen.

Peak performance at the suggested core count must beat naively using
all 60 cores (paper: up to 71.1% higher).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.click.elements import build_element
from repro.core.prepare import prepare_element
from repro.ml.automl import AutoMLRegressor
from repro.ml.knn import KNNRegressor
from repro.ml.metrics import mae
from repro.ml.mlp import MLPRegressor
from repro.nic.compiler import compile_module
from repro.nic.port import PortConfig
from repro.workload import LARGE_FLOWS, SMALL_FLOWS, characterize

COMPLEX_NFS = ("mazunat", "dnsproxy", "webgen", "udpcount")

#: Figure 11 sweeps the *naive* port of each NF — the same regime the
#: cost model's training programs are deployed in, so its features
#: (which price APIs via the reverse-ported software profiles) describe
#: the same machine configuration they predict for.
def paper_placement(module) -> PortConfig:
    return PortConfig()


@pytest.fixture(scope="module")
def nf_curves(clara, profiler, nic_model):
    """Sweep every complex NF under both workloads."""
    curves = {}
    for nf in COMPLEX_NFS:
        for spec0 in (LARGE_FLOWS, SMALL_FLOWS):
            spec = replace(
                spec0,
                n_packets=300,
                udp_fraction=1.0 if nf in ("udpcount", "dnsproxy") else 0.0,
            )
            _el, module, profile, freq = profiler(nf, spec)
            program = compile_module(module, paper_placement(module))
            wc = characterize(spec)
            sweep = nic_model.sweep_cores(program, freq, wc)
            prepared = prepare_element(build_element(nf))
            curves[(nf, spec0.name)] = {
                "sweep": sweep,
                "optimal": nic_model.optimal_cores(sweep),
                "prepared": prepared,
                "profile": profile,
                "workload": wc,
            }
    return curves


def test_fig11a_model_comparison(clara, write_result, benchmark):
    """Train kNN/DNN/AutoML on Clara's own scale-out training set and
    compare held-out MAE against the GBDT cost model."""
    samples = clara.scaleout.samples
    X = np.stack([s.features for s in samples])
    y = np.array([float(s.optimal_cores) for s in samples])
    programs = np.array([s.program_name for s in samples])
    names = np.unique(programs)
    rng = np.random.default_rng(0)
    rng.shuffle(names)
    test_names = set(names[: max(1, len(names) // 4)].tolist())
    test_mask = np.array([p in test_names for p in programs])
    X_tr, y_tr = X[~test_mask], y[~test_mask]
    X_te, y_te = X[test_mask], y[test_mask]

    from repro.ml.gbdt import GBDTRegressor

    models = {
        "Clara(GBDT)": GBDTRegressor(n_rounds=80, max_depth=3, seed=0),
        "kNN": KNNRegressor(k=3),
        "DNN": MLPRegressor(X.shape[1], hidden=(32, 16), lr=3e-3),
        "AutoML": AutoMLRegressor(seed=0),
    }
    rows = ["Figure 11(a): optimal-core prediction MAE (held-out programs)",
            f"{'model':12s} {'MAE(cores)':>11s}"]
    maes = {}
    for name, model in models.items():
        if name == "DNN":
            model.fit(X_tr, y_tr, epochs=150, seed=0)
        else:
            model.fit(X_tr, y_tr)
        pred = np.clip(np.round(model.predict(X_te)), 1, 60)
        maes[name] = mae(y_te, pred)
        rows.append(f"{name:12s} {maes[name]:11.2f}")
    write_result("fig11a_models", "\n".join(rows))
    benchmark(lambda: models["Clara(GBDT)"].predict(X_te))
    # Paper: GBDT achieves the highest accuracy among these baselines.
    assert maes["Clara(GBDT)"] <= min(maes["kNN"], maes["DNN"]) + 0.5
    assert maes["Clara(GBDT)"] < 8.0


def test_fig11b_accuracy_on_complex_nfs(clara, nf_curves, write_result,
                                        benchmark):
    rows = [
        "Figure 11(b): Clara-suggested vs optimal core counts",
        f"{'NF':10s} {'workload':13s} {'clara':>6s} {'optimal':>8s}"
        f" {'perf@clara/perf@opt':>20s}",
    ]
    ratios = []
    for (nf, wname), data in nf_curves.items():
        prepared = data["prepared"]
        sweep = data["sweep"]
        optimal = data["optimal"]
        block_compute = {
            i.subject: i.value
            for i in clara.predictor.analyze(prepared).of_type("compute")
        }
        suggested = clara.scaleout.predict_cores(
            prepared, block_compute, data["profile"], data["workload"]
        )
        ratio = (
            sweep[suggested].tput_lat_ratio
            / max(sweep[optimal].tput_lat_ratio, 1e-12)
        )
        ratios.append(ratio)
        rows.append(
            f"{nf:10s} {wname:13s} {suggested:6d} {optimal:8d} {ratio:20.3f}"
        )
    write_result("fig11b_accuracy", "\n".join(rows))
    benchmark(lambda: None)
    # Paper: suggested counts deviate 1%-6% from optimal.  Our bar:
    # performance at the suggestion within ~10% of the optimum on
    # average.  (Ratios marginally above 1.0 are tie-break artifacts:
    # "optimal" is the smallest count within 1% of the peak.)
    assert float(np.mean(ratios)) > 0.85
    assert max(ratios) <= 1.02


def test_fig11cd_curve_shapes(nf_curves, nic_model, write_result, benchmark):
    rows = ["Figure 11(c)/(d): tput/latency ratio vs cores (Mpps/us)"]
    peaks = {}
    for (nf, wname), data in nf_curves.items():
        sweep = data["sweep"]
        series = [sweep[c].tput_lat_ratio for c in sorted(sweep)]
        peak = data["optimal"]
        peaks[(nf, wname)] = peak
        samples = {c: sweep[c].tput_lat_ratio for c in (1, 5, 10, 20, 40, 60)}
        rows.append(
            f"{nf:10s} {wname:13s} peak@{peak:2d} | "
            + " ".join(f"{c}:{r:.2f}" for c, r in samples.items())
        )
    write_result("fig11cd_curves", "\n".join(rows))
    benchmark(lambda: None)
    # Different NFs peak at different core counts on each workload
    # (paper: "different NFs peak at different core counts").
    for wname in ("large_flows", "small_flows"):
        wpeaks = [p for (nf, w), p in peaks.items() if w == wname]
        assert len(set(wpeaks)) >= 2, wpeaks
    # Workloads shift the knee of the same NF (paper: "different
    # workloads also have different optimal configurations").  The
    # direction of the shift depends on what binds: for the
    # checksum-dominated naive ports swept here, cache-hostile traffic
    # can saturate the memory system at fewer cores.  The paper's
    # "small flows peak later" ordering is asserted for tuned ports in
    # tests/nic/test_machine.py::TestWorkloadKnees.
    shifted = sum(
        1
        for nf in COMPLEX_NFS
        if peaks[(nf, "small_flows")] != peaks[(nf, "large_flows")]
    )
    assert shifted >= 3, peaks


def test_fig11ef_detail_curves(nf_curves, write_result, benchmark):
    rows = ["Figure 11(e)/(f): MazuNAT and Webgen detail (large flows)"]
    for nf in ("mazunat", "webgen"):
        data = nf_curves[(nf, "large_flows")]
        sweep = data["sweep"]
        rows.append(f"--- {nf} (optimal={data['optimal']})")
        rows.append(f"{'cores':>6s} {'tput(Mpps)':>11s} {'lat(us)':>9s}")
        for c in (1, 2, 4, 8, 16, 24, 32, 40, 48, 60):
            rows.append(
                f"{c:6d} {sweep[c].throughput_mpps:11.2f}"
                f" {sweep[c].latency_us:9.2f}"
            )
    write_result("fig11ef_detail", "\n".join(rows))
    benchmark(lambda: None)
    # Throughput saturates; latency never decreases past the knee.
    for nf in ("mazunat", "webgen"):
        sweep = nf_curves[(nf, "large_flows")]["sweep"]
        assert sweep[60].throughput_mpps >= sweep[1].throughput_mpps
        assert sweep[60].latency_us >= sweep[1].latency_us - 1e-9


def test_fig11_optimal_beats_all_cores(nf_curves, write_result, benchmark):
    """Paper: 'the peak performance as achieved by the optimal core
    counts is up to 71.1% higher' than naively using all cores."""
    rows = ["Optimal core count vs naive all-60-cores (tput/lat ratio)"]
    gains = []
    for (nf, wname), data in nf_curves.items():
        sweep = data["sweep"]
        optimal = data["optimal"]
        gain = (
            sweep[optimal].tput_lat_ratio
            / max(sweep[60].tput_lat_ratio, 1e-12)
            - 1.0
        )
        gains.append(gain)
        rows.append(f"{nf:10s} {wname:13s} optimal={optimal:2d} gain={gain:+.1%}")
    write_result("fig11_optimal_gain", "\n".join(rows))
    benchmark(lambda: None)
    assert max(gains) > 0.3  # a large win exists somewhere
    assert all(g >= -1e-9 for g in gains)
