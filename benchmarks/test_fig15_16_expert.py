"""Figures 15 and 16: Clara vs 'expert' emulation (Section 5.8).

Expert = exhaustive parameter sweep of one porting decision.  Paper:

* placement (Fig 15): "Clara's latency is up to 9.7% higher and its
  throughput is up to 7.6% lower than what is achievable with an
  exhaustive search" — because the ILP's latency-only objective cannot
  see bandwidth-spreading effects;
* coalescing (Fig 16): the exhaustive relative-position sweep "delivers
  a small advantage over Clara, although Clara remains competitive".
"""

from dataclasses import replace


from repro.core.coalescing import CoalescingAdvisor
from repro.core.placement import PlacementAdvisor, expert_search
from repro.nic.compiler import compile_module
from repro.nic.machine import WorkloadCharacter
from repro.nic.port import PortConfig
from repro.workload import SMALL_FLOWS, characterize

FIG15_NFS = {
    "mazunat": dict(map_entries=262_144),
    "dnsproxy": dict(cache_entries=262_144),
    "webgen": dict(max_flows=2048),
    "udpcount": dict(flow_entries=262_144),
}

FIG16_ELEMENTS = ("aggcounter", "timefilter", "webtcp", "tcpgen")

FIG16_STATE = {
    "timefilter": {"min_gap_ns": 10_000},
    "tcpgen": {"sport": 80, "dport": 1234, "iss": 1000},
    "webtcp": {"object_size": 6000},
}


def _tcpgen_traffic(packet, index):
    if index % 2 == 0 and packet.tcp is not None:
        packet.tcp["th_sport"] = 1234
        packet.tcp["th_dport"] = 80
        packet.tcp["th_ack"] = 1001


def test_fig15_expert_placement(profiler, nic_model, write_result, benchmark):
    spec = replace(SMALL_FLOWS, n_packets=300)
    advisor = PlacementAdvisor()
    rows = [
        "Figure 15: Clara placement (ILP) vs exhaustive expert sweep",
        f"{'NF':10s} {'port':7s} {'tput(Mpps)':>11s} {'lat(us)':>9s}",
    ]
    lat_gaps, tput_gaps = [], []
    for nf, params in FIG15_NFS.items():
        nf_spec = replace(
            spec, udp_fraction=1.0 if nf in ("udpcount", "dnsproxy") else 0.0
        )
        _el, module, profile, freq = profiler(nf, nf_spec, **params)
        wc = characterize(nf_spec)
        solution = advisor.advise(module, profile)

        def simulate(assignment):
            program = compile_module(
                module,
                PortConfig(use_checksum_accel=True, placement=dict(assignment)),
            )
            return nic_model.simulate(program, freq, wc, cores=8)

        clara_perf = simulate(solution.assignment)
        problem = advisor.problem_from_profile(module, profile)
        # Expert objective = measured latency from a full simulation —
        # exactly what the ILP's frequency-weighted latency objective
        # approximates without bandwidth effects.
        _best_assignment, _score = expert_search(
            problem, lambda a: simulate(a).latency_us
        )
        expert_perf = simulate(_best_assignment)
        rows.append(
            f"{nf:10s} {'clara':7s} {clara_perf.throughput_mpps:11.2f}"
            f" {clara_perf.latency_us:9.2f}"
        )
        rows.append(
            f"{nf:10s} {'expert':7s} {expert_perf.throughput_mpps:11.2f}"
            f" {expert_perf.latency_us:9.2f}"
        )
        lat_gaps.append(clara_perf.latency_us / expert_perf.latency_us - 1.0)
        tput_gaps.append(
            1.0 - clara_perf.throughput_mpps / expert_perf.throughput_mpps
        )
    rows.append(
        f"clara vs expert: latency up to {max(lat_gaps):+.1%},"
        f" throughput down up to {max(tput_gaps):.1%}"
        "  (paper: <=9.7% and <=7.6%)"
    )
    write_result("fig15_expert_placement", "\n".join(rows))
    benchmark(lambda: None)

    # The expert never loses (it sweeps everything, including Clara's
    # choice is not guaranteed to be in its space, so allow epsilon).
    assert all(g >= -0.02 for g in lat_gaps)
    # Clara stays competitive: within ~15% on both axes.
    assert max(lat_gaps) < 0.15
    assert max(tput_gaps) < 0.15


def test_fig16_expert_coalescing(profiler, nic_model, write_result, benchmark):
    spec = replace(SMALL_FLOWS, n_packets=300)
    advisor = CoalescingAdvisor(seed=0)
    wc = WorkloadCharacter(packet_bytes=spec.packet_bytes,
                           emem_cache_hit_rate=0.25)
    rows = [
        "Figure 16: Clara coalescing (K-means) vs expert position sweep",
        f"{'element':11s} {'clara lat':>10s} {'expert lat':>11s}"
        f" {'clara cores':>12s} {'expert cores':>13s}",
    ]
    gaps = []
    for nf in FIG16_ELEMENTS:
        _el, module, profile, freq = profiler(
            nf, spec, state=FIG16_STATE.get(nf),
            mutate=_tcpgen_traffic if nf == "tcpgen" else None,
        )
        plan = advisor.advise(module, profile)

        def latency(packs):
            program = compile_module(module, PortConfig(packs=list(packs)))
            return nic_model.simulate(program, freq, wc, cores=8).latency_us

        def cores_needed(packs, fraction=0.95):
            program = compile_module(module, PortConfig(packs=list(packs)))
            sweep = nic_model.sweep_cores(program, freq, wc)
            peak = sweep[60].throughput_mpps
            return min(
                c for c in sorted(sweep)
                if sweep[c].throughput_mpps >= fraction * peak
            )

        expert_packs, expert_lat = CoalescingAdvisor.expert_search(
            module, profile, latency, top_n=6
        )
        clara_lat = latency(plan.packs)
        gaps.append(clara_lat / max(expert_lat, 1e-9) - 1.0)
        rows.append(
            f"{nf:11s} {clara_lat:10.2f} {expert_lat:11.2f}"
            f" {cores_needed(plan.packs):12d} {cores_needed(expert_packs):13d}"
        )
    rows.append(
        f"clara latency vs expert: up to {max(gaps):+.1%}"
        " (paper: expert has 'a small advantage')"
    )
    write_result("fig16_expert_coalescing", "\n".join(rows))
    benchmark(lambda: None)

    # Mutual competitiveness: the expert is usually slightly ahead
    # (positive gap) but may lose where its hottest-variables-only
    # restriction excludes members of Clara's clusters (the paper's
    # expert has the same restriction: "the total number of variables
    # is too large for an exhaustive analysis").
    assert max(gaps) > 0.0  # expert wins somewhere
    assert all(-0.10 <= g < 0.20 for g in gaps), gaps
