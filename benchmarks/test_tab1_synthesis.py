"""Table 1: the data-synthesis engine generates representative Click
programs.

"The metrics measure the distance between the instruction
distributions for real-world vs. synthesized Click programs as
compiled" — six divergence measures, guided synthesizer vs. a baseline
that ignores Click's AST distribution.
"""

from collections import Counter

import numpy as np
import pytest

from repro.click.elements import all_elements
from repro.click.frontend import lower_element
from repro.ml import metrics
from repro.ml.encoding import block_tokens
from repro.nfir.annotate import annotate_module
from repro.synthesis import ClickGen, baseline_stats, extract_stats

N_SYNTH = 40


def _instruction_distribution(modules, opcode_order):
    counts = Counter()
    for module in modules:
        annotate_module(module)
        for block in module.handler.blocks:
            for token in block_tokens(block, compact=True):
                counts[token.split()[0]] += 1
    return np.array([counts.get(op, 0) + 1e-9 for op in opcode_order])


@pytest.fixture(scope="module")
def distributions():
    real_elements = all_elements()
    stats = extract_stats(real_elements)
    real_modules = [lower_element(e) for e in real_elements]
    guided = [lower_element(e) for e in ClickGen(stats, seed=0).elements(N_SYNTH)]
    baseline = [
        lower_element(e)
        for e in ClickGen(baseline_stats(), seed=0).elements(N_SYNTH)
    ]
    opcodes = sorted(
        {
            token.split()[0]
            for module in real_modules
            for block in module.handler.blocks
            for token in block_tokens(block)
        }
    )
    return (
        _instruction_distribution(real_modules, opcodes),
        _instruction_distribution(guided, opcodes),
        _instruction_distribution(baseline, opcodes),
    )


def test_tab1_synthesis_fidelity(distributions, write_result, benchmark):
    real, guided, baseline = distributions
    rows = [
        "Table 1: distance between real and synthesized instruction",
        "distributions (guided = Clara's synthesizer; baseline ignores",
        "the Click AST distribution).  Lower is better.",
        f"{'metric':32s} {'Clara':>8s} {'Baseline':>9s}",
    ]
    values = {}
    for name, fn in metrics.TABLE1_METRICS.items():
        g, b = fn(real, guided), fn(real, baseline)
        values[name] = (g, b)
        rows.append(f"{name:32s} {g:8.4f} {b:9.4f}")
    write_result("tab1_synthesis", "\n".join(rows))

    # Timed kernel: one full metric-suite evaluation.
    benchmark(
        lambda: [fn(real, guided) for fn in metrics.TABLE1_METRICS.values()]
    )

    # Paper claim: the guided synthesizer is closer on every metric.
    wins = sum(1 for g, b in values.values() if g < b)
    assert wins >= 5, values
    # And the headline Jensen-Shannon gap is substantial (paper: 0.0303
    # vs 0.1010 — better than 2x).
    js_g, js_b = values["Jensen-Shannon divergence"]
    assert js_b / js_g > 1.3
