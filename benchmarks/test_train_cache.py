"""Artifact-cache micro-benchmark: cold training vs cached load.

Times ``Clara.train(TrainConfig.quick(), cache="auto")`` twice against
an empty cache directory — the first run pays the full learning phases,
the second must come back from disk at least 10x faster with the same
trained state.
"""

from __future__ import annotations

import time

from repro.core import Clara, TrainConfig, train_cache_key


def test_train_cache_speedup(tmp_path, write_result):
    config = TrainConfig.quick()

    start = time.perf_counter()
    cold = Clara(seed=0).train(config, cache="auto", cache_dir=tmp_path)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = Clara(seed=0).train(config, cache="auto", cache_dir=tmp_path)
    warm_s = time.perf_counter() - start

    key = train_cache_key(config, seed=0, nic=cold.nic)
    artifact = tmp_path / f"clara-{key}.pkl"
    lines = [
        "Training artifact cache (TrainConfig.quick, seed 0)",
        f"{'cold train':>12s} {cold_s:8.2f} s",
        f"{'cached load':>12s} {warm_s:8.2f} s",
        f"{'speedup':>12s} {cold_s / max(warm_s, 1e-9):8.1f} x",
        f"{'artifact':>12s} {artifact.stat().st_size / 1024:8.1f} KiB",
    ]
    write_result("train_cache", "\n".join(lines) + "\n")

    assert warm.trained
    assert warm.train_config == config
    assert warm_s < cold_s / 10.0
