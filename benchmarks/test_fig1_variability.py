"""Figure 1: performance variability of five NFs on the SmartNIC.

"For each NF, we benchmark two to four different versions with the
same core logic ... the performance can vary up to 13.8x."  Variants
cover accelerator usage (NAT), packet sizes (DPI), state location and
flow distributions (FW), rule counts and flow cache (LPM), and packet
rates — here, workload intensity regimes — (HH).
"""

from dataclasses import replace

import pytest

from repro.nic.compiler import compile_module
from repro.nic.machine import WorkloadCharacter
from repro.nic.port import PortConfig
from repro.nic.regions import REGION_CLS, REGION_IMEM
from repro.workload.spec import WorkloadSpec

BASE = WorkloadSpec(name="fig1", n_flows=2000, n_packets=400)


def _nat_variants(profiler, nic_model):
    """NAT: checksum accelerator on/off (the paper's NAT variants)."""
    _el, module, _p, freq = profiler("mazunat", BASE)
    wc = WorkloadCharacter(packet_bytes=256, emem_cache_hit_rate=0.6)
    out = {}
    for label, accel in (("sw-csum", False), ("accel-csum", True)):
        prog = compile_module(module, PortConfig(use_checksum_accel=accel))
        out[f"NAT/{label}"] = nic_model.simulate(prog, freq, wc, cores=20)
    return out


def _dpi_variants(profiler, nic_model):
    """DPI: different packet (payload) sizes under a bounded scan."""
    out = {}
    for label, payload in (("64B", 48), ("256B", 240), ("512B", 480)):
        spec = replace(BASE, payload_bytes=payload,
                       packet_bytes=payload + 64)
        _el, module, _p, freq = profiler(
            "dpi", spec, scan_limit=512
        )
        wc = WorkloadCharacter(packet_bytes=payload + 64)
        prog = compile_module(module, PortConfig())
        out[f"DPI/{label}"] = nic_model.simulate(prog, freq, wc, cores=20)
    return out


def _fw_variants(profiler, nic_model):
    """FW: connection-table location x flow distribution."""
    state = {
        "n_acl": 1,
        "acl_prefix": [0],
        "acl_mask": [0],
        "acl_action": [1],
    }
    out = {}
    cases = [
        ("emem/many-flows", {}, 0.2),
        ("emem/few-flows", {}, 0.95),
        ("imem/many-flows", {"conn_table": REGION_IMEM}, 0.2),
        ("cls-ctrs/few-flows", {"fast_hits": REGION_CLS}, 0.95),
    ]
    _el, module, _p, freq = profiler("firewall", BASE, state=state)
    for label, placement, hit in cases:
        wc = WorkloadCharacter(packet_bytes=256, emem_cache_hit_rate=hit)
        prog = compile_module(module, PortConfig(placement=placement))
        out[f"FW/{label}"] = nic_model.simulate(prog, freq, wc, cores=20)
    return out


def _lpm_variants(profiler, nic_model):
    """LPM: rule count x flow cache usage.  Rule tables are small and
    live in IMEM in all variants (the variation under study is match
    processing vs. the flow-cache engine, not state placement)."""
    out = {}
    placement = {
        "rule_prefix": REGION_IMEM,
        "rule_masklen": REGION_IMEM,
        "rule_port": REGION_IMEM,
    }
    for n_rules in (16, 128):
        state = {
            "n_rules": n_rules,
            "rule_prefix": [0] * n_rules,
            "rule_masklen": [32] * n_rules,
            "rule_port": [1] * n_rules,
        }
        _el, module, _p, freq = profiler(
            "iplookup", BASE, state=state, n_rules=n_rules
        )
        naive = nic_model.simulate(
            compile_module(module, PortConfig(placement=placement)), freq,
            WorkloadCharacter(packet_bytes=256), cores=20,
        )
        out[f"LPM/{n_rules}r/no-cache"] = naive
        loop_blocks = frozenset(
            b.name for b in module.handler.blocks if b.name.startswith("while.")
        )
        wc = WorkloadCharacter(
            packet_bytes=256,
            flow_cache_hit_rate=0.95,
            lpm_miss_penalty_cycles=naive.per_packet_cycles,
        )
        out[f"LPM/{n_rules}r/flow-cache"] = nic_model.simulate(
            compile_module(
                module,
                PortConfig(lpm_accel_blocks=loop_blocks, placement=placement),
            ),
            freq, wc, cores=20,
        )
    return out


def _hh_variants(profiler, nic_model):
    """HH: packet-rate regimes (uncontended vs memory-saturating)."""
    _el, module, _p, freq = profiler("heavyhitter", BASE)
    prog = compile_module(module, PortConfig())
    out = {}
    for label, hit, cores in (("low-rate", 0.9, 4), ("high-rate", 0.1, 40)):
        wc = WorkloadCharacter(packet_bytes=256, emem_cache_hit_rate=hit)
        out[f"HH/{label}"] = nic_model.simulate(prog, freq, wc, cores=cores)
    return out


@pytest.fixture(scope="module")
def variability(profiler, nic_model):
    results = {}
    for fn in (_nat_variants, _dpi_variants, _fw_variants, _lpm_variants,
               _hh_variants):
        results.update(fn(profiler, nic_model))
    return results


def test_fig1_variability(variability, profiler, nic_model, write_result,
                          benchmark):
    # Timed kernel: one NIC simulation (the primitive every variant row
    # is built from).
    _el, module, _p, freq = profiler(
        "heavyhitter", replace(BASE, n_packets=100)
    )
    prog = compile_module(module, PortConfig())
    wc = WorkloadCharacter(packet_bytes=256)
    benchmark.pedantic(
        lambda: nic_model.simulate(prog, freq, wc, cores=20),
        rounds=10, iterations=1,
    )

    lines = ["Figure 1: per-NF latency, normalized to each NF's fastest variant",
             f"{'variant':26s} {'lat(us)':>9s} {'norm':>6s} {'tput(Mpps)':>11s}"]
    by_nf = {}
    for key, perf in variability.items():
        nf = key.split("/")[0]
        by_nf.setdefault(nf, []).append((key, perf))
    spreads = {}
    for nf, rows in by_nf.items():
        best = min(p.latency_us for _k, p in rows)
        for key, perf in rows:
            lines.append(
                f"{key:26s} {perf.latency_us:9.2f} {perf.latency_us / best:6.2f}"
                f" {perf.throughput_mpps:11.2f}"
            )
        spreads[nf] = max(p.latency_us for _k, p in rows) / best
    lines.append("")
    lines.append(
        "latency spread per NF: "
        + ", ".join(f"{nf}={s:.1f}x" for nf, s in spreads.items())
    )
    write_result("fig1_variability", "\n".join(lines))

    # Paper claims: every NF has meaningful variant spread, and the
    # worst NF spread is around an order of magnitude (up to 13.8x).
    assert all(s > 1.2 for s in spreads.values()), spreads
    assert max(spreads.values()) > 5.0, spreads
    assert max(spreads.values()) < 100.0, spreads
