"""Figure 10: accelerator identification pays off.

(a) PCA separates positive and negative programs in feature space;
(b) porting cmsketch/wepdecap to the CRC engine: up to 1.6x throughput
    and ~25% lower latency vs naive porting;
(c) iplookup with the LPM flow cache vs naive match processing across
    rule counts 2^4..2^10: roughly an order of magnitude.
"""

import numpy as np

from repro.core.algorithms import ACCEL_CLASSES, build_algorithm_corpus
from repro.ml.pca import PCA
from repro.nic.compiler import compile_module
from repro.nic.machine import WorkloadCharacter
from repro.nic.port import PortConfig
from repro.nic.regions import REGION_IMEM
from repro.workload.spec import WorkloadSpec

SPEC = WorkloadSpec(name="fig10", n_flows=1000, n_packets=300)


def test_fig10a_pca_separation(clara, write_result, benchmark):
    corpus = build_algorithm_corpus(seed=0, n_negatives=30)
    X = np.concatenate(
        [clara.identifier.features(a, corpus.sequences) for a in ACCEL_CLASSES],
        axis=1,
    )
    y = np.array([0 if l == "none" else 1 for l in corpus.labels])
    pca = PCA(2)
    points = benchmark.pedantic(
        lambda: pca.fit_transform(X), rounds=3, iterations=1
    )
    pos, neg = points[y == 1], points[y == 0]
    # Fisher-style separation along the leading components.
    gap = np.linalg.norm(pos.mean(axis=0) - neg.mean(axis=0))
    spread = 0.5 * (pos.std(axis=0).mean() + neg.std(axis=0).mean())
    separation = gap / max(spread, 1e-9)
    lines = [
        "Figure 10(a): PCA of algorithm-identification features",
        f"positives: {len(pos)}  negatives: {len(neg)}",
        f"centroid gap / mean spread = {separation:.2f}",
        f"explained variance (2 PCs): "
        f"{pca.explained_variance_ratio_.sum():.2%}",
    ]
    write_result("fig10a_pca", "\n".join(lines))
    assert separation > 1.0  # visibly separable clusters


def test_fig10b_crc_accelerator(clara, profiler, nic_model, write_result,
                                benchmark):
    rows = [
        "Figure 10(b): CRC accelerator for cmsketch / wepdecap",
        f"{'NF':10s} {'port':7s} {'tput(Mpps)':>11s} {'lat(us)':>9s}",
    ]
    gains = {}
    for nf in ("cmsketch", "wepdecap"):
        _el, module, _p, freq = profiler(nf, SPEC)
        result = clara.analyze(
            __import__("repro.click.elements", fromlist=["build_element"])
            .build_element(nf),
            SPEC,
        )
        config = clara.port_config(result)
        assert config.crc_accel_blocks, f"Clara found no CRC blocks in {nf}"
        # Isolate the accelerator effect: same placement both sides.
        placement = dict(config.placement)
        wc = WorkloadCharacter(packet_bytes=SPEC.packet_bytes)
        naive = nic_model.simulate(
            compile_module(module, PortConfig(placement=placement)),
            freq, wc, cores=12,
        )
        tuned = nic_model.simulate(
            compile_module(
                module,
                PortConfig(
                    placement=placement,
                    crc_accel_blocks=config.crc_accel_blocks,
                ),
            ),
            freq, wc, cores=12,
        )
        gains[nf] = (
            tuned.throughput_mpps / naive.throughput_mpps,
            1.0 - tuned.latency_us / naive.latency_us,
        )
        for label, perf in (("naive", naive), ("clara", tuned)):
            rows.append(
                f"{nf:10s} {label:7s} {perf.throughput_mpps:11.2f}"
                f" {perf.latency_us:9.2f}"
            )
    rows.append(
        "gains: "
        + ", ".join(
            f"{nf}: tput x{t:.2f}, latency -{l:.0%}" for nf, (t, l) in gains.items()
        )
    )
    write_result("fig10b_crc", "\n".join(rows))
    benchmark(lambda: None)
    # Paper: up to 1.6x throughput, up to 25% lower latency.
    assert max(t for t, _l in gains.values()) > 1.15
    assert max(l for _t, l in gains.values()) > 0.10
    assert all(t >= 1.0 for t, _l in gains.values())


def test_fig10c_lpm_accelerator(clara, profiler, nic_model, write_result,
                                benchmark):
    rows = [
        "Figure 10(c): LPM flow cache vs naive match processing",
        f"{'rules':>6s} {'naive tput':>11s} {'clara tput':>11s}"
        f" {'naive lat':>10s} {'clara lat':>10s} {'speedup':>8s}",
    ]
    speedups = {}
    placement = {
        "rule_prefix": REGION_IMEM,
        "rule_masklen": REGION_IMEM,
        "rule_port": REGION_IMEM,
    }
    for exp in (4, 5, 6, 7, 8, 9, 10):
        n_rules = 2**exp
        state = {
            "n_rules": n_rules,
            "rule_prefix": [0] * n_rules,
            "rule_masklen": [32] * n_rules,
            "rule_port": [1] * n_rules,
        }
        _el, module, _p, freq = profiler(
            "iplookup", SPEC, state=state, n_rules=n_rules
        )
        naive = nic_model.simulate(
            compile_module(module, PortConfig(placement=placement)),
            freq, WorkloadCharacter(packet_bytes=SPEC.packet_bytes), cores=12,
        )
        loop_blocks = frozenset(
            b.name for b in module.handler.blocks if b.name.startswith("while.")
        )
        wc = WorkloadCharacter(
            packet_bytes=SPEC.packet_bytes,
            flow_cache_hit_rate=0.9,
            lpm_miss_penalty_cycles=naive.per_packet_cycles,
        )
        tuned = nic_model.simulate(
            compile_module(
                module,
                PortConfig(lpm_accel_blocks=loop_blocks, placement=placement),
            ),
            freq, wc, cores=12,
        )
        speedups[n_rules] = naive.latency_us / tuned.latency_us
        rows.append(
            f"{n_rules:6d} {naive.throughput_mpps:11.2f}"
            f" {tuned.throughput_mpps:11.2f} {naive.latency_us:10.2f}"
            f" {tuned.latency_us:10.2f} {speedups[n_rules]:8.1f}x"
        )
    write_result("fig10c_lpm", "\n".join(rows))
    benchmark(lambda: None)
    # Paper: "increases throughput and decreases latency by roughly one
    # order of magnitude" at larger tables; benefit grows with rules.
    assert speedups[1024] > 5.0
    assert speedups[1024] > speedups[16]
