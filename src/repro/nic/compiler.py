"""NFCC: the simulated closed-source SmartNIC compiler.

Translates NFIR into the micro-engine assembly of
:mod:`repro.nic.isa`.  This is the "opaque" toolchain of the paper:
its instruction selection, operation fusion, immediate materialization,
and register allocation produce a nontrivial mapping from IR sequences
to instruction counts — the mapping Clara's LSTM learns to mimic
(Section 3.2: "the compiler performs instruction selection or peephole
optimizations to rewrite compute instructions; it also performs
advanced register allocations for local variables so that stack
operations may not result in any memory accesses").

Selection rules (NFP-flavoured):

* ALU ops are single instructions; a single-use shift feeding an ALU op
  in the same block fuses into one ``alu_shf``.
* ``icmp`` feeding the block's terminator fuses into ``br_cond``;
  standalone comparisons cost two instructions (subtract + flag
  extract).
* Immediates: values < 256 ride along for free; 16-bit values need one
  ``immed``; wider ones an ``immed``/``immed_w1`` pair.  Constants are
  materialized once per block.
* Multiplies: power-of-two -> one ``alu_shf``; small constants -> a
  shift-add triple; general 32x32 -> five ``mul_step``; 64-bit doubles
  everything.
* Division: power-of-two -> one shift; anything else expands the
  micro-engine's software divide loop inline (~30 instructions).
* 64-bit arithmetic uses register pairs: two ALU instructions per op.
* Locals are register-allocated (28 GPRs); loads/stores to promoted
  slots vanish, spills go to per-engine local memory (``lmem_*``).
* Stateful loads/stores become ``mem_read``/``mem_write`` tagged with
  the symbolic region of their global (resolved by the placement map);
  coalesced packs fetch once per block.
* Packet-header accesses are ``ld_field`` on the pre-DMA'd header
  transfer registers; payload bytes are CTM accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.nfir.annotate import (
    Category,
    build_alloca_points_to,
    classify_instruction,
    pointer_target,
    trace_pointer_root,
)
from repro.nfir.function import Function, GlobalVariable, Module
from repro.nfir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.nfir.types import IntType
from repro.nfir.values import Constant, Value
from repro.nic.isa import BlockAsm, FunctionAsm, NICInstruction, NICProgram
from repro.nic.port import PortConfig
from repro.nic.regions import REGION_CTM
from repro.nic.targets import TargetDescription, resolve_target

#: General-purpose registers available to one NF context on the
#: default target.  The per-target budget lives in
#: ``TargetDescription.n_gprs``; this constant remains as the
#: documented NFP value (and the fallback for target-less callers).
N_GPRS = 28


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass
class _RegAlloc:
    """Which allocas are promoted to registers vs. spilled to LMEM."""

    promoted: Set[int] = field(default_factory=set)
    spilled: Set[int] = field(default_factory=set)

    def is_promoted(self, alloca: Alloca) -> bool:
        return id(alloca) in self.promoted


def _allocate_registers(function: Function, n_gprs: int = N_GPRS) -> _RegAlloc:
    """First-come register allocation over alloca slots.

    Each slot consumes ceil(size/4) registers; slots that do not fit in
    the target's GPR budget spill to local memory.  This mirrors the
    visible behaviour of the real allocator: small NFs see *zero* stack
    traffic, large ones start paying for spills.
    """
    alloc = _RegAlloc()
    budget = n_gprs
    for instr in function.instructions():
        if not isinstance(instr, Alloca):
            continue
        need = max(1, (instr.allocated_type.size_bytes() + 3) // 4)
        if need <= budget:
            alloc.promoted.add(id(instr))
            budget -= need
        else:
            alloc.spilled.add(id(instr))
    return alloc


def _single_use_map(function: Function) -> Dict[int, Instruction]:
    """Map id(instr) -> its sole user, for values used exactly once."""
    uses: Dict[int, List[Instruction]] = {}
    for instr in function.instructions():
        for op in instr.operands:
            if isinstance(op, Instruction):
                uses.setdefault(id(op), []).append(instr)
    return {
        key: users[0] for key, users in uses.items() if len(users) == 1
    }


class NFCC:
    """Compiler instance; one per (module, port config, target)."""

    def __init__(
        self,
        module: Module,
        config: Optional[PortConfig] = None,
        target: "str | TargetDescription | None" = None,
    ) -> None:
        self.module = module
        self.config = config or PortConfig()
        self.config.validate(list(module.globals))
        self.target = resolve_target(target)

    # -- public API ----------------------------------------------------
    def compile(self) -> NICProgram:
        program = NICProgram(module_name=self.module.name)
        for name, function in self.module.functions.items():
            program.functions[name] = self._compile_function(function)
        program.meta["config"] = self.config
        return program

    # -- per-function --------------------------------------------------
    def _compile_function(self, function: Function) -> FunctionAsm:
        regalloc = _allocate_registers(function, self.target.n_gprs)
        single_use = _single_use_map(function)
        alloca_map = build_alloca_points_to(function)
        fasm = FunctionAsm(function.name)
        # Accelerator substitution only happens for engines the target
        # implements; blocks mapped to an absent engine compile to the
        # ordinary software path.
        accel_sets = tuple(
            entry for entry in (
                ("crc", self.config.crc_accel_blocks, "crc", "CRC engine"),
                ("lpm", self.config.lpm_accel_blocks, "cam_lookup",
                 "LPM flow cache"),
                ("crypto", self.config.crypto_accel_blocks, "crypto",
                 "crypto engine"),
            )
            if self.target.supports(entry[2])
        )
        # One accelerator command per *contiguous run* of substituted
        # blocks (a loop or one inlined-helper copy), emitted at the
        # run's first block; the rest of the run compiles to nothing.
        prev_kind = None
        for block in function.blocks:
            kind = None
            opcode = comment = ""
            for k, blocks, op, note in accel_sets:
                if block.name in blocks:
                    kind, opcode, comment = k, op, note
                    break
            if kind is None:
                fasm.blocks.append(
                    self._compile_block(block, regalloc, single_use, alloca_map)
                )
            else:
                basm = BlockAsm(block.name)
                if kind != prev_kind:
                    basm.instructions.append(
                        NICInstruction(
                            opcode, dst=f"{kind}_out", comment=comment
                        )
                    )
                fasm.blocks.append(basm)
            prev_kind = kind
        return fasm

    # -- per-block -------------------------------------------------------
    def _compile_block(self, block, regalloc, single_use, alloca_map) -> BlockAsm:
        basm = BlockAsm(block.name)
        emit = basm.instructions.append
        #: instructions fused into a later consumer (emit nothing).
        fused: Set[int] = set()
        #: constants already materialized in this block.
        materialized: Set[Tuple[int, int]] = set()
        #: coalesce packs already fetched/written in this block.
        packs_read: Set[Tuple[str, ...]] = set()
        packs_written: Set[Tuple[str, ...]] = set()

        def materialize(value: Value) -> int:
            """Emit immed instructions for a constant operand; returns
            the number of instructions emitted."""
            if not isinstance(value, Constant) or value.type.is_pointer:
                return 0
            magnitude = value.value
            if magnitude < 256:
                return 0
            key = (magnitude, 0)
            if key in materialized:
                return 0
            materialized.add(key)
            emit(NICInstruction("immed", dst="tmp", srcs=(str(magnitude & 0xFFFF),)))
            if magnitude > 0xFFFF:
                emit(
                    NICInstruction(
                        "immed_w1", dst="tmp", srcs=(str(magnitude >> 16),)
                    )
                )
            return 1

        for instr in block.instructions:
            if id(instr) in fused:
                continue
            category = classify_instruction(instr, alloca_map)

            if isinstance(instr, BinaryOp):
                self._compile_binop(
                    instr, block, emit, fused, single_use, materialize
                )
            elif isinstance(instr, ICmp):
                consumer = single_use.get(id(instr))
                terminator = block.terminator
                if (
                    consumer is terminator
                    and isinstance(terminator, CondBr)
                    and not instr.lhs.type.is_pointer
                ):
                    # Fused into br_cond at the terminator.
                    fused.add(id(instr))
                    materialize(instr.lhs)
                    materialize(instr.rhs)
                    instr.meta["fused_with_branch"] = True
                else:
                    materialize(instr.lhs)
                    materialize(instr.rhs)
                    emit(NICInstruction("alu", dst="cc", srcs=("sub",)))
                    emit(NICInstruction("alu_shf", dst="flag", srcs=("carry",)))
            elif isinstance(instr, Select):
                emit(NICInstruction("br_cond", srcs=("sel",)))
                emit(NICInstruction("alu", dst="sel", srcs=("b",)))
                emit(NICInstruction("alu", dst="sel", srcs=("a",)))
            elif isinstance(instr, Cast):
                self._compile_cast(instr, emit)
            elif isinstance(instr, Alloca):
                pass  # register or lmem slot; no code
            elif isinstance(instr, (Load, Store)):
                self._compile_memory(
                    instr,
                    category,
                    emit,
                    regalloc,
                    materialize,
                    packs_read,
                    packs_written,
                )
            elif isinstance(instr, GEP):
                self._compile_gep(instr, emit, materialize)
            elif isinstance(instr, Call):
                self._compile_call(instr, emit, materialize)
            elif isinstance(instr, Br):
                emit(NICInstruction("br", srcs=(instr.target.name,)))
            elif isinstance(instr, CondBr):
                # If the comparison fused, this is a single compare-and-
                # branch; otherwise it branches on a register flag.
                emit(
                    NICInstruction(
                        "br_cond",
                        srcs=(instr.if_true.name, instr.if_false.name),
                    )
                )
            elif isinstance(instr, Ret):
                emit(NICInstruction("rtn"))
            elif isinstance(instr, Phi):
                # Resolved by the register allocator as a move on each
                # incoming edge; charge one ALU move.
                emit(NICInstruction("alu", dst="phi", srcs=("mov",)))
            else:  # pragma: no cover - exhaustive over the ISA
                raise TypeError(f"cannot select for {instr.opcode}")
        return basm

    # -- selection helpers --------------------------------------------------
    def _compile_binop(
        self, instr: BinaryOp, block, emit, fused, single_use, materialize
    ) -> None:
        opcode = instr.opcode
        bits = instr.type.bits if isinstance(instr.type, IntType) else 32
        wide = bits > 32

        if opcode in ("shl", "lshr", "ashr"):
            consumer = single_use.get(id(instr))
            if (
                consumer is not None
                and consumer.parent is block
                and isinstance(consumer, BinaryOp)
                and consumer.opcode in ("add", "sub", "and", "or", "xor")
                and not wide
            ):
                # Fuse into the consumer's alu_shf.
                fused.add(id(instr))
                consumer.meta["fused_shift"] = True
                materialize(instr.lhs)
                return
            materialize(instr.lhs)
            materialize(instr.rhs)
            emit(NICInstruction("alu_shf", dst="r", srcs=(opcode,)))
            if wide:
                emit(NICInstruction("alu_shf", dst="r_hi", srcs=(opcode,)))
                emit(NICInstruction("alu", dst="r_hi", srcs=("or",)))
            return

        if opcode in ("add", "sub", "and", "or", "xor"):
            materialize(instr.lhs)
            materialize(instr.rhs)
            if instr.meta.get("fused_shift"):
                emit(NICInstruction("alu_shf", dst="r", srcs=(opcode, "shift")))
            else:
                emit(NICInstruction("alu", dst="r", srcs=(opcode,)))
            if wide:
                # carry-propagating second half (add/sub) or plain pair op.
                emit(NICInstruction("alu", dst="r_hi", srcs=(opcode + "c",)))
            return

        if opcode == "mul":
            const = self._const_operand(instr)
            if const is not None and _is_power_of_two(const):
                emit(NICInstruction("alu_shf", dst="r", srcs=("shl",)))
            elif const is not None and const < 256:
                emit(NICInstruction("alu_shf", dst="r", srcs=("shl",)))
                emit(NICInstruction("alu", dst="r", srcs=("add",)))
                emit(NICInstruction("alu_shf", dst="r", srcs=("shl",)))
            else:
                materialize(instr.lhs)
                materialize(instr.rhs)
                steps = 10 if wide else 5
                for _ in range(steps):
                    emit(NICInstruction("mul_step", dst="r"))
            return

        if opcode in ("udiv", "sdiv", "urem", "srem"):
            const = self._const_operand(instr, rhs_only=True)
            if const is not None and _is_power_of_two(const):
                emit(NICInstruction("alu_shf", dst="r", srcs=("shr",)))
                return
            # Software divide: unrolled conditional-subtract loop.
            materialize(instr.lhs)
            materialize(instr.rhs)
            for _ in range(8):
                emit(NICInstruction("alu_shf", dst="q", srcs=("shl",)))
                emit(NICInstruction("alu", dst="t", srcs=("sub",)))
                emit(NICInstruction("br_cond", srcs=("div_step",)))
            for _ in range(6):
                emit(NICInstruction("alu", dst="q", srcs=("fixup",)))
            return

        raise TypeError(f"unhandled binop {opcode}")  # pragma: no cover

    @staticmethod
    def _const_operand(instr: BinaryOp, rhs_only: bool = False) -> Optional[int]:
        if isinstance(instr.rhs, Constant):
            return instr.rhs.value
        if not rhs_only and isinstance(instr.lhs, Constant):
            return instr.lhs.value
        return None

    def _compile_cast(self, instr: Cast, emit) -> None:
        src_bits = (
            instr.value.type.bits if isinstance(instr.value.type, IntType) else 32
        )
        dst_bits = instr.type.bits if isinstance(instr.type, IntType) else 32
        if instr.opcode == "bitcast":
            return
        if instr.opcode == "zext":
            if dst_bits > 32 and src_bits <= 32:
                emit(NICInstruction("immed", dst="r_hi", srcs=("0",)))
            # within one register: values are kept zero-extended
            return
        if instr.opcode == "sext":
            emit(NICInstruction("alu_shf", dst="r", srcs=("shl",)))
            emit(NICInstruction("alu_shf", dst="r", srcs=("asr",)))
            return
        if instr.opcode == "trunc":
            if dst_bits < 32:
                emit(NICInstruction("ld_field", dst="r", srcs=(f"b{dst_bits}",)))
            return

    def _compile_gep(self, instr: GEP, emit, materialize) -> None:
        # Constant field paths fold into the access; variable indices
        # need address arithmetic.
        for index in instr.indices:
            if isinstance(index, Value) and not isinstance(index, Constant):
                emit(NICInstruction("alu_shf", dst="addr", srcs=("scale",)))
                emit(NICInstruction("alu", dst="addr", srcs=("add",)))
            elif isinstance(index, Constant):
                materialize(index)

    def _compile_memory(
        self,
        instr,
        category: Category,
        emit,
        regalloc: _RegAlloc,
        materialize,
        packs_read: Set[Tuple[str, ...]],
        packs_written: Set[Tuple[str, ...]],
    ) -> None:
        is_store = isinstance(instr, Store)
        if is_store:
            materialize(instr.value)
        size = (
            instr.value.type.size_bytes() if is_store else instr.type.size_bytes()
        )

        if category == Category.MEM_STATELESS:
            root = trace_pointer_root(instr.ptr)
            if isinstance(root, Alloca) and regalloc.is_promoted(root):
                return  # register-resident: no code at all
            emit(
                NICInstruction(
                    "lmem_write" if is_store else "lmem_read",
                    region="lmem",
                    size=size,
                )
            )
            return

        if category == Category.MEM_PACKET:
            # Header fields live in transfer registers after ingress DMA.
            emit(NICInstruction("ld_field", dst="hdr", srcs=("pkt",)))
            return

        # Stateful access: resolve the backing global and its pack.
        target = pointer_target(instr.ptr, None)
        _, _, gname = target.partition(":")
        pack = self.config.pack_of(gname)
        if pack is not None:
            key = pack.variables
            already = packs_written if is_store else packs_read
            if key in already:
                return  # served by the transfer registers of the pack
            already.add(key)
            size = pack.access_bytes
        emit(
            NICInstruction(
                "mem_write" if is_store else "mem_read",
                region=f"state:{gname}",
                size=size,
            )
        )

    def _compile_call(self, instr: Call, emit, materialize) -> None:
        for arg in instr.args:
            materialize(arg)
        name = instr.callee
        if name == "send":
            emit(NICInstruction("pkt_send"))
            return
        if name == "drop":
            emit(NICInstruction("pkt_drop"))
            return
        if name in ("in_port", "timestamp_ns", "payload_len"):
            emit(NICInstruction("ld_field", dst="meta", srcs=(name,)))
            return
        if name in ("eth_header", "ip_header", "tcp_header", "udp_header"):
            # Header views are offsets into the transfer registers.
            emit(NICInstruction("alu", dst="hview", srcs=("add",)))
            return
        if name == "payload_byte":
            emit(NICInstruction("mem_read", region=REGION_CTM, size=1))
            return
        if name == "set_payload_byte":
            emit(NICInstruction("mem_write", region=REGION_CTM, size=1))
            return
        if name == "random_u32":
            emit(NICInstruction("rand", dst="r"))
            return
        if name in ("checksum_update_ip", "checksum_update_tcp"):
            if self.config.use_checksum_accel and self.target.supports("csum"):
                emit(NICInstruction("csum", dst="sum", comment="ingress engine"))
            else:
                emit(NICInstruction("call", srcs=("sw_checksum",)))
            return
        # Stateful data-structure APIs and any remaining calls become
        # library calls; the machine model charges their cost using the
        # reverse-ported routine profiles.
        gname = ""
        if instr.args and isinstance(instr.args[0], GlobalVariable):
            gname = instr.args[0].name
        emit(NICInstruction("call", srcs=(name, gname)))


def compile_module(
    module: Module,
    config: Optional[PortConfig] = None,
    target: "str | TargetDescription | None" = None,
) -> NICProgram:
    """Compile an NFIR module to NIC assembly under a port config for
    one registered target (default ``nfp-4000``)."""
    return NFCC(module, config, target=target).compile()
