"""Cost profiles of the NIC's built-in library routines.

Stateful framework APIs (hashmap/vector ops) compile to calls into the
NIC's data-structure library.  The profiles below are derived from the
reverse-ported implementations in :mod:`repro.click.reverse_port`
(fixed 4-way buckets, tag+value layout, invalidation-only deletes):
``cycles`` is the expected micro-engine issue time of the routine body
and ``accesses`` the expected memory operations against the backing
global's region.  ``derive_from_reverse_port`` recomputes the compute
side by actually compiling the reverse-ported code with the NFCC — the
test suite asserts the static table stays consistent with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: (kind, size_bytes, expected_count_per_call); kind "state" resolves
#: to the backing global's placed region.
Access = Tuple[str, int, float]


@dataclass(frozen=True)
class ApiCost:
    cycles: float
    accesses: Tuple[Access, ...]


#: Expected probes per lookup with 4-way buckets at moderate occupancy.
_EXPECTED_PROBES = 2.5

API_COSTS: Dict[str, ApiCost] = {
    # Stateless packet APIs: header views are offsets into the
    # pre-DMA'd transfer registers; send/drop drive the egress path.
    "eth_header": ApiCost(cycles=1, accesses=()),
    "ip_header": ApiCost(cycles=1, accesses=()),
    "tcp_header": ApiCost(cycles=1, accesses=()),
    "udp_header": ApiCost(cycles=1, accesses=()),
    "payload_len": ApiCost(cycles=1, accesses=()),
    "in_port": ApiCost(cycles=1, accesses=()),
    "timestamp_ns": ApiCost(cycles=1, accesses=()),
    "payload_byte": ApiCost(cycles=2, accesses=(("ctm", 1, 1.0),)),
    "set_payload_byte": ApiCost(cycles=2, accesses=(("ctm", 1, 1.0),)),
    "send": ApiCost(cycles=5, accesses=(("ctm", 64, 1.0),)),
    "drop": ApiCost(cycles=2, accesses=()),
    "random_u32": ApiCost(cycles=1, accesses=()),
    # find: hash (4 cyc) + bucket loop (~3 cyc/probe) + result select;
    # one coalesced tag read for the bucket, one value read on hit.
    "hashmap_find": ApiCost(
        cycles=4 + 3 * _EXPECTED_PROBES + 3,
        accesses=(("state", 16, 1.0), ("state", 8, 0.7)),
    ),
    "hashmap_insert": ApiCost(
        cycles=4 + 3 * _EXPECTED_PROBES + 5,
        accesses=(("state", 16, 1.0), ("state", 4, 1.0), ("state", 8, 1.0)),
    ),
    "hashmap_erase": ApiCost(
        cycles=4 + 3 * _EXPECTED_PROBES + 2,
        accesses=(("state", 16, 1.0), ("state", 4, 0.8)),
    ),
    "hashmap_size": ApiCost(cycles=2, accesses=(("state", 4, 1.0),)),
    "vector_at": ApiCost(
        cycles=5, accesses=(("state", 1, 1.0), ("state", 8, 0.9))
    ),
    "vector_push": ApiCost(
        cycles=7,
        accesses=(("state", 4, 1.0), ("state", 8, 1.0), ("state", 1, 1.0)),
    ),
    "vector_size": ApiCost(cycles=2, accesses=(("state", 4, 1.0),)),
    "vector_remove": ApiCost(
        cycles=4, accesses=(("state", 1, 1.0), ("state", 4, 1.0))
    ),
}

#: Software checksum: fixed header cost plus per-16-bit-word folding.
SW_CHECKSUM_BASE_CYCLES = 900.0
SW_CHECKSUM_CYCLES_PER_WORD = 10.0


def sw_checksum_cycles(packet_bytes: int) -> float:
    """Cycles for the software checksum loop over a packet.

    Calibrated so a ~220-byte packet costs ~2000 cycles, matching the
    paper's "2000+ cycles on the general-purpose cores".
    """
    return SW_CHECKSUM_BASE_CYCLES + SW_CHECKSUM_CYCLES_PER_WORD * (
        packet_bytes / 2.0
    )


def api_cost(name: str) -> ApiCost:
    try:
        return API_COSTS[name]
    except KeyError:
        # Unknown library routine: a conservative default.
        return ApiCost(cycles=10.0, accesses=(("state", 4, 1.0),))


def derive_from_reverse_port(api_name: str) -> float:
    """Recompute a routine's compute cycles by compiling its
    reverse-ported implementation (consistency oracle for tests)."""
    from repro.click.frontend import lower_element
    from repro.click.reverse_port import reverse_port_element
    from repro.nic.compiler import compile_module

    element = reverse_port_element(api_name)
    module = lower_element(element)
    program = compile_module(module)
    helper_blocks = [
        b
        for b in program.handler.blocks
        if b.name.startswith("inl.rp_")
    ]
    return float(sum(b.issue_cycles() for b in helper_blocks))
