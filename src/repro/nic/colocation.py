"""NF colocation on a shared SmartNIC (paper Section 4.5).

Two NFs placed on the same NIC split the micro-engines but *share* the
memory subsystem; interference "primarily stems from contention at the
memory subsystems" (the paper citing SLOMO).  The joint fixed point
below couples the two NFs through the region-utilization terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.nic.isa import NICProgram
from repro.nic.machine import NICModel, PerfResult, WorkloadCharacter


@dataclass
class ColocationResult:
    """Joint performance of a colocated NF pair."""

    perf_a: PerfResult
    perf_b: PerfResult
    solo_a: PerfResult
    solo_b: PerfResult

    @property
    def total_throughput_loss(self) -> float:
        """1 - (colocated aggregate / solo aggregate): the paper's best
        ranking objective (Figure 14a, "Th.Tot.")."""
        solo = self.solo_a.throughput_mpps + self.solo_b.throughput_mpps
        coloc = self.perf_a.throughput_mpps + self.perf_b.throughput_mpps
        return 1.0 - coloc / solo if solo > 0 else 0.0

    @property
    def average_throughput_loss(self) -> float:
        losses = []
        for perf, solo in ((self.perf_a, self.solo_a), (self.perf_b, self.solo_b)):
            if solo.throughput_mpps > 0:
                losses.append(1.0 - perf.throughput_mpps / solo.throughput_mpps)
        return sum(losses) / len(losses) if losses else 0.0

    @property
    def total_latency_loss(self) -> float:
        solo = self.solo_a.latency_us + self.solo_b.latency_us
        coloc = self.perf_a.latency_us + self.perf_b.latency_us
        return coloc / solo - 1.0 if solo > 0 else 0.0

    @property
    def average_latency_loss(self) -> float:
        losses = []
        for perf, solo in ((self.perf_a, self.solo_a), (self.perf_b, self.solo_b)):
            if solo.latency_us > 0:
                losses.append(perf.latency_us / solo.latency_us - 1.0)
        return sum(losses) / len(losses) if losses else 0.0


def simulate_colocation(
    model: NICModel,
    program_a: NICProgram,
    freq_a: Mapping[str, float],
    program_b: NICProgram,
    freq_b: Mapping[str, float],
    workload: WorkloadCharacter,
    cores_a: Optional[int] = None,
    cores_b: Optional[int] = None,
) -> ColocationResult:
    """Simulate two NFs sharing the NIC.

    By default each NF gets half the micro-engines (the paper: "each NF
    is given the same amount of SmartNIC resources" unless configured).
    Solo baselines use the same per-NF core share so the measured loss
    isolates *memory* interference, matching the paper's normalization.
    """
    half = model.n_cores // 2
    n_a = cores_a if cores_a is not None else half
    n_b = cores_b if cores_b is not None else half

    demand_a = model.packet_demand(program_a, freq_a, workload)
    demand_b = model.packet_demand(program_b, freq_b, workload)
    line_rate = model.line_rate_pps(workload.packet_bytes)

    # Solo baselines (each NF alone on its core share).
    solo_a = model.simulate(program_a, freq_a, workload, cores=n_a)
    solo_b = model.simulate(program_b, freq_b, workload, cores=n_b)

    x_a, x_b = 1e6, 1e6
    lat_a = lat_b = 0.0
    for _ in range(80):
        util = model._utilization([(demand_a, x_a), (demand_b, x_b)])
        mem_a = model._memory_cycles(demand_a, util) + demand_a.accel_cycles
        mem_b = model._memory_cycles(demand_b, util) + demand_b.accel_cycles
        lat_a = demand_a.issue_cycles + mem_a + model.dispatch_cycles_per_core * n_a
        lat_b = demand_b.issue_cycles + mem_b + model.dispatch_cycles_per_core * n_b
        new_a = min(
            n_a * model.threads_per_core * model.freq_hz / lat_a,
            n_a * model.freq_hz / demand_a.issue_cycles,
            line_rate,
        )
        new_b = min(
            n_b * model.threads_per_core * model.freq_hz / lat_b,
            n_b * model.freq_hz / demand_b.issue_cycles,
            line_rate,
        )
        # Shared-bandwidth ceiling: if any region would exceed its
        # sustainable utilization, throttle both NFs proportionally.
        trial = model._utilization([(demand_a, new_a), (demand_b, new_b)])
        worst = max(trial.values(), default=0.0)
        if worst > model.MAX_UTILIZATION:
            scale = model.MAX_UTILIZATION / worst
            new_a *= scale
            new_b *= scale
        x_a = 0.5 * x_a + 0.5 * new_a
        x_b = 0.5 * x_b + 0.5 * new_b

    util = model._utilization([(demand_a, x_a), (demand_b, x_b)])
    perf_a = PerfResult(
        throughput_mpps=x_a / 1e6,
        latency_us=lat_a / model.freq_hz * 1e6,
        per_packet_cycles=lat_a,
        compute_cycles=demand_a.issue_cycles,
        memory_cycles=lat_a - demand_a.issue_cycles,
        region_utilization=dict(util),
    )
    perf_b = PerfResult(
        throughput_mpps=x_b / 1e6,
        latency_us=lat_b / model.freq_hz * 1e6,
        per_packet_cycles=lat_b,
        compute_cycles=demand_b.issue_cycles,
        memory_cycles=lat_b - demand_b.issue_cycles,
        region_utilization=dict(util),
    )
    return ColocationResult(perf_a=perf_a, perf_b=perf_b, solo_a=solo_a, solo_b=solo_b)
