"""The multicore SmartNIC performance model.

Models a Netronome-style NFP: ``n_cores`` wimpy micro-engines at 1.2GHz
(paper Section 4.2: "60x 1.2GHz cores"), 8 hardware threads per engine
hiding memory latency, run-to-completion packet processing, shared
memory regions with finite bandwidth, and a 40Gbps line-rate cap.

Given a compiled :class:`~repro.nic.isa.NICProgram`, per-packet basic
block frequencies (obtained by host-side profiling — valid because
reverse porting keeps control flow symmetric, Section 3.3), and a
workload character, the model solves a fixed point:

* per-packet service time ``T = C_issue + sum(latency of memory and
  accelerator operations)``, where each region's latency inflates with
  its utilization (M/M/1-style queueing);
* throughput ``X = min(compute-bound, concurrency-bound, line rate)``
  where the concurrency bound is Little's law over ``cores x threads``
  outstanding packets;
* region utilization is driven by ``X``, closing the loop.

This produces the paper's scale-out phenomenology (Figure 11): rising
throughput that plateaus at a memory- or IO-bound knee, latency that
keeps climbing with added cores, and workload-dependent knee positions
(cache-friendly "large flow" workloads peak at fewer cores).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.nic.isa import FunctionAsm, NICInstruction, NICProgram
from repro.nic.libnfp import api_cost, sw_checksum_cycles
from repro.nic.port import PortConfig
from repro.nic.regions import (
    MemoryHierarchy,
    REGION_EMEM,
    REGION_EMEM_CACHE,
    REGION_LMEM,
)
from repro.nic.targets import TargetDescription, resolve_target

# The accelerator latency table, per-packet path overheads, and the
# dispatch cost all moved into the active TargetDescription
# (repro.nic.targets) — NICModel reads them from ``self.target``.
# The dispatch cost is the work-distribution overhead that grows with
# the number of participating micro-engines: every active context
# polls the dispatch rings and arbitration takes longer the more
# contenders there are.  This is what makes per-packet latency keep
# climbing past the throughput knee (paper Figure 11(e): MazuNAT
# latency roughly triples from few cores to 60) and makes
# over-provisioning cores actively bad.


@dataclass
class WorkloadCharacter:
    """The workload facts the performance model needs.

    Produced by :mod:`repro.workload` from a traffic specification.
    """

    packet_bytes: int = 256
    #: probability an EMEM state access hits the SRAM cache.
    emem_cache_hit_rate: float = 0.5
    #: probability an LPM/flow-cache lookup hits the CAM.
    flow_cache_hit_rate: float = 0.85
    #: software cycles charged on a flow-cache miss (the original
    #: lookup loop); measured from the naive port by the harness.
    lpm_miss_penalty_cycles: float = 0.0
    name: str = "default"

    def __post_init__(self) -> None:
        if not 0.0 <= self.emem_cache_hit_rate <= 1.0:
            raise ValueError("emem_cache_hit_rate out of range")
        if not 0.0 <= self.flow_cache_hit_rate <= 1.0:
            raise ValueError("flow_cache_hit_rate out of range")


@dataclass
class PerfResult:
    throughput_mpps: float
    latency_us: float
    per_packet_cycles: float
    compute_cycles: float
    memory_cycles: float
    region_utilization: Dict[str, float] = field(default_factory=dict)
    bound: str = ""  # "compute" | "concurrency" | "line_rate"

    @property
    def tput_lat_ratio(self) -> float:
        """The Mpps/us ratio curve plotted in Figure 11(c)-(d)."""
        if self.latency_us <= 0:
            return 0.0
        return self.throughput_mpps / self.latency_us


@dataclass
class _Demand:
    """Per-packet resource demand extracted from a compiled program."""

    issue_cycles: float = 0.0
    #: region -> list of (size_bytes, count_per_packet)
    accesses: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    accel_cycles: float = 0.0

    def add_access(self, region: str, size: int, count: float) -> None:
        self.accesses.setdefault(region, []).append((size, count))

    def region_ops(self, region: str) -> float:
        return sum(count for _, count in self.accesses.get(region, ()))


class NICModel:
    """The simulated NIC as a queueing-style analytical machine."""

    def __init__(
        self,
        hierarchy: Optional[MemoryHierarchy] = None,
        n_cores: Optional[int] = None,
        threads_per_core: Optional[int] = None,
        freq_hz: Optional[float] = None,
        line_rate_gbps: Optional[float] = None,
        target: "str | TargetDescription | None" = None,
    ) -> None:
        """A machine model for ``target`` (default ``nfp-4000``).

        Explicit ``hierarchy``/topology arguments override the
        target's declared constants (used by ablations and tests);
        omitted ones resolve from the description.
        """
        desc = resolve_target(target)
        self.target = desc
        self.hierarchy = hierarchy or desc.hierarchy()
        self.n_cores = desc.n_cores if n_cores is None else n_cores
        self.threads_per_core = (
            desc.threads_per_core if threads_per_core is None
            else threads_per_core
        )
        self.freq_hz = desc.freq_hz if freq_hz is None else freq_hz
        self.line_rate_gbps = (
            desc.line_rate_gbps if line_rate_gbps is None else line_rate_gbps
        )
        self.dispatch_cycles_per_core = desc.dispatch_cycles_per_core

    # -- demand extraction ------------------------------------------------
    def _resolve_region(self, instr: NICInstruction, config: PortConfig) -> str:
        region = instr.region or REGION_EMEM
        if region.startswith("state:"):
            return config.region_of(region.split(":", 1)[1])
        return region

    def packet_demand(
        self,
        program: NICProgram,
        block_freq: Mapping[str, float],
        workload: WorkloadCharacter,
        function: str = "pkt_handler",
    ) -> _Demand:
        """Expected per-packet resource demand for one NF.

        ``block_freq`` maps block names to expected executions per
        packet (host-profile counts divided by packets).
        """
        config: PortConfig = program.meta.get("config") or PortConfig()
        fasm: FunctionAsm = program.functions[function]
        demand = _Demand()
        demand.issue_cycles += self.target.ingress_cycles + self.target.egress_cycles
        # Off-path devices round-trip every packet through the SoC
        # memory complex over PCIe; the DMA engine does the work, so
        # like accelerator time the hop adds latency (hidden by other
        # hardware threads) rather than pipeline-issue occupancy.
        demand.accel_cycles += self.target.host_dma_cycles
        # Header DMA into CTM transfer registers.
        demand.add_access("ctm", 64, 1.0)

        # Accelerator-substituted blocks execute once per *entry* into
        # the substituted region, not once per original loop iteration
        # — host-profiled frequencies describe the unsubstituted loop.
        # The entry frequency is approximated by the last preceding
        # unsubstituted block in layout order.
        substituted = (
            config.crc_accel_blocks
            | config.lpm_accel_blocks
            | config.crypto_accel_blocks
        )
        effective_freq: Dict[str, float] = {}
        last_normal_freq = 1.0
        for block in fasm.blocks:
            freq = float(block_freq.get(block.name, 0.0))
            if block.name in substituted:
                effective_freq[block.name] = min(freq, last_normal_freq)
            else:
                effective_freq[block.name] = freq
                if freq > 0.0:
                    last_normal_freq = freq

        for block in fasm.blocks:
            freq = effective_freq.get(block.name, 0.0)
            if freq <= 0.0:
                continue
            for instr in block.instructions:
                self._charge_instruction(instr, freq, demand, config, workload)
        return demand

    def _charge_instruction(
        self,
        instr: NICInstruction,
        freq: float,
        demand: _Demand,
        config: PortConfig,
        workload: WorkloadCharacter,
    ) -> None:
        demand.issue_cycles += freq * instr.issue_cycles
        if instr.is_memory:
            region = self._resolve_region(instr, config)
            if region == REGION_LMEM:
                return  # already charged via issue cycles (3-cycle op)
            if region == REGION_EMEM:
                hit = workload.emem_cache_hit_rate
                if hit > 0.0:
                    demand.add_access(REGION_EMEM_CACHE, instr.size, freq * hit)
                if hit < 1.0:
                    demand.add_access(REGION_EMEM, instr.size, freq * (1.0 - hit))
            else:
                demand.add_access(region, instr.size, freq)
            return
        if instr.opcode == "csum":
            demand.accel_cycles += freq * self.target.accel_latency("csum")
            return
        if instr.opcode == "crc":
            demand.accel_cycles += freq * (
                self.target.accel_latency("crc")
                + self.target.crc_byte_cycles * workload.packet_bytes
            )
            return
        if instr.opcode == "crypto":
            demand.accel_cycles += freq * (
                self.target.accel_latency("crypto")
                + self.target.crypto_byte_cycles * workload.packet_bytes
            )
            return
        if instr.opcode == "cam_lookup":
            hit = workload.flow_cache_hit_rate
            demand.accel_cycles += freq * self.target.accel_latency("cam_lookup")
            if hit < 1.0:
                # Misses fall back to the software match path.  Like the
                # memory stalls that path is made of, the penalty is
                # hidden by the engine's other hardware threads, so it
                # adds latency rather than pipeline-issue occupancy.
                demand.accel_cycles += (
                    freq * (1.0 - hit) * workload.lpm_miss_penalty_cycles
                )
            return
        if instr.opcode == "call":
            callee = instr.srcs[0] if instr.srcs else ""
            if callee == "sw_checksum":
                demand.issue_cycles += freq * sw_checksum_cycles(
                    workload.packet_bytes
                )
                return
            gname = instr.srcs[1] if len(instr.srcs) > 1 else ""
            cost = api_cost(callee)
            demand.issue_cycles += freq * cost.cycles
            for kind, size, count in cost.accesses:
                region = config.region_of(gname) if kind == "state" else kind
                if region == REGION_EMEM:
                    hit = workload.emem_cache_hit_rate
                    if hit > 0.0:
                        demand.add_access(
                            REGION_EMEM_CACHE, size, freq * count * hit
                        )
                    if hit < 1.0:
                        demand.add_access(
                            REGION_EMEM, size, freq * count * (1.0 - hit)
                        )
                else:
                    demand.add_access(region, size, freq * count)

    # -- the fixed point ---------------------------------------------------
    #: utilization above this level only adds queueing delay, never
    #: more throughput (hard ceiling applied to X).
    MAX_UTILIZATION = 0.95
    #: utilization cap inside the latency-inflation term (bounds the
    #: M/M/1 blow-up so the fixed point stays smooth and monotone).
    INFLATION_RHO_CAP = 0.85

    def _memory_cycles(
        self, demand: _Demand, utilization: Mapping[str, float]
    ) -> float:
        total = 0.0
        for region, ops in demand.accesses.items():
            latency = float(self.hierarchy.latency(region))
            rho = min(utilization.get(region, 0.0), self.INFLATION_RHO_CAP)
            inflation = 1.0 / (1.0 - rho)
            for _size, count in ops:
                total += count * latency * inflation
        return total

    def _bandwidth_ceiling(self, demand: _Demand) -> float:
        """Max packets/sec any single region's bandwidth allows."""
        ceiling = float("inf")
        for region in demand.accesses:
            ops = demand.region_ops(region)
            if ops <= 0:
                continue
            capacity = self.hierarchy.region(region).bandwidth_ops * self.freq_hz
            ceiling = min(ceiling, self.MAX_UTILIZATION * capacity / ops)
        return ceiling

    def _utilization(
        self, demands: List[Tuple[_Demand, float]]
    ) -> Dict[str, float]:
        """Region utilizations given (demand, throughput_pps) pairs."""
        util: Dict[str, float] = {}
        for demand, throughput in demands:
            for region in demand.accesses:
                ops_per_sec = demand.region_ops(region) * throughput
                capacity = (
                    self.hierarchy.region(region).bandwidth_ops * self.freq_hz
                )
                util[region] = util.get(region, 0.0) + ops_per_sec / capacity
        return util

    def line_rate_pps(self, packet_bytes: int) -> float:
        # 20 bytes of per-packet framing overhead on the wire.
        return self.line_rate_gbps * 1e9 / 8.0 / (packet_bytes + 20.0)

    def simulate(
        self,
        program: NICProgram,
        block_freq: Mapping[str, float],
        workload: WorkloadCharacter,
        cores: Optional[int] = None,
    ) -> PerfResult:
        """Throughput/latency for one NF using ``cores`` micro-engines."""
        config: PortConfig = program.meta.get("config") or PortConfig()
        n = min(cores if cores is not None else config.cores, self.n_cores)
        demand = self.packet_demand(program, block_freq, workload)
        line_rate = self.line_rate_pps(workload.packet_bytes)

        bw_ceiling = self._bandwidth_ceiling(demand)
        compute_bound = n * self.freq_hz / demand.issue_cycles
        hard_cap = min(compute_bound, line_rate, bw_ceiling)

        dispatch_cycles = self.dispatch_cycles_per_core * n

        def latency_at(x: float) -> float:
            util = self._utilization([(demand, x)])
            return (
                demand.issue_cycles
                + self._memory_cycles(demand, util)
                + demand.accel_cycles
                + dispatch_cycles
            )

        def excess(x: float) -> float:
            """x minus its concurrency-bound response; the unique fixed
            point is the root (T is nondecreasing in x, so this is
            strictly increasing)."""
            concurrency = n * self.threads_per_core * self.freq_hz / latency_at(x)
            return x - min(concurrency, hard_cap)

        lo, hi = 0.0, hard_cap
        if excess(hi) <= 0:
            throughput = hard_cap
        else:
            for _ in range(50):
                mid = 0.5 * (lo + hi)
                if excess(mid) > 0:
                    hi = mid
                else:
                    lo = mid
            throughput = 0.5 * (lo + hi)
        latency_cycles = latency_at(throughput)

        if throughput >= hard_cap * 0.999:
            if hard_cap == line_rate:
                bound = "line_rate"
            elif hard_cap == compute_bound:
                bound = "compute"
            else:
                bound = "bandwidth"
        else:
            bound = "concurrency"
        util = self._utilization([(demand, throughput)])
        return PerfResult(
            throughput_mpps=throughput / 1e6,
            latency_us=latency_cycles / self.freq_hz * 1e6,
            per_packet_cycles=latency_cycles,
            compute_cycles=demand.issue_cycles,
            memory_cycles=latency_cycles - demand.issue_cycles,
            region_utilization=util,
            bound=bound,
        )

    def sweep_cores(
        self,
        program: NICProgram,
        block_freq: Mapping[str, float],
        workload: WorkloadCharacter,
        core_range: Optional[List[int]] = None,
    ) -> Dict[int, PerfResult]:
        """Simulate at every core count (the expert's exhaustive sweep)."""
        cores = core_range or list(range(1, self.n_cores + 1))
        return {
            c: self.simulate(program, block_freq, workload, cores=c)
            for c in cores
        }

    @staticmethod
    def optimal_cores(results: Mapping[int, PerfResult]) -> int:
        """The knee: the smallest core count whose throughput/latency
        ratio is within 1% of the best (paper Section 4.2 navigates
        exactly this tradeoff; past saturation the ratio plateaus, and
        extra cores are wasted resources)."""
        best = max(r.tput_lat_ratio for r in results.values())
        return min(
            c for c, r in results.items()
            if r.tput_lat_ratio >= 0.99 * best
        )
