"""A simulated SoC SmartNIC in the style of the Netronome Agilio NFP.

This package substitutes for the physical Netronome CX 40Gbps SmartNIC
and its closed-source NFCC toolchain that the paper uses (repro note:
the hardware gate called out by the calibration band).  It provides:

* :mod:`repro.nic.isa` — a Micro-C-flavoured micro-engine ISA
  (``alu``, ``alu_shf``, ``immed``, ``mul_step``, ``mem`` ops tagged by
  region, branches, accelerator ops);
* :mod:`repro.nic.regions` — the four-level memory hierarchy
  (CLS/CTM/IMEM/EMEM + EMEM SRAM cache) with capacities, latencies and
  bandwidths;
* :mod:`repro.nic.compiler` — an "opaque" optimizing compiler from
  NFIR to NIC assembly: instruction selection with operation fusion,
  peephole rewrites, and a register allocator that elides stack
  traffic.  This is the black box whose behaviour Clara's LSTM learns;
* :mod:`repro.nic.accel` — the CRC / LPM-flow-cache / checksum
  accelerator engines with constants matching the paper's anecdotes
  (checksums: 2000+ cycles in software vs ~300 on the ingress engine;
  flow-cached LPM about an order of magnitude faster);
* :mod:`repro.nic.machine` — the multicore run-to-completion
  performance model (60 wimpy cores x 8 hardware threads, queueing
  contention at each memory region, 40Gbps line-rate cap) used for
  every throughput/latency number in the benchmarks;
* :mod:`repro.nic.port` — porting configurations (accelerator usage,
  state placement, coalescing packs, core counts) that map Clara's
  insights onto compiled programs.

Fidelity contract: the simulator is an analytical cycle model, not RTL.
What it preserves — and what Clara's analyses actually depend on — is
(a) a nontrivial IR-to-ISA mapping, (b) region-dependent memory costs,
(c) large accelerator speedups, (d) contention-limited scale-out with
workload-dependent knees, and (e) memory interference under colocation.
"""

from repro.nic.isa import NICInstruction, NICProgram, BlockAsm
from repro.nic.regions import (
    MemRegion,
    MemoryHierarchy,
    REGION_CLS,
    REGION_CTM,
    REGION_IMEM,
    REGION_EMEM,
)
from repro.nic.targets import (
    DEFAULT_TARGET,
    TargetDescription,
    get_target,
    list_targets,
    register_target,
    resolve_target,
)
from repro.nic.port import PortConfig
from repro.nic.compiler import NFCC, compile_module
from repro.nic.machine import NICModel, PerfResult, WorkloadCharacter
from repro.nic.colocation import ColocationResult, simulate_colocation

__all__ = [
    "NICInstruction",
    "NICProgram",
    "BlockAsm",
    "MemRegion",
    "MemoryHierarchy",
    "REGION_CLS",
    "REGION_CTM",
    "REGION_IMEM",
    "REGION_EMEM",
    "DEFAULT_TARGET",
    "TargetDescription",
    "get_target",
    "list_targets",
    "register_target",
    "resolve_target",
    "PortConfig",
    "NFCC",
    "compile_module",
    "NICModel",
    "PerfResult",
    "WorkloadCharacter",
    "ColocationResult",
    "simulate_colocation",
]
