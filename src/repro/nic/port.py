"""Porting configurations.

A :class:`PortConfig` captures every decision a developer makes when
porting an NF to the NIC — exactly the knobs Clara's offloading
insights set (paper Section 4): accelerator usage, state placement,
variable coalescing packs, and the core count.  The *naive port* is the
all-defaults config (no accelerators, everything in EMEM, no packing,
all cores) the paper uses as its ground-truth baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.nic.regions import REGION_EMEM


@dataclass
class CoalescePack:
    """A group of stateful scalars packed adjacently and fetched with
    one coalesced access of ``access_bytes`` (Section 4.4)."""

    variables: Tuple[str, ...]
    access_bytes: int

    def __post_init__(self) -> None:
        if not self.variables:
            raise ValueError("empty coalesce pack")
        if self.access_bytes <= 0:
            raise ValueError("pack access size must be positive")


@dataclass
class PortConfig:
    """All porting decisions for one NF.

    * ``use_checksum_accel`` — route ``checksum_update_*`` API calls to
      the ingress checksum engine instead of the software loop.
    * ``crc_accel_blocks`` / ``lpm_accel_blocks`` — basic blocks
      (typically an inlined helper's ``inl.crc32_hash.*`` blocks or an
      LPM loop) replaced by the corresponding accelerator command.
    * ``placement`` — memory region per stateful global; unlisted
      globals default to EMEM (the naive port of Section 5.5).
    * ``packs`` — coalescing packs of stateful scalars.
    * ``cores`` — micro-engine count assigned to the NF.
    """

    use_checksum_accel: bool = False
    crc_accel_blocks: FrozenSet[str] = frozenset()
    lpm_accel_blocks: FrozenSet[str] = frozenset()
    crypto_accel_blocks: FrozenSet[str] = frozenset()
    placement: Dict[str, str] = field(default_factory=dict)
    packs: List[CoalescePack] = field(default_factory=list)
    cores: int = 60

    def region_of(self, global_name: str) -> str:
        return self.placement.get(global_name, REGION_EMEM)

    def pack_of(self, variable: str) -> Optional[CoalescePack]:
        for pack in self.packs:
            if variable in pack.variables:
                return pack
        return None

    def validate(self, global_names: Sequence[str]) -> None:
        known = set(global_names)
        for name in self.placement:
            if name not in known:
                raise ValueError(f"placement names unknown global {name!r}")
        seen: Set[str] = set()
        for pack in self.packs:
            for variable in pack.variables:
                if variable not in known:
                    raise ValueError(f"pack names unknown global {variable!r}")
                if variable in seen:
                    raise ValueError(f"global {variable!r} in multiple packs")
                seen.add(variable)
        if self.cores < 1:
            raise ValueError("cores must be >= 1")


def naive_port(cores: int = 60) -> PortConfig:
    """The faithful, optimization-free port (paper's baseline)."""
    return PortConfig(cores=cores)
