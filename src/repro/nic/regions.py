"""The SmartNIC memory hierarchy (paper Section 4.3).

Netronome NFPs expose cluster local scratch (CLS), cluster target
memory (CTM), internal SRAM (IMEM), and external DRAM (EMEM) "with
increasing sizes and access latencies"; EMEM fronted by an SRAM cache.
Constants below follow the publicly documented NFP-4000/6000 ballpark
(tens to hundreds of cycles; a few KB to GB) — exact values matter less
than the ordering and the ~10x spread, which is what drives the
placement ILP's decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

REGION_CLS = "cls"
REGION_CTM = "ctm"
REGION_IMEM = "imem"
REGION_EMEM = "emem"
#: Pseudo-region for EMEM accesses that hit its SRAM cache.
REGION_EMEM_CACHE = "emem_cache"
#: Per-micro-engine local scratch used for register spills.
REGION_LMEM = "lmem"

PLACEABLE_REGIONS = (REGION_CLS, REGION_CTM, REGION_IMEM, REGION_EMEM)


@dataclass(frozen=True)
class MemRegion:
    """One level of the hierarchy.

    ``bandwidth_ops`` is the aggregate sustained rate in accesses per
    cycle across the whole NIC — the shared resource that saturates
    under multicore scale-out (Section 4.2: "throughput would plateau
    due to contention at the memory subsystem").
    """

    name: str
    capacity_bytes: int
    latency_cycles: int
    bandwidth_ops: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.latency_cycles <= 0:
            raise ValueError(f"bad region constants for {self.name}")
        if self.bandwidth_ops <= 0:
            raise ValueError(f"bad bandwidth for {self.name}")


@dataclass
class MemoryHierarchy:
    regions: Dict[str, MemRegion]

    @property
    def placeable(self) -> List[MemRegion]:
        """Regions NF state may be placed into, fastest first."""
        return [self.regions[name] for name in PLACEABLE_REGIONS]

    def region(self, name: str) -> MemRegion:
        return self.regions[name]

    def latency(self, name: str) -> int:
        return self.regions[name].latency_cycles

    def scaled(self, name: str, **changes) -> "MemoryHierarchy":
        """A copy with one region's constants overridden (for ablations)."""
        regions = dict(self.regions)
        regions[name] = replace(regions[name], **changes)
        return MemoryHierarchy(regions)


def default_hierarchy() -> MemoryHierarchy:
    """The default target's (NFP-4000) hierarchy.

    Kept as an internal convenience while the ``repro.nic`` alias goes
    through its deprecation cycle; the region constants themselves now
    live on the ``nfp-4000`` :class:`~repro.nic.targets.TargetDescription`.
    """
    from repro.nic.targets import DEFAULT_TARGET, get_target

    return get_target(DEFAULT_TARGET).hierarchy()
