"""Pluggable NIC backend descriptions and the target registry.

Historically the whole pipeline was hard-wired to one simulated
Netronome NFP: the compiler's register budget, the machine model's
core/thread topology and accelerator latencies, and the lint rules'
capacity thresholds all lived as module constants inside
``repro.nic``.  That made Clara able to answer only "will this NF run
well on *the* NFP".

This module turns the device into data.  A :class:`TargetDescription`
declares everything the toolchain needs to know about one backend:

* execution model — core/thread topology, clock, line rate, per-packet
  ingress/egress/dispatch overheads, and (for off-path devices) the
  host-DMA hop charged to every packet;
* compiler profile — general-purpose register budget and the set of
  accelerator opcodes the device actually implements;
* accelerator latency table — per-engine fixed cycles plus per-byte
  coefficients for the streaming engines (CRC, crypto);
* memory hierarchy — the same region *names* on every target
  (cls/ctm/imem/emem/emem_cache/lmem) so placement and compilation are
  target-portable, with per-target capacities/latencies/bandwidths.

Targets register under a unique name via :func:`register_target` and
are looked up with :func:`get_target`.  Two built-ins ship:

* ``nfp-4000`` — the original simulated Netronome NFP, bit-identical
  to the pre-registry constants (it *is* those constants, relocated);
* ``dpu-offpath`` — an off-path DPU in the style of recent datapath-
  accelerator SoCs: fewer, beefier cores, faster engines, tiny on-chip
  scratch, big DRAM, and a host-DMA hop added to every packet.

Everything downstream (compiler, machine model, placement, lint,
artifact cache keys, the serve API) resolves its constants through the
active target, so adding a backend is: describe it, register it, and
``clara analyze --target <name>`` works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import UnknownTargetError
from repro.nic.regions import (
    MemRegion,
    MemoryHierarchy,
    REGION_CLS,
    REGION_CTM,
    REGION_EMEM,
    REGION_EMEM_CACHE,
    REGION_IMEM,
    REGION_LMEM,
)

__all__ = [
    "DEFAULT_TARGET",
    "TARGET_SCHEMA",
    "TargetDescription",
    "get_target",
    "list_targets",
    "register_target",
    "resolve_target",
]

#: Version of the ``TargetDescription.to_dict()`` layout.
TARGET_SCHEMA = 1

#: Name of the target used when none is specified — the original NFP.
DEFAULT_TARGET = "nfp-4000"

#: Accelerator opcodes a target may implement (matches
#: :data:`repro.nic.isa.ACCEL_OPCODES`).
_KNOWN_ACCEL_OPS = ("csum", "crc", "cam_lookup", "crypto")


@dataclass(frozen=True)
class TargetDescription:
    """Declarative description of one NIC backend.

    Frozen and fully value-typed so it can key artifact caches and
    round-trip through :meth:`to_dict`/:meth:`from_dict` losslessly.
    """

    name: str
    display_name: str = ""
    description: str = ""

    # -- execution model --------------------------------------------------
    n_cores: int = 60
    threads_per_core: int = 8
    freq_hz: float = 1.2e9
    line_rate_gbps: float = 40.0
    #: fixed per-packet path overheads (ingress DMA, metadata, egress).
    ingress_cycles: float = 80.0
    egress_cycles: float = 40.0
    #: work-distribution cost per participating core (see machine.py).
    dispatch_cycles_per_core: float = 8.0
    #: extra per-packet cycles for the PCIe/DMA hop on off-path devices
    #: whose datapath round-trips through host memory; 0 for on-path.
    host_dma_cycles: float = 0.0

    # -- compiler profile -------------------------------------------------
    #: general-purpose registers per context available to the allocator.
    n_gprs: int = 28
    #: accelerator opcodes the device implements; unsupported ones fall
    #: back to the software path at compile time.
    accel_ops: Tuple[str, ...] = _KNOWN_ACCEL_OPS

    # -- accelerator latency table (cycles) -------------------------------
    accel_cycles: Mapping[str, float] = field(
        default_factory=lambda: {
            "csum": 300.0,
            "crc": 60.0,
            "cam_lookup": 40.0,
            "crypto": 90.0,
        }
    )
    #: per-byte coefficients for the streaming engines.
    crc_byte_cycles: float = 0.25
    crypto_byte_cycles: float = 0.5

    # -- memory hierarchy -------------------------------------------------
    regions: Tuple[MemRegion, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("target name must be non-empty")
        if self.n_cores <= 0 or self.threads_per_core <= 0:
            raise ValueError(f"{self.name}: bad core topology")
        if self.freq_hz <= 0 or self.line_rate_gbps <= 0:
            raise ValueError(f"{self.name}: bad clock or line rate")
        if self.n_gprs <= 0:
            raise ValueError(f"{self.name}: bad register budget")
        if self.host_dma_cycles < 0:
            raise ValueError(f"{self.name}: negative host_dma_cycles")
        unknown = set(self.accel_ops) - set(_KNOWN_ACCEL_OPS)
        if unknown:
            raise ValueError(
                f"{self.name}: unknown accelerator ops {sorted(unknown)}"
            )
        # Normalize the mutable mapping default into a plain dict and
        # freeze the op tuple ordering for deterministic round-trips.
        object.__setattr__(self, "accel_cycles", dict(self.accel_cycles))
        object.__setattr__(self, "accel_ops", tuple(self.accel_ops))
        names = {r.name for r in self.regions}
        required = {
            REGION_CLS, REGION_CTM, REGION_IMEM,
            REGION_EMEM, REGION_EMEM_CACHE, REGION_LMEM,
        }
        if self.regions and not required <= names:
            raise ValueError(
                f"{self.name}: hierarchy missing regions"
                f" {sorted(required - names)}"
            )

    # -- derived views ----------------------------------------------------
    def hierarchy(self) -> MemoryHierarchy:
        """A fresh :class:`MemoryHierarchy` for this target."""
        return MemoryHierarchy({r.name: r for r in self.regions})

    def supports(self, opcode: str) -> bool:
        return opcode in self.accel_ops

    def accel_latency(self, opcode: str) -> float:
        return float(self.accel_cycles.get(opcode, 0.0))

    def host_transfer_cycles(self, n_bytes: int) -> float:
        """Estimated cycles to move ``n_bytes`` of NF state between the
        NIC and the host at a partition cut point: the device's
        host-side hop (the PCIe/DMA round trip for off-path parts,
        ingress+egress re-traversal for on-path ones) plus wire
        serialization of the payload at line rate.  This is the cost
        model the partial-offload partition search charges per packet
        for every byte of state that crosses a cut (CL013 surfaces it
        as live-state-bytes at dominator-frontier cut points)."""
        hop = self.host_dma_cycles or (
            self.ingress_cycles + self.egress_cycles
        )
        wire_seconds = (n_bytes * 8.0) / (self.line_rate_gbps * 1e9)
        return hop + wire_seconds * self.freq_hz

    # -- (de)serialization ------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": TARGET_SCHEMA,
            "name": self.name,
            "display_name": self.display_name,
            "description": self.description,
            "n_cores": int(self.n_cores),
            "threads_per_core": int(self.threads_per_core),
            "freq_hz": float(self.freq_hz),
            "line_rate_gbps": float(self.line_rate_gbps),
            "ingress_cycles": float(self.ingress_cycles),
            "egress_cycles": float(self.egress_cycles),
            "dispatch_cycles_per_core": float(self.dispatch_cycles_per_core),
            "host_dma_cycles": float(self.host_dma_cycles),
            "n_gprs": int(self.n_gprs),
            "accel_ops": list(self.accel_ops),
            "accel_cycles": {
                op: float(cycles) for op, cycles in sorted(
                    self.accel_cycles.items()
                )
            },
            "crc_byte_cycles": float(self.crc_byte_cycles),
            "crypto_byte_cycles": float(self.crypto_byte_cycles),
            "regions": [
                {
                    "name": r.name,
                    "capacity_bytes": int(r.capacity_bytes),
                    "latency_cycles": int(r.latency_cycles),
                    "bandwidth_ops": float(r.bandwidth_ops),
                }
                for r in self.regions
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TargetDescription":
        data = dict(payload)
        schema = data.pop("schema", TARGET_SCHEMA)
        if schema != TARGET_SCHEMA:
            raise ValueError(
                f"unsupported target schema {schema!r}"
                f" (this build reads {TARGET_SCHEMA})"
            )
        regions = tuple(
            MemRegion(
                name=r["name"],
                capacity_bytes=int(r["capacity_bytes"]),
                latency_cycles=int(r["latency_cycles"]),
                bandwidth_ops=float(r["bandwidth_ops"]),
            )
            for r in data.pop("regions", ())
        )
        data["accel_ops"] = tuple(data.get("accel_ops", _KNOWN_ACCEL_OPS))
        return cls(regions=regions, **data)


# ---------------------------------------------------------------------------
# The registry.
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, TargetDescription] = {}


def register_target(target: TargetDescription) -> TargetDescription:
    """Add ``target`` to the registry.  Duplicate names are a
    programming error (re-registering would silently change the
    meaning of cached artifacts keyed on the name)."""
    if target.name in _REGISTRY:
        raise ValueError(f"target {target.name!r} is already registered")
    _REGISTRY[target.name] = target
    return target


def get_target(name: str) -> TargetDescription:
    """The registered description for ``name``.

    Raises :class:`~repro.errors.UnknownTargetError` (CLI exit 12,
    HTTP 404) listing the known names on a miss.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownTargetError(
            f"unknown target {name!r} (known targets: {known})"
        ) from None


def list_targets() -> Tuple[str, ...]:
    """Registered target names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_target(
    target: Union[str, TargetDescription, None],
) -> TargetDescription:
    """Coerce a name / description / ``None`` to a description.

    ``None`` resolves to :data:`DEFAULT_TARGET` — the single place the
    "no target given means the NFP" default lives.
    """
    if target is None:
        return get_target(DEFAULT_TARGET)
    if isinstance(target, TargetDescription):
        return target
    return get_target(target)


# ---------------------------------------------------------------------------
# Built-in targets.
# ---------------------------------------------------------------------------

#: The original simulated Netronome NFP-4000.  These constants are the
#: pre-registry module constants relocated verbatim — analyses against
#: this target are bit-identical to the pre-registry pipeline.
NFP_4000 = register_target(
    TargetDescription(
        name="nfp-4000",
        display_name="Netronome NFP-4000 (on-path SoC)",
        description=(
            "60 wimpy 1.2GHz micro-engines x 8 hardware threads, "
            "CLS/CTM/IMEM/EMEM hierarchy, inline accelerators, 40Gbps"
        ),
        n_cores=60,
        threads_per_core=8,
        freq_hz=1.2e9,
        line_rate_gbps=40.0,
        ingress_cycles=80.0,
        egress_cycles=40.0,
        dispatch_cycles_per_core=8.0,
        host_dma_cycles=0.0,
        n_gprs=28,
        accel_ops=("csum", "crc", "cam_lookup", "crypto"),
        accel_cycles={
            "csum": 300.0,
            "crc": 60.0,
            "cam_lookup": 40.0,
            "crypto": 90.0,
        },
        crc_byte_cycles=0.25,
        crypto_byte_cycles=0.5,
        regions=(
            MemRegion(REGION_CLS, 64 * 1024, 25, 2.0),
            MemRegion(REGION_CTM, 256 * 1024, 55, 1.2),
            MemRegion(REGION_IMEM, 4 * 1024 * 1024, 150, 0.4),
            MemRegion(REGION_EMEM, 2 * 1024 * 1024 * 1024, 300, 0.12),
            MemRegion(REGION_EMEM_CACHE, 3 * 1024 * 1024, 90, 0.8),
            MemRegion(REGION_LMEM, 4 * 1024, 3, 16.0),
        ),
    )
)

#: An off-path DPU with datapath accelerators, in the style of
#: "Demystifying Datapath Accelerator Enhanced Off-path SmartNIC"
#: (PAPERS.md): a handful of beefy 2.5GHz cores (2 hardware threads),
#: fast fixed-function engines, small per-core scratch, large host-side
#: DRAM, and a PCIe/DMA hop charged to every packet because the
#: datapath round-trips through the SoC's memory complex.
DPU_OFFPATH = register_target(
    TargetDescription(
        name="dpu-offpath",
        display_name="Off-path DPU (datapath accelerators)",
        description=(
            "16 beefy 2.5GHz cores x 2 threads, datapath accelerators, "
            "host-DMA hop on every packet, 100Gbps"
        ),
        n_cores=16,
        threads_per_core=2,
        freq_hz=2.5e9,
        line_rate_gbps=100.0,
        ingress_cycles=120.0,
        egress_cycles=60.0,
        dispatch_cycles_per_core=2.0,
        # ~500ns PCIe round-trip at 2.5GHz.
        host_dma_cycles=1250.0,
        n_gprs=64,
        accel_ops=("csum", "crc", "cam_lookup", "crypto"),
        accel_cycles={
            "csum": 80.0,
            "crc": 40.0,
            "cam_lookup": 30.0,
            "crypto": 50.0,
        },
        crc_byte_cycles=0.1,
        crypto_byte_cycles=0.2,
        regions=(
            # Small per-core scratch and L2-slice SRAM tiers.
            MemRegion(REGION_CLS, 8 * 1024, 6, 4.0),
            MemRegion(REGION_CTM, 32 * 1024, 12, 2.5),
            MemRegion(REGION_IMEM, 64 * 1024, 30, 1.5),
            # Big DDR behind the NOC; generous last-level cache.
            MemRegion(REGION_EMEM, 8 * 1024 * 1024 * 1024, 350, 0.25),
            MemRegion(REGION_EMEM_CACHE, 4 * 1024 * 1024, 60, 1.2),
            MemRegion(REGION_LMEM, 8 * 1024, 2, 32.0),
        ),
    )
)


def _targets_payload() -> Dict[str, Any]:
    """Registry summary used by ``clara serve`` health and the CLI."""
    return {
        "schema": TARGET_SCHEMA,
        "default": DEFAULT_TARGET,
        "targets": {
            name: _REGISTRY[name].to_dict() for name in list_targets()
        },
    }


def target_fingerprint(
    target: Optional[TargetDescription],
) -> Dict[str, Any]:
    """The part of a description that artifact cache keys hash.

    ``display_name``/``description`` are cosmetic and excluded, so
    re-wording a target does not invalidate trained models.
    """
    if target is None:
        return {}
    payload = target.to_dict()
    payload.pop("display_name", None)
    payload.pop("description", None)
    return payload
