"""The simulated NFP micro-engine ISA.

Opcode inventory and issue costs follow the flavour of Netronome's
micro-engine assembly: single-cycle ALU ops with an optional fused
shifter (``alu_shf``), immediates materialized in 16-bit halves,
multi-step multiplies, explicit ``mem`` commands tagged with the target
memory region, and accelerator commands (``crc``, ``cam_lookup``,
``csum``).  Memory *latency* is not part of the instruction — it is
charged by the performance model based on the region tag, because on
real hardware the latency is hidden or exposed depending on thread
occupancy and contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# Issue cost (cycles spent occupying the micro-engine pipeline) per
# opcode.  Memory/accelerator ops additionally incur engine latency,
# charged by the machine model.
ISSUE_COST: Dict[str, int] = {
    "alu": 1,
    "alu_shf": 1,
    "immed": 1,
    "immed_w1": 1,
    "ld_field": 1,
    "mul_step": 1,
    "br": 1,
    "br_cond": 1,
    "cam_lookup": 1,
    "crc": 1,
    "crypto": 1,
    "csum": 1,
    "mem_read": 1,
    "mem_write": 1,
    "lmem_read": 3,   # local scratch (spills): short fixed latency
    "lmem_write": 3,
    "pkt_send": 3,
    "pkt_drop": 1,
    "call": 2,   # branch-and-link into a library routine
    "rtn": 1,
    "nop": 1,
    "rand": 1,   # pseudo-random CSR read
    "halt": 1,
}

#: Opcodes the analysis counts as *memory accesses* (paper's key
#: performance parameter #2); everything else counts as compute.
MEMORY_OPCODES = frozenset({"mem_read", "mem_write", "lmem_read", "lmem_write"})

ACCEL_OPCODES = frozenset({"cam_lookup", "crc", "crypto", "csum"})


@dataclass
class NICInstruction:
    """One micro-engine instruction.

    ``region`` is set for ``mem_*`` ops ("cls"/"ctm"/"imem"/"emem" or
    the symbolic ``state:<global>`` form resolved by a placement map at
    simulation time).  ``size`` is the access size in bytes.
    """

    opcode: str
    dst: Optional[str] = None
    srcs: Tuple[str, ...] = ()
    region: Optional[str] = None
    size: int = 4
    comment: str = ""

    def __post_init__(self) -> None:
        if self.opcode not in ISSUE_COST:
            raise ValueError(f"unknown NIC opcode {self.opcode!r}")

    @property
    def is_memory(self) -> bool:
        return self.opcode in MEMORY_OPCODES

    @property
    def issue_cycles(self) -> int:
        return ISSUE_COST[self.opcode]

    def render(self) -> str:
        parts = [self.opcode]
        operands = []
        if self.dst is not None:
            operands.append(self.dst)
        operands.extend(self.srcs)
        if operands:
            parts.append("[" + ", ".join(operands) + "]")
        if self.region is not None:
            parts.append(f"@{self.region}")
        if self.comment:
            parts.append(f"; {self.comment}")
        return " ".join(parts)


@dataclass
class BlockAsm:
    """Assembly emitted for one NFIR basic block."""

    name: str
    instructions: List[NICInstruction] = field(default_factory=list)

    @property
    def n_total(self) -> int:
        return len(self.instructions)

    @property
    def n_memory(self) -> int:
        return sum(1 for i in self.instructions if i.is_memory)

    @property
    def n_compute(self) -> int:
        return self.n_total - self.n_memory

    def issue_cycles(self) -> int:
        return sum(i.issue_cycles for i in self.instructions)

    def memory_accesses(self) -> List[NICInstruction]:
        return [i for i in self.instructions if i.is_memory]


@dataclass
class FunctionAsm:
    name: str
    blocks: List[BlockAsm] = field(default_factory=list)

    def block(self, name: str) -> BlockAsm:
        for b in self.blocks:
            if b.name == name:
                return b
        raise KeyError(f"no block {name!r} in @{self.name}")

    @property
    def n_total(self) -> int:
        return sum(b.n_total for b in self.blocks)

    @property
    def n_memory(self) -> int:
        return sum(b.n_memory for b in self.blocks)

    @property
    def n_compute(self) -> int:
        return sum(b.n_compute for b in self.blocks)


@dataclass
class NICProgram:
    """The compiled artifact: per-function, per-block NIC assembly.

    Per-block structure is preserved deliberately — the paper's
    instruction-prediction accuracy is evaluated "on a per-code block
    basis" (Section 5.2), so the block mapping is the ground-truth
    labelling the LSTM trains against.
    """

    module_name: str
    functions: Dict[str, FunctionAsm] = field(default_factory=dict)
    #: Library routines expanded out of line (API implementations).
    library: Dict[str, FunctionAsm] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def handler(self) -> FunctionAsm:
        return self.functions["pkt_handler"]

    def render(self) -> str:
        lines: List[str] = [f"; NIC program {self.module_name}"]
        for section, table in (("func", self.functions), ("lib", self.library)):
            for fname, fasm in table.items():
                lines.append(f".{section} {fname}:")
                for block in fasm.blocks:
                    lines.append(f"{block.name}:")
                    lines.extend(f"    {i.render()}" for i in block.instructions)
        return "\n".join(lines) + "\n"

    def total_instructions(self) -> int:
        return sum(f.n_total for f in self.functions.values())
