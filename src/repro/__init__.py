"""Clara (SOSP 2021) reproduction: automated SmartNIC offloading
insights for network functions.

Package map:

* :mod:`repro.nfir` — the LLVM-flavoured SSA IR and analyses;
* :mod:`repro.click` — the ClickScript NF language, frontend,
  interpreter, element library, and reverse-ported framework APIs;
* :mod:`repro.nic` — the simulated Netronome-class SmartNIC (ISA,
  opaque compiler, memory hierarchy, accelerators, performance model);
* :mod:`repro.workload` — synthetic traffic generation;
* :mod:`repro.ml` — the numpy-only machine-learning library;
* :mod:`repro.synthesis` — the distribution-guided program generator;
* :mod:`repro.core` — Clara itself (prediction, identification,
  scale-out, placement, coalescing, colocation, partial offloading);
* :mod:`repro.obs` — observability (stage tracing, metrics registry,
  run reports, log configuration);
* :mod:`repro.errors` — the typed :class:`~repro.errors.ClaraError`
  exception hierarchy with per-class CLI exit codes.

Entry points: ``from repro.core import Clara`` for the library API,
``python -m repro`` for the CLI, and ``examples/`` for walkthroughs.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
