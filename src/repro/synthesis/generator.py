"""Guided ClickScript element generator (the YarpGen customization).

Mirrors the paper's two key modifications to YarpGen: generated
programs are shaped like Click elements (packet handler over header
fields, element state), and statement/operator choices follow the AST
distribution extracted from the real corpus.  Only packet operations
with SmartNIC support are emitted.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.click import ast as C
from repro.click.elements._dsl import (
    array_state,
    assign,
    decl,
    fcall,
    fld,
    for_,
    idx,
    if_,
    lit,
    ne,
    pkt,
    scalar_state,
    v,
)
from repro.synthesis.stats import CorpusStats

#: Header fields synthesized programs may touch (NIC-supported ops).
_IP_FIELDS = ("src_addr", "dst_addr", "ip_len", "ip_id", "ip_ttl", "ip_tos")
_TCP_FIELDS = ("th_sport", "th_dport", "th_seq", "th_ack", "th_win")

_LITERALS = {
    "tiny": (0, 1),
    "byte": (2, 255),
    "short": (256, 65535),
    "wide": (65536, 2**32 - 1),
}


#: when this environment variable is set non-empty, every synthesized
#: element is additionally lowered, verified, and linted (debug mode:
#: catches generator regressions at the source instead of deep inside
#: training).  Error-severity lint findings and verifier failures both
#: raise.
SYNTH_VERIFY_ENV = "CLARA_SYNTH_VERIFY"


def _debug_check(element: "C.ElementDef") -> None:
    """Lower + verify + lint one synthesized element (debug flag)."""
    from repro.click.frontend import lower_element
    from repro.nfir import verify_module
    from repro.nfir.analysis import lint_module

    module = lower_element(element)
    verify_module(module)
    report = lint_module(module)
    if report.n_errors:
        findings = "; ".join(d.render() for d in report.by_severity("error"))
        raise ValueError(
            f"synthesized element {element.name} fails offload lint:"
            f" {findings}"
        )


def program_seed(seed: int, index: int) -> int:
    """Child seed for the ``index``-th program of a run seeded
    ``seed`` — independent of worker count and of every other
    program's generation (see :meth:`ClickGen.for_program`)."""
    sequence = np.random.SeedSequence([int(seed) & 0xFFFFFFFF, int(index)])
    return int(sequence.generate_state(1, dtype=np.uint32)[0])


def baseline_stats() -> CorpusStats:
    """Uniform statistics: the Table-1 baseline synthesizer that does
    not account for Click's AST distribution."""
    stats = CorpusStats()
    for kind in ("DeclStmt", "AssignStmt", "IfStmt", "ForStmt", "ExprStmt"):
        stats.stmt_kinds[kind] = 1
    for op in C.BIN_OPS:
        stats.bin_ops[op] = 1
    for op in C.CMP_OPS:
        stats.cmp_ops[op] = 1
    for bucket in _LITERALS:
        stats.literal_magnitudes[bucket] = 1
    stats.handler_lengths = [12]
    stats.if_depths = [3]
    stats.state_kinds.update({"scalar": 1, "array": 1})
    for width in ("u8", "u16", "u32", "u64"):
        stats.decl_types[width] = 1
    for leaf in ("literal", "var", "header_field", "array"):
        stats.leaf_kinds[leaf] = 1
    return stats


class _Scope:
    """Tracks integer variables available to generated expressions."""

    def __init__(self) -> None:
        self.locals: List[str] = []
        #: loop induction variables: readable but never assigned (a
        #: body write could make the loop infinite).
        self.loop_vars: List[str] = []
        self.state_scalars: List[str] = []
        self.state_arrays: List[Tuple[str, int]] = []
        #: name of the element's hashmap state, if one was generated.
        self.map_name: Optional[str] = None
        self.map_counter = 0
        self.counter = 0

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def readable(self) -> List[str]:
        return self.locals + self.loop_vars + self.state_scalars


class ClickGen:
    """Samples ClickScript elements from corpus statistics."""

    def __init__(self, stats: CorpusStats, seed: int = 0) -> None:
        self.stats = stats
        self.rng = np.random.default_rng(seed)
        self._stmt_probs = self._dist(
            stats.probabilities("stmt_kinds"),
            ("DeclStmt", "AssignStmt", "IfStmt", "ForStmt", "ExprStmt"),
        )
        self._op_probs = self._dist(stats.probabilities("bin_ops"), C.BIN_OPS)
        self._cmp_probs = self._dist(stats.probabilities("cmp_ops"), C.CMP_OPS)
        self._lit_probs = self._dist(
            stats.probabilities("literal_magnitudes"), tuple(_LITERALS)
        )
        self._decl_probs = self._dist(
            stats.probabilities("decl_types"), ("u8", "u16", "u32", "u64")
        )
        self._leaf_probs = self._dist(
            stats.probabilities("leaf_kinds"),
            ("literal", "var", "header_field", "array"),
        )
        # Calibrate expression depth to the corpus: for a binary tree
        # where every node is a leaf with probability p, the expected
        # operator count E satisfies E = (1-p)(1+2E); invert to match
        # the corpus's operators-per-statement ratio.
        n_stmts = max(sum(stats.stmt_kinds.values()), 1)
        ops_per_stmt = sum(stats.bin_ops.values()) / n_stmts
        ops_per_stmt = max(ops_per_stmt, 0.15)
        self._leaf_prob = float(
            np.clip((ops_per_stmt + 1.0) / (2.0 * ops_per_stmt + 1.0), 0.52, 0.92)
        )

    @classmethod
    def for_program(
        cls, stats: CorpusStats, seed: int, index: int
    ) -> "ClickGen":
        """A generator deterministically seeded for the ``index``-th
        program of a synthesis run seeded ``seed``.

        This is the unit of parallel synthesis: because each program
        gets its own child seed (rather than sharing one serial RNG
        stream), programs can be generated on any worker in any order
        and the resulting dataset is identical to the serial one.
        """
        return cls(stats, seed=program_seed(seed, index))

    @staticmethod
    def _dist(
        probs: Dict[str, float], support: Sequence[str]
    ) -> Tuple[List[str], np.ndarray]:
        keys = [k for k in support if probs.get(k, 0.0) > 0.0] or list(support)
        weights = np.array([max(probs.get(k, 0.0), 1e-6) for k in keys])
        return keys, weights / weights.sum()

    def _choose(self, dist: Tuple[List[str], np.ndarray]) -> str:
        keys, weights = dist
        return keys[int(self.rng.choice(len(keys), p=weights))]

    # -- expressions ---------------------------------------------------
    def _literal(self) -> C.IntLit:
        low, high = _LITERALS[self._choose(self._lit_probs)]
        return lit(int(self.rng.integers(low, high + 1)))

    def _leaf(self, scope: _Scope) -> C.Expr:
        readable = scope.readable()
        kind = self._choose(self._leaf_probs)
        if kind == "var" and readable:
            return v(str(self.rng.choice(readable)))
        if kind == "array" and scope.state_arrays and readable:
            name, entries = scope.state_arrays[
                int(self.rng.integers(len(scope.state_arrays)))
            ]
            index_var = str(self.rng.choice(readable))
            return idx(v(name), v(index_var) % entries)
        if kind == "header_field":
            header_roll = self.rng.random()
            if header_roll < 0.6:
                return fld(v("ip"), str(self.rng.choice(_IP_FIELDS)))
            if header_roll < 0.92:
                return fld(v("tcp"), str(self.rng.choice(_TCP_FIELDS)))
            return C.CallExpr(
                "payload_byte",
                [lit(int(self.rng.integers(0, 64)))],
                receiver=v("pkt"),
            )
        return self._literal()

    def _expr(self, scope: _Scope, depth: int = 0) -> C.Expr:
        if depth >= 3 or self.rng.random() < self._leaf_prob:
            return self._leaf(scope)
        op = self._choose(self._op_probs)
        lhs = self._expr(scope, depth + 1)
        rhs = self._expr(scope, depth + 1)
        if op in ("<<", ">>"):
            rhs = lit(int(self.rng.integers(1, 9)))
        elif op in ("/", "%"):
            roll = self.rng.random()
            if roll < 0.2 and scope.readable():
                # Variable divisor: exercises the compiler's inline
                # software-divide expansion.  (x/0 is defined as 0 on
                # the NIC's divide helper, so no guard is needed.)
                rhs = v(str(self.rng.choice(scope.readable()))) + 1
            elif roll < 0.4:
                # Non-power-of-two constant: also a software divide
                # (real NFs modulo by table sizes like 28000 or 997).
                rhs = lit(int(self.rng.integers(3, 60_000)) | 1)
            else:
                rhs = lit(int(2 ** self.rng.integers(1, 8)))
        return C.BinExpr(op, lhs, rhs)

    def _condition(self, scope: _Scope) -> C.Expr:
        op = self._choose(self._cmp_probs)
        return C.CmpExpr(op, self._expr(scope, depth=2), self._literal())

    # -- statements -------------------------------------------------------
    def _statement(self, scope: _Scope, depth: int) -> List[C.Stmt]:
        kind = self._choose(self._stmt_probs)
        if kind == "DeclStmt" or not scope.readable():
            name = scope.fresh("t")
            # Declared widths follow the corpus distribution (real
            # elements are mostly u32 with a sprinkling of u16/u8/u64,
            # exercising the compiler's width handling).
            width = self._choose(self._decl_probs)
            stmt = decl(name, width, self._expr(scope))
            scope.locals.append(name)
            return [stmt]
        if kind == "ExprStmt" or (kind == "AssignStmt" and self.rng.random() < 0.12):
            # Framework API statements: checksum updates, payload writes,
            # hashmap traffic — their call/argument shapes must appear
            # in the vocabulary.
            roll = self.rng.random()
            if roll < 0.25:
                return [fcall("checksum_update_ip", v("ip")).as_stmt()]
            if roll < 0.35:
                return [
                    if_(
                        ne(v("tcp"), 0),
                        [fcall("checksum_update_tcp", v("tcp")).as_stmt()],
                    )
                ]
            if roll < 0.5:
                return [
                    C.ExprStmt(
                        C.CallExpr(
                            "set_payload_byte",
                            [
                                lit(int(self.rng.integers(0, 32))),
                                self._expr(scope, depth=2),
                            ],
                            receiver=v("pkt"),
                        )
                    )
                ]
            if scope.map_name is not None:
                return self._map_statement(scope)
            return [self._assignment(scope)]
        if kind == "AssignStmt":
            return [self._assignment(scope)]
        if kind == "IfStmt" and depth < 3:
            # Condition first: it must only reference variables already
            # declared at this point in program order.
            condition = self._condition(scope)
            then_body = self._body(scope, depth + 1, max_stmts=3)
            else_body = (
                self._body(scope, depth + 1, max_stmts=2)
                if self.rng.random() < 0.4
                else []
            )
            return [if_(condition, then_body, else_body)]
        if kind == "ForStmt" and depth < 2:
            var = scope.fresh("i")
            trips = int(self.rng.integers(2, 9))
            scope.loop_vars.append(var)
            body = self._body(scope, depth + 1, max_stmts=3)
            if not body:
                body = [self._assignment(scope)]
            return [for_(var, 0, trips, body)]
        return [self._assignment(scope)]

    def _assignment(self, scope: _Scope) -> C.Stmt:
        roll = self.rng.random()
        value = self._expr(scope)
        if roll < 0.35 and scope.state_scalars:
            target = v(str(self.rng.choice(scope.state_scalars)))
            return assign(target, target + value)
        if roll < 0.5 and scope.state_arrays:
            name, entries = scope.state_arrays[
                int(self.rng.integers(len(scope.state_arrays)))
            ]
            readable = scope.readable()
            index: C.Expr
            if readable:
                index = v(str(self.rng.choice(readable))) % entries
            else:
                index = lit(int(self.rng.integers(0, entries)))
            return assign(idx(v(name), index), value)
        if roll < 0.7:
            header_field = str(self.rng.choice(_IP_FIELDS + _TCP_FIELDS))
            base = v("ip") if header_field in _IP_FIELDS else v("tcp")
            return assign(fld(base, header_field), value)
        if scope.locals:
            return assign(v(str(self.rng.choice(scope.locals))), value)
        header_field = str(self.rng.choice(_IP_FIELDS))
        return assign(fld(v("ip"), header_field), value)

    def _map_statement(self, scope: _Scope) -> List[C.Stmt]:
        """A find-or-insert pattern over the element's hashmap state —
        the dominant stateful idiom in real Click NFs."""
        scope.map_counter += 1
        n = scope.map_counter
        key, val, found = f"mk{n}", f"mv{n}", f"mf{n}"
        stmts: List[C.Stmt] = [
            decl(key, "synth_key"),
            assign(
                fld(v(key), "k1"),
                fld(v("ip"), "src_addr") ^ self._leaf(scope),
            ),
            assign(fld(v(key), "k2"), fld(v("ip"), "dst_addr")),
            decl(
                found,
                "synth_val*",
                C.CallExpr("find", [v(key)], receiver=v(scope.map_name)),
            ),
            if_(
                ne(v(found), 0),
                [
                    assign(
                        fld(v(found), "v1"),
                        fld(v(found), "v1") + 1,
                    )
                ],
                [
                    decl(val, "synth_val"),
                    assign(fld(v(val), "v1"), lit(1)),
                    assign(fld(v(val), "v2"), self._leaf(scope)),
                    C.ExprStmt(
                        C.CallExpr(
                            "insert",
                            [v(key), v(val)],
                            receiver=v(scope.map_name),
                        )
                    ),
                ],
            ),
        ]
        return stmts

    def _body(self, scope: _Scope, depth: int, max_stmts: int) -> List[C.Stmt]:
        out: List[C.Stmt] = []
        n = int(self.rng.integers(1, max_stmts + 1))
        for _ in range(n):
            out.extend(self._statement(scope, depth))
        return out

    # -- elements ----------------------------------------------------------
    def element(self, name: Optional[str] = None) -> C.ElementDef:
        """Generate one synthetic Click element."""
        scope = _Scope()
        state: List[C.StateDecl] = []
        structs: List[C.StructDef] = []
        state_probs = self.stats.probabilities("state_kinds")
        n_state = int(self.rng.integers(0, 4))
        for _ in range(n_state):
            kinds = list(state_probs) or ["scalar"]
            weights = np.array([state_probs.get(k, 1e-6) for k in kinds])
            weights /= weights.sum()
            kind = kinds[int(self.rng.choice(len(kinds), p=weights))]
            if kind in ("hashmap", "vector") and scope.map_name is None:
                structs.append(
                    C.StructDef("synth_key", [("k1", "u32"), ("k2", "u32")])
                )
                structs.append(
                    C.StructDef("synth_val", [("v1", "u32"), ("v2", "u16")])
                )
                map_name = scope.fresh("m")
                state.append(
                    C.StateDecl(
                        map_name,
                        "hashmap",
                        value_type="synth_val",
                        key_struct="synth_key",
                        entries=int(2 ** self.rng.integers(6, 11)),
                    )
                )
                scope.map_name = map_name
            elif kind == "array":
                aname = scope.fresh("a")
                entries = int(2 ** self.rng.integers(3, 9))
                state.append(array_state(aname, "u32", entries))
                scope.state_arrays.append((aname, entries))
            else:
                sname = scope.fresh("s")
                width = str(self.rng.choice(["u32", "u32", "u64", "u16"]))
                state.append(scalar_state(sname, width))
                scope.state_scalars.append(sname)

        lengths = self.stats.handler_lengths or [10]
        target_len = max(4, int(self.rng.choice(lengths)))
        # A quarter of programs are straight-line header-mangling
        # elements (the anonipaddr/udpipencap shape): long unbranched
        # blocks the LSTM must extrapolate to otherwise.
        straight_line = self.rng.random() < 0.25
        if straight_line:
            target_len = int(target_len * self.rng.uniform(1.2, 2.2))
            saved_probs = self._stmt_probs
            keys, weights = saved_probs
            flat = np.array(
                [w if k in ("DeclStmt", "AssignStmt") else 1e-6
                 for k, w in zip(keys, weights)]
            )
            self._stmt_probs = (keys, flat / flat.sum())
        handler: List[C.Stmt] = [
            decl("ip", "ip_hdr*", pkt("ip_header")),
            decl("tcp", "tcp_hdr*", pkt("tcp_header")),
            decl("udp", "udp_hdr*", pkt("udp_header")),
        ]
        has_tcp_guard = if_(
            ne(v("tcp"), 0),
            [assign(fld(v("tcp"), "th_win"), fld(v("tcp"), "th_win") + 1)],
        )
        handler.append(has_tcp_guard)
        if self.rng.random() < 0.4:
            # Guarded UDP path so uh_* field tokens enter the corpus.
            udp_field = str(self.rng.choice(["uh_sport", "uh_dport", "uh_ulen"]))
            handler.append(
                if_(
                    ne(v("udp"), 0),
                    [
                        assign(
                            fld(v("udp"), udp_field),
                            fld(v("udp"), udp_field) + 1,
                        ),
                        assign(
                            fld(v("udp"), "uh_sum"),
                            fld(v("udp"), "uh_sum")
                            ^ fld(v("udp"), str(self.rng.choice(["uh_sport", "uh_dport"]))),
                        ),
                    ],
                )
            )
        while len(handler) < target_len:
            handler.extend(self._statement(scope, depth=0))
        handler.append(pkt("send", 0).as_stmt())
        if straight_line:
            self._stmt_probs = saved_probs

        if name is None:
            name = f"synth_{self.rng.integers(1_000_000)}"
        element = C.ElementDef(
            name=name,
            state=state,
            structs=structs,
            handler=handler,
            description="Synthesized Click element (guided generator).",
        )
        if os.environ.get(SYNTH_VERIFY_ENV):
            _debug_check(element)
        return element

    def elements(self, count: int, prefix: str = "synth") -> List[C.ElementDef]:
        return [self.element(f"{prefix}_{i}") for i in range(count)]
