"""AST statistics extraction from a ClickScript corpus."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.click import ast as C
from repro.click.ast import walk_element


@dataclass
class CorpusStats:
    """Distributional profile of a Click element corpus.

    All counters are raw counts; :meth:`probabilities` normalizes.
    """

    stmt_kinds: Counter = field(default_factory=Counter)
    bin_ops: Counter = field(default_factory=Counter)
    cmp_ops: Counter = field(default_factory=Counter)
    literal_magnitudes: Counter = field(default_factory=Counter)  # bucketed
    handler_lengths: List[int] = field(default_factory=list)
    if_depths: List[int] = field(default_factory=list)
    state_kinds: Counter = field(default_factory=Counter)
    api_calls: Counter = field(default_factory=Counter)
    #: scalar widths of local declarations (u8/u16/u32/u64).
    decl_types: Counter = field(default_factory=Counter)
    #: expression-leaf kinds: literal / var / header_field / array.
    leaf_kinds: Counter = field(default_factory=Counter)

    def probabilities(self, counter_name: str) -> Dict[str, float]:
        counter: Counter = getattr(self, counter_name)
        total = sum(counter.values())
        if total == 0:
            return {}
        return {key: count / total for key, count in counter.items()}


def _literal_bucket(value: int) -> str:
    if value < 2:
        return "tiny"
    if value < 256:
        return "byte"
    if value < 65536:
        return "short"
    return "wide"


def _max_if_depth(stmts: Sequence[C.Stmt], depth: int = 0) -> int:
    deepest = depth
    for stmt in stmts:
        if isinstance(stmt, C.IfStmt):
            deepest = max(
                deepest,
                _max_if_depth(stmt.then_body, depth + 1),
                _max_if_depth(stmt.else_body, depth + 1),
            )
        elif isinstance(stmt, (C.WhileStmt, C.ForStmt)):
            deepest = max(deepest, _max_if_depth(stmt.body, depth + 1))
    return deepest


def extract_stats(elements: Sequence[C.ElementDef]) -> CorpusStats:
    """Extract corpus-level AST statistics from real elements."""
    stats = CorpusStats()
    for element in elements:
        stats.handler_lengths.append(len(element.handler))
        stats.if_depths.append(_max_if_depth(element.handler))
        for decl in element.state:
            stats.state_kinds[decl.kind] += 1
        for node in walk_element(element):
            kind = type(node).__name__
            if isinstance(node, C.Stmt):
                stats.stmt_kinds[kind] += 1
                if isinstance(node, C.DeclStmt) and node.type in C.TYPE_BITS:
                    stats.decl_types[node.type] += 1
            elif isinstance(node, C.BinExpr):
                stats.bin_ops[node.op] += 1
            elif isinstance(node, C.CmpExpr):
                stats.cmp_ops[node.op] += 1
            elif isinstance(node, C.IntLit):
                stats.literal_magnitudes[_literal_bucket(node.value)] += 1
                stats.leaf_kinds["literal"] += 1
            elif isinstance(node, C.VarRef):
                stats.leaf_kinds["var"] += 1
            elif isinstance(node, C.FieldExpr):
                stats.leaf_kinds["header_field"] += 1
            elif isinstance(node, C.IndexExpr):
                stats.leaf_kinds["array"] += 1
            elif isinstance(node, C.CallExpr):
                stats.api_calls[node.name] += 1
    return stats
