"""Data synthesis (paper Section 3.2, Table 1).

SmartNIC training pairs do not exist in abundance, so Clara customizes
a program generator (YarpGen in the paper) to synthesize representative
Click elements: "The AST generation strategy is ... guided by the
statistical properties of the target program corpus."

* :mod:`repro.synthesis.stats` extracts AST statistics (statement-kind,
  operator, and shape distributions) from the real element library;
* :mod:`repro.synthesis.generator` samples new ClickScript elements
  from those statistics, constrained to packet operations the NIC
  supports;
* the *baseline* generator ignores the corpus statistics (uniform
  sampling) — the ablation row of Table 1.
"""

from repro.synthesis.stats import CorpusStats, extract_stats
from repro.synthesis.generator import ClickGen, baseline_stats, program_seed

__all__ = [
    "CorpusStats",
    "extract_stats",
    "ClickGen",
    "baseline_stats",
    "program_seed",
]
