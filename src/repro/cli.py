"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``inventory`` — print the Table-2-style element inventory;
* ``render <element>`` — show an element's Click-style source;
* ``analyze <element>`` — train Clara (quick mode) and print the
  offloading-insight report for a workload;
* ``sweep <element>`` — core-count sweep of the naive port on the
  simulated NIC;
* ``explain`` — train the identifier/cost model and print the
  interpretability report.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--flows", type=int, default=10_000,
                        help="concurrent flows (default 10000)")
    parser.add_argument("--packet-bytes", type=int, default=256,
                        help="packet size in bytes (default 256)")
    parser.add_argument("--zipf", type=float, default=1.0,
                        help="flow popularity skew (default 1.0)")
    parser.add_argument("--udp", action="store_true",
                        help="UDP traffic instead of TCP")
    parser.add_argument("--packets", type=int, default=300,
                        help="profiled trace length (default 300)")


def _workload_from_args(args) -> "WorkloadSpec":
    from repro.workload.spec import WorkloadSpec

    return WorkloadSpec(
        name="cli",
        n_flows=args.flows,
        packet_bytes=args.packet_bytes,
        zipf_alpha=args.zipf,
        udp_fraction=1.0 if args.udp else 0.0,
        n_packets=args.packets,
    )


def cmd_inventory(_args) -> int:
    from repro.click.elements import ELEMENT_BUILDERS, build_element
    from repro.click.render import element_loc
    from repro.core.prepare import prepare_element
    from repro.nic.compiler import compile_module

    print(f"{'element':14s} {'LoC':>5s} {'NIC instr':>9s} {'state':>6s}"
          f" {'mem':>5s} {'api':>4s}")
    for name in sorted(ELEMENT_BUILDERS):
        element = build_element(name)
        prepared = prepare_element(element)
        program = compile_module(prepared.module)
        print(
            f"{name:14s} {element_loc(element):5d}"
            f" {program.handler.n_total:9d}"
            f" {'yes' if element.is_stateful else 'no':>6s}"
            f" {prepared.annotation.n_mem_stateful:5d}"
            f" {prepared.annotation.n_api:4d}"
        )
    return 0


def cmd_render(args) -> int:
    from repro.click.elements import build_element
    from repro.click.render import render_element

    print(render_element(build_element(args.element)), end="")
    return 0


def cmd_analyze(args) -> int:
    from repro.click.elements import build_element
    from repro.core import Clara

    print("Training Clara (quick mode)...", file=sys.stderr)
    clara = Clara(seed=args.seed).train(quick=True)
    analysis = clara.analyze(build_element(args.element),
                             _workload_from_args(args))
    print(analysis.report.render(), end="")
    config = clara.port_config(analysis)
    print("\nSuggested port configuration:")
    print(f"  checksum engine : {config.use_checksum_accel}")
    print(f"  CRC-substituted : {len(config.crc_accel_blocks)} blocks")
    print(f"  LPM-substituted : {len(config.lpm_accel_blocks)} blocks")
    print(f"  cores           : {config.cores}")
    return 0


def cmd_sweep(args) -> int:
    from repro.click.elements import build_element, initial_state, install_state
    from repro.click.frontend import lower_element
    from repro.click.interp import Interpreter
    from repro.nic.compiler import compile_module
    from repro.nic.machine import NICModel
    from repro.workload import characterize, generate_trace

    element = build_element(args.element)
    module = lower_element(element)
    interp = Interpreter(module)
    install_state(interp, initial_state(element))
    spec = _workload_from_args(args)
    profile = interp.run_trace(generate_trace(spec, seed=args.seed))
    freq = {b: c / profile.packets for b, c in profile.block_counts.items()}
    model = NICModel()
    sweep = model.sweep_cores(
        compile_module(module), freq, characterize(spec)
    )
    knee = model.optimal_cores(sweep)
    print(f"{'cores':>6s} {'tput(Mpps)':>11s} {'lat(us)':>9s}")
    for cores in (1, 2, 4, 8, 16, 24, 32, 40, 48, 60):
        perf = sweep[cores]
        marker = "  <-- knee" if cores == knee else ""
        print(f"{cores:6d} {perf.throughput_mpps:11.2f}"
              f" {perf.latency_us:9.2f}{marker}")
    return 0


def cmd_explain(args) -> int:
    from repro.core import Clara
    from repro.core.explain import render_explanations

    print("Training Clara (quick mode)...", file=sys.stderr)
    clara = Clara(seed=args.seed).train(quick=True)
    print(render_explanations(clara.scaleout.model, clara.identifier), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clara (SOSP'21) reproduction: SmartNIC offloading insights",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("inventory", help="element inventory (Table 2)")

    p_render = sub.add_parser("render", help="print element source")
    p_render.add_argument("element")

    p_analyze = sub.add_parser("analyze", help="offloading insights")
    p_analyze.add_argument("element")
    _add_workload_args(p_analyze)

    p_sweep = sub.add_parser("sweep", help="core-count sweep")
    p_sweep.add_argument("element")
    _add_workload_args(p_sweep)

    sub.add_parser("explain", help="model interpretability report")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "inventory": cmd_inventory,
        "render": cmd_render,
        "analyze": cmd_analyze,
        "sweep": cmd_sweep,
        "explain": cmd_explain,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
