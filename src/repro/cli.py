"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``inventory`` — print the Table-2-style element inventory;
* ``render <element>`` — show an element's Click-style source;
* ``train`` — run the one-time learning phases (optionally parallel
  via ``--workers``) and persist the artifact (``--save PATH`` and/or
  the content-addressed cache);
* ``analyze <element>`` — print the offloading-insight report for a
  workload, reusing a cached or ``--load``-ed trained Clara;
* ``sweep <element>`` — core-count sweep of the naive port on the
  simulated NIC (with ``--load``, also prints Clara's predicted knee);
* ``explain`` — print the interpretability report for a trained
  (cached or ``--load``-ed) identifier/cost model.

Training commands consult the artifact cache (``--cache auto`` by
default where a trained Clara is needed), so repeated invocations stop
silently retraining from scratch.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _add_train_source_args(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every command that needs a trained Clara."""
    parser.add_argument("--load", metavar="PATH", default=None,
                        help="load a saved Clara artifact instead of training")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for dataset synthesis"
                             " (0 = all cores)")
    parser.add_argument("--cache", choices=("auto", "off", "require"),
                        default="auto",
                        help="artifact-cache mode (default auto: load when"
                             " present, store after training)")


def _obtain_clara(args, quick: bool = True) -> "Clara":
    """A trained Clara per the common flags: ``--load`` wins, else
    train (cache-backed, quick mode unless the command says otherwise)."""
    from repro.core import Clara, TrainConfig

    if getattr(args, "load", None):
        print(f"Loading Clara artifact from {args.load}...", file=sys.stderr)
        return Clara.load(args.load)
    config = TrainConfig.quick() if quick else TrainConfig()
    print("Training Clara (quick mode)..." if quick else "Training Clara...",
          file=sys.stderr)
    return Clara(seed=args.seed).train(
        config, workers=args.workers, cache=args.cache
    )


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--flows", type=int, default=10_000,
                        help="concurrent flows (default 10000)")
    parser.add_argument("--packet-bytes", type=int, default=256,
                        help="packet size in bytes (default 256)")
    parser.add_argument("--zipf", type=float, default=1.0,
                        help="flow popularity skew (default 1.0)")
    parser.add_argument("--udp", action="store_true",
                        help="UDP traffic instead of TCP")
    parser.add_argument("--packets", type=int, default=300,
                        help="profiled trace length (default 300)")


def _workload_from_args(args) -> "WorkloadSpec":
    from repro.workload.spec import WorkloadSpec

    return WorkloadSpec(
        name="cli",
        n_flows=args.flows,
        packet_bytes=args.packet_bytes,
        zipf_alpha=args.zipf,
        udp_fraction=1.0 if args.udp else 0.0,
        n_packets=args.packets,
    )


def cmd_inventory(_args) -> int:
    from repro.click.elements import ELEMENT_BUILDERS, build_element
    from repro.click.render import element_loc
    from repro.core.prepare import prepare_element
    from repro.nic.compiler import compile_module

    print(f"{'element':14s} {'LoC':>5s} {'NIC instr':>9s} {'state':>6s}"
          f" {'mem':>5s} {'api':>4s}")
    for name in sorted(ELEMENT_BUILDERS):
        element = build_element(name)
        prepared = prepare_element(element)
        program = compile_module(prepared.module)
        print(
            f"{name:14s} {element_loc(element):5d}"
            f" {program.handler.n_total:9d}"
            f" {'yes' if element.is_stateful else 'no':>6s}"
            f" {prepared.annotation.n_mem_stateful:5d}"
            f" {prepared.annotation.n_api:4d}"
        )
    return 0


def cmd_render(args) -> int:
    from repro.click.elements import build_element
    from repro.click.render import render_element

    print(render_element(build_element(args.element)), end="")
    return 0


def cmd_train(args) -> int:
    from dataclasses import replace

    from repro.core import Clara, TrainConfig, train_cache_key

    config = TrainConfig.quick() if args.quick else TrainConfig()
    overrides = {
        key: value
        for key, value in {
            "n_predictor_programs": args.predictor_programs,
            "n_scaleout_programs": args.scaleout_programs,
            "predictor_epochs": args.epochs,
        }.items()
        if value is not None
    }
    config = replace(config, **overrides)
    clara = Clara(seed=args.seed)
    key = train_cache_key(config, seed=args.seed, nic=clara.nic)
    print(f"Training Clara (cache key {key})...", file=sys.stderr)
    clara.train(config, workers=args.workers, cache=args.cache)
    print(f"trained: predictor vocab={clara.predictor.vocab.size} tokens,"
          f" scaleout samples={len(clara.scaleout.samples)}")
    if args.save:
        path = clara.save(args.save)
        print(f"artifact saved to {path}")
    return 0


def cmd_analyze(args) -> int:
    from repro.click.elements import build_element

    clara = _obtain_clara(args)
    analysis = clara.analyze(build_element(args.element),
                             _workload_from_args(args))
    print(analysis.report.render(), end="")
    config = clara.port_config(analysis)
    print("\nSuggested port configuration:")
    print(f"  checksum engine : {config.use_checksum_accel}")
    print(f"  CRC-substituted : {len(config.crc_accel_blocks)} blocks")
    print(f"  LPM-substituted : {len(config.lpm_accel_blocks)} blocks")
    print(f"  cores           : {config.cores}")
    return 0


def cmd_sweep(args) -> int:
    from repro.click.elements import build_element, initial_state, install_state
    from repro.click.frontend import lower_element
    from repro.click.interp import Interpreter
    from repro.nic.compiler import compile_module
    from repro.nic.machine import NICModel
    from repro.workload import characterize, generate_trace

    element = build_element(args.element)
    module = lower_element(element)
    interp = Interpreter(module)
    install_state(interp, initial_state(element))
    spec = _workload_from_args(args)
    profile = interp.run_trace(generate_trace(spec, seed=args.seed))
    freq = {b: c / profile.packets for b, c in profile.block_counts.items()}
    model = NICModel()
    sweep = model.sweep_cores(
        compile_module(module), freq, characterize(spec)
    )
    knee = model.optimal_cores(sweep)
    print(f"{'cores':>6s} {'tput(Mpps)':>11s} {'lat(us)':>9s}")
    for cores in (1, 2, 4, 8, 16, 24, 32, 40, 48, 60):
        perf = sweep[cores]
        marker = "  <-- knee" if cores == knee else ""
        print(f"{cores:6d} {perf.throughput_mpps:11.2f}"
              f" {perf.latency_us:9.2f}{marker}")
    if args.load:
        from repro.core import Clara

        clara = Clara.load(args.load)
        analysis = clara.analyze(element, spec, trace_seed=args.seed)
        print(f"\nClara's predicted knee:"
              f" {analysis.report.suggested_cores} cores")
    return 0


def cmd_explain(args) -> int:
    from repro.core.explain import render_explanations

    clara = _obtain_clara(args)
    print(render_explanations(clara.scaleout.model, clara.identifier), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clara (SOSP'21) reproduction: SmartNIC offloading insights",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("inventory", help="element inventory (Table 2)")

    p_render = sub.add_parser("render", help="print element source")
    p_render.add_argument("element")

    p_train = sub.add_parser(
        "train", help="run the learning phases, optionally saving the artifact"
    )
    p_train.add_argument("--quick", action="store_true",
                        help="small dataset sizes (fast, lower fidelity)")
    p_train.add_argument("--save", metavar="PATH", default=None,
                        help="write the trained artifact to PATH")
    p_train.add_argument("--predictor-programs", type=int, default=None,
                        help="override TrainConfig.n_predictor_programs")
    p_train.add_argument("--scaleout-programs", type=int, default=None,
                        help="override TrainConfig.n_scaleout_programs")
    p_train.add_argument("--epochs", type=int, default=None,
                        help="override TrainConfig.predictor_epochs")
    p_train.add_argument("--workers", type=int, default=1,
                        help="worker processes for dataset synthesis"
                             " (0 = all cores)")
    p_train.add_argument("--cache", choices=("auto", "off", "require"),
                        default="auto",
                        help="artifact-cache mode (default auto)")

    p_analyze = sub.add_parser("analyze", help="offloading insights")
    p_analyze.add_argument("element")
    _add_workload_args(p_analyze)
    _add_train_source_args(p_analyze)

    p_sweep = sub.add_parser("sweep", help="core-count sweep")
    p_sweep.add_argument("element")
    _add_workload_args(p_sweep)
    p_sweep.add_argument("--load", metavar="PATH", default=None,
                         help="also print the predicted knee from a saved"
                              " Clara artifact")

    p_explain = sub.add_parser("explain", help="model interpretability report")
    _add_train_source_args(p_explain)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "inventory": cmd_inventory,
        "render": cmd_render,
        "train": cmd_train,
        "analyze": cmd_analyze,
        "sweep": cmd_sweep,
        "explain": cmd_explain,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
