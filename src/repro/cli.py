"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``inventory`` — print the Table-2-style element inventory;
* ``render <element>`` — show an element's Click-style source;
* ``train`` — run the one-time learning phases (optionally parallel
  via ``--workers``) and persist the artifact (``--save PATH`` and/or
  the content-addressed cache);
* ``analyze <element>`` — print the offloading-insight report for a
  workload, reusing a cached or ``--load``-ed trained Clara
  (``--json`` for the stable machine-readable schema);
* ``sweep <element>`` — core-count sweep of the naive port on the
  simulated NIC (with ``--load``, also prints Clara's predicted knee;
  ``--json`` for machine-readable output);
* ``explain`` — print the interpretability report for a trained
  (cached or ``--load``-ed) identifier/cost model;
* ``serve`` — the warm analysis daemon: load (or train) the advisors
  once, then answer ``analyze``/``lint``/``colocation`` requests over
  a JSON-over-HTTP API (``POST /v1/<kind>``), batching predictor
  inference across concurrent requests; ``GET /healthz`` is the
  readiness probe and ``GET /metrics`` the Prometheus endpoint.
  Responses use the same versioned envelope the CLI's ``--json``
  flags print (see :mod:`repro.serve.schemas`); SIGINT/SIGTERM shut
  it down cleanly with exit status 0;
* ``lint [elements...]`` — run the static offload linter over library
  elements (all of them by default): ``--json`` for the schema-stable
  lint reports, ``--sarif`` for SARIF 2.1.0, ``--only``/``--disable``
  to select rules, ``--list-rules`` to print the rule table.  Exits 0
  when clean (or notes only), ``LINT_EXIT_WARNING`` (8) on warnings,
  ``LINT_EXIT_ERROR`` (9) on error-severity findings — distinct from
  the ClaraError exit codes so scripts can tell NF portability
  problems from tool failures;
* ``events`` — poll a running ``clara serve`` daemon's event journal
  (``GET /v1/events``): filter by ``--kind``/``--for-request``/
  ``--since-seq``, export JSON lines with ``--jsonl``, or print the
  daemon's envelope verbatim with ``--json``;
* ``bench [cases...]`` — time the declared suite of pipeline
  workloads (median-of-N + MAD) and write a schema-versioned
  ``BENCH_<git-sha>.json`` trajectory artifact; ``--compare
  BASELINE.json`` grades regressions and exits
  ``BENCH_EXIT_WARNING`` (10) on warn-grade or ``BENCH_EXIT_ERROR``
  (11) on error-grade slowdowns, for CI gating.  ``--flame-out``
  samples the suite with the signal profiler.

NIC targets: ``train``/``analyze``/``sweep``/``explain``/``serve``/
``lint``/``bench`` accept ``--target NAME`` to model a registered NIC
backend other than the default ``nfp-4000`` (see
:mod:`repro.nic.targets`); ``analyze --target all`` trains one advisor
per registered target and emits the cross-target comparison ranking
("which NIC should this NF be offloaded to?").  Unknown target names
exit with the :class:`~repro.errors.UnknownTargetError` status.

Observability (every command): ``--profile`` prints a per-stage
wall-clock table after the command, ``--json-report PATH`` writes the
full :class:`~repro.obs.RunReport` (span tree, metrics, cache
hits/misses) as JSON, ``--trace-out PATH`` exports the span forest as
Chrome trace-event JSON for Perfetto, ``--metrics PATH`` dumps the
metrics registry in Prometheus text format, and ``-v``/``-q`` adjust
``repro.*`` log verbosity via :func:`repro.obs.configure`.
``--log-format json`` switches log lines to structured JSON and
``--request-id ID`` runs the command under a request-correlation
context (ids stamped on spans, events, logs, and ``--json``
envelopes — the CLI twin of the daemon's ``X-Clara-Request-Id``).

Errors derived from :class:`repro.errors.ClaraError` exit with a
distinct status per class (see ``EXIT_CODES`` in docs/API.md) and a
one-line ``error:`` message instead of a traceback.

Training commands consult the artifact cache (``--cache auto`` by
default where a trained Clara is needed), so repeated invocations stop
silently retraining from scratch.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import (
    ArtifactError,
    ClaraError,
    LINT_EXIT_ERROR,
    LINT_EXIT_WARNING,
)


def _obs_parent() -> argparse.ArgumentParser:
    """The observability flags every subcommand inherits (one shared
    parent parser instead of per-subcommand copies — new subcommands
    get ``--profile``/``--json-report``/``--trace-out``/``--metrics``/
    ``-v``/``-q`` by listing this in ``parents``)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument("--profile", action="store_true",
                       help="print a per-stage wall-clock table after"
                            " the command")
    group.add_argument("--json-report", metavar="PATH", default=None,
                       help="write the full RunReport JSON to PATH")
    group.add_argument("--trace-out", metavar="PATH", default=None,
                       help="write the span forest as Chrome trace-event"
                            " JSON (view in https://ui.perfetto.dev)")
    group.add_argument("--metrics", metavar="PATH", default=None,
                       help="write the metrics registry in Prometheus"
                            " text format after the run")
    group.add_argument("--request-id", metavar="ID", default=None,
                       help="run under a request-correlation context:"
                            " the id is stamped on spans, JSON log"
                            " lines, journal events, and the --json"
                            " envelope (same mechanics as the daemon's"
                            " X-Clara-Request-Id header)")
    group.add_argument("--log-format", choices=("text", "json"),
                       default="text",
                       help="log line format: text (default) or json"
                            " (one JSON object per line, request/span"
                            " ids stamped on)")
    group.add_argument("-v", "--verbose", action="count", default=0,
                       help="log more (-v info, -vv debug)")
    group.add_argument("-q", "--quiet", action="store_true",
                       help="log errors only")
    return parent


def _train_source_parent() -> argparse.ArgumentParser:
    """Flags shared by every command that needs a trained Clara."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("training source")
    group.add_argument("--load", metavar="PATH", default=None,
                       help="load a saved Clara artifact instead of training")
    group.add_argument("--workers", type=int, default=1,
                       help="worker processes for dataset synthesis"
                            " (0 = all cores)")
    group.add_argument("--cache", choices=("auto", "off", "require"),
                       default="auto",
                       help="artifact-cache mode (default auto: load when"
                            " present, store after training)")
    return parent


def _target_parent(allow_all: bool = False) -> argparse.ArgumentParser:
    """The ``--target`` flag selecting a registered NIC backend."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("NIC target")
    extra = ", or 'all' for a cross-target comparison" if allow_all else ""
    group.add_argument("--target", metavar="NAME", default=None,
                       help="registered NIC target to model (default:"
                            f" nfp-4000{extra}; see docs/API.md"
                            " 'Targets')")
    return parent


def _workload_parent() -> argparse.ArgumentParser:
    """Flags describing the analyzed traffic profile."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("workload")
    group.add_argument("--flows", type=int, default=10_000,
                       help="concurrent flows (default 10000)")
    group.add_argument("--packet-bytes", type=int, default=256,
                       help="packet size in bytes (default 256)")
    group.add_argument("--zipf", type=float, default=1.0,
                       help="flow popularity skew (default 1.0)")
    group.add_argument("--udp", action="store_true",
                       help="UDP traffic instead of TCP")
    group.add_argument("--packets", type=int, default=300,
                       help="profiled trace length (default 300)")
    return parent


def _obtain_clara(args, quick: bool = True) -> "Clara":
    """A trained Clara per the common flags: ``--load`` wins, else
    train (cache-backed, quick mode unless the command says otherwise)."""
    from repro.core import Clara, TrainConfig

    target = getattr(args, "target", None)
    if getattr(args, "load", None):
        print(f"Loading Clara artifact from {args.load}...", file=sys.stderr)
        try:
            clara = Clara.load(args.load)
        except FileNotFoundError:
            raise ArtifactError(f"no artifact at {args.load}") from None
        if target and clara.nic.target.name != target:
            raise ClaraError(
                f"artifact at {args.load} was trained for target"
                f" {clara.nic.target.name!r}, not {target!r}"
            )
        return clara
    config = TrainConfig.quick() if quick else TrainConfig()
    print("Training Clara (quick mode)..." if quick else "Training Clara...",
          file=sys.stderr)
    return Clara(seed=args.seed, target=target).train(
        config, workers=args.workers, cache=args.cache
    )


def _workload_from_args(args) -> "WorkloadSpec":
    from repro.workload.spec import WorkloadSpec

    return WorkloadSpec(
        name="cli",
        n_flows=args.flows,
        packet_bytes=args.packet_bytes,
        zipf_alpha=args.zipf,
        udp_fraction=1.0 if args.udp else 0.0,
        n_packets=args.packets,
    )


def cmd_inventory(_args) -> int:
    from repro.click.elements import ELEMENT_BUILDERS, build_element
    from repro.click.render import element_loc
    from repro.core.prepare import prepare_element
    from repro.nic.compiler import compile_module

    print(f"{'element':14s} {'LoC':>5s} {'NIC instr':>9s} {'state':>6s}"
          f" {'mem':>5s} {'api':>4s}")
    for name in sorted(ELEMENT_BUILDERS):
        element = build_element(name)
        prepared = prepare_element(element)
        program = compile_module(prepared.module)
        print(
            f"{name:14s} {element_loc(element):5d}"
            f" {program.handler.n_total:9d}"
            f" {'yes' if element.is_stateful else 'no':>6s}"
            f" {prepared.annotation.n_mem_stateful:5d}"
            f" {prepared.annotation.n_api:4d}"
        )
    return 0


def cmd_render(args) -> int:
    from repro.click.elements import build_element
    from repro.click.render import render_element

    print(render_element(build_element(args.element)), end="")
    return 0


def cmd_train(args) -> int:
    from dataclasses import replace

    from repro.core import Clara, TrainConfig, train_cache_key

    config = TrainConfig.quick() if args.quick else TrainConfig()
    overrides = {
        key: value
        for key, value in {
            "n_predictor_programs": args.predictor_programs,
            "n_scaleout_programs": args.scaleout_programs,
            "predictor_epochs": args.epochs,
        }.items()
        if value is not None
    }
    config = replace(config, **overrides)
    clara = Clara(seed=args.seed, target=args.target)
    key = train_cache_key(config, seed=args.seed, nic=clara.nic)
    print(f"Training Clara for target {clara.nic.target.name}"
          f" (cache key {key})...", file=sys.stderr)
    clara.train(config, workers=args.workers, cache=args.cache)
    print(f"trained: predictor vocab={clara.predictor.vocab.size} tokens,"
          f" scaleout samples={len(clara.scaleout.samples)}")
    if args.save:
        path = clara.save(args.save)
        print(f"artifact saved to {path}")
    return 0


def _cmd_analyze_all(args, spec) -> int:
    """``analyze --target all``: train one Clara per registered target
    and emit the cross-target comparison ranking."""
    from repro.core import Clara, TrainConfig
    from repro.core.compare import compare_targets
    from repro.nic.targets import list_targets

    if getattr(args, "load", None):
        raise ClaraError(
            "--target all trains one advisor per registered target and"
            " cannot reuse a single --load artifact"
        )
    claras = {}
    caches = []
    for name in list_targets():
        print(f"Training Clara for target {name} (quick mode)...",
              file=sys.stderr)
        clara = Clara(seed=args.seed, target=name).train(
            TrainConfig.quick(), workers=args.workers, cache=args.cache
        )
        cache = _apply_predictor_flags(clara, args)
        if cache is not None:
            caches.append(cache)
        claras[name] = clara
    comparison = compare_targets(claras, args.element, spec)
    for cache in caches:
        cache.flush()
    payload = comparison.to_dict()
    if args.json:
        from repro.serve.schemas import dump_envelope, envelope

        print(dump_envelope(envelope("cross_target_comparison", payload)))
        return 0
    print(f"Cross-target comparison: {args.element}")
    print(f"{'rank':>4s} {'target':14s} {'tput(Mpps)':>11s} {'lat(us)':>9s}"
          f" {'bound':>8s} {'cores':>6s} {'lint':>7s}")
    for entry in payload["ranking"]:
        lint = (f"{entry['lint']['n_errors']}E/"
                f"{entry['lint']['n_warnings']}W")
        print(f"{entry['rank']:4d} {entry['target']:14s}"
              f" {entry['throughput_mpps']:11.2f}"
              f" {entry['latency_us']:9.2f} {entry['bound']:>8s}"
              f" {entry['cores']:6d} {lint:>7s}")
    rec = payload["recommendation"]
    print(f"\nrecommendation: {rec['target']} -- {rec['reason']}")
    return 0


def _apply_predictor_flags(clara, args) -> "Any":
    """Apply ``--predictor-mode`` / ``--predict-cache`` to a trained
    Clara; returns the attached cache (or ``None``) so the caller can
    flush it after the run."""
    clara.predictor.predictor_mode = args.predictor_mode
    if args.predict_cache == "auto":
        from repro.core.artifacts import ArtifactCache

        return clara.enable_prediction_cache(store=ArtifactCache())
    return None


def cmd_analyze(args) -> int:
    spec = _workload_from_args(args)
    if args.target == "all":
        return _cmd_analyze_all(args, spec)
    clara = _obtain_clara(args)
    cache = _apply_predictor_flags(clara, args)
    analysis = clara.analyze(args.element, spec)
    config = clara.port_config(analysis)
    if cache is not None:
        cache.flush()
    if args.json:
        from repro.serve.schemas import (
            analysis_result_payload,
            dump_envelope,
            envelope,
        )

        print(dump_envelope(envelope(
            "analysis_result", analysis_result_payload(analysis, config)
        )))
        return 0
    print(analysis.report.render(), end="")
    print("\nSuggested port configuration:")
    print(f"  checksum engine : {config.use_checksum_accel}")
    print(f"  CRC-substituted : {len(config.crc_accel_blocks)} blocks")
    print(f"  LPM-substituted : {len(config.lpm_accel_blocks)} blocks")
    print(f"  cores           : {config.cores}")
    return 0


def cmd_sweep(args) -> int:
    from repro.click.elements import build_element, initial_state, install_state
    from repro.click.frontend import lower_element
    from repro.click.interp import Interpreter
    from repro.nic.compiler import compile_module
    from repro.nic.machine import NICModel
    from repro.obs import span
    from repro.workload import characterize, generate_trace

    spec = _workload_from_args(args)
    element = build_element(args.element)
    module = lower_element(element)
    interp = Interpreter(module)
    install_state(interp, initial_state(element))
    with span("profile_on_host", nf=element.name):
        profile = interp.run_trace(generate_trace(spec, seed=args.seed))
    freq = {b: c / profile.packets for b, c in profile.block_counts.items()}
    model = NICModel(target=args.target)
    with span("sweep_cores", nf=element.name, target=model.target.name):
        sweep = model.sweep_cores(
            compile_module(module, target=model.target), freq,
            characterize(spec, hierarchy=model.hierarchy),
        )
    knee = model.optimal_cores(sweep)
    core_counts = tuple(
        c for c in (1, 2, 4, 8, 16, 24, 32, 40, 48, 60)
        if c <= model.n_cores
    ) or (model.n_cores,)
    if model.n_cores not in core_counts:
        core_counts += (model.n_cores,)
    predicted_knee = None
    if args.load:
        from repro.core import Clara

        try:
            clara = Clara.load(args.load)
        except FileNotFoundError:
            raise ArtifactError(f"no artifact at {args.load}") from None
        analysis = clara.analyze(element, spec, trace_seed=args.seed)
        predicted_knee = analysis.report.suggested_cores
    if args.json:
        from repro.serve.schemas import dump_envelope, envelope

        result = {
            "element": element.name,
            "knee": knee,
            "predicted_knee": predicted_knee,
            "points": [
                {
                    "cores": cores,
                    "throughput_mpps": round(sweep[cores].throughput_mpps, 4),
                    "latency_us": round(sweep[cores].latency_us, 4),
                }
                for cores in core_counts
            ],
        }
        print(dump_envelope(envelope("core_sweep", result)))
        return 0
    print(f"{'cores':>6s} {'tput(Mpps)':>11s} {'lat(us)':>9s}")
    for cores in core_counts:
        perf = sweep[cores]
        marker = "  <-- knee" if cores == knee else ""
        print(f"{cores:6d} {perf.throughput_mpps:11.2f}"
              f" {perf.latency_us:9.2f}{marker}")
    if predicted_knee is not None:
        print(f"\nClara's predicted knee: {predicted_knee} cores")
    return 0


def cmd_lint(args) -> int:
    from repro.nfir.analysis import default_registry, sarif_report
    from repro.serve.handlers import run_lint_reports
    from repro.serve.schemas import (
        dump_envelope,
        envelope,
        lint_run_payload,
    )

    if args.list_rules:
        registry = default_registry()
        print(f"{'code':6s} {'name':24s} description")
        for pass_ in sorted(registry, key=lambda p: p.code):
            print(f"{pass_.code:6s} {pass_.name:24s} {pass_.description}")
        return 0

    only = args.only.split(",") if args.only else None
    disable = args.disable.split(",") if args.disable else None
    baseline = None
    if args.baseline:
        from repro.nfir.analysis.baseline import LintBaseline

        baseline = LintBaseline.load(args.baseline)
    registry, reports, stats = run_lint_reports(
        elements=args.elements or None, only=only, disable=disable,
        target=args.target, cache=args.cache, baseline=baseline,
    )

    if args.write_baseline:
        from repro.nfir.analysis.baseline import baseline_from_reports
        from repro.nic.targets import resolve_target

        snapshot = baseline_from_reports(
            reports, target=resolve_target(args.target).name
        )
        path = snapshot.save(args.write_baseline)
        print(
            f"lint baseline written to {path}"
            f" ({snapshot.n_fingerprints} accepted finding(s))"
        )
        return 0

    n_errors = sum(r.n_errors for r in reports)
    n_warnings = sum(r.n_warnings for r in reports)
    if args.sarif:
        print(json.dumps(
            sarif_report(reports, registry), indent=2
        ))
    elif args.json:
        print(dump_envelope(envelope(
            "lint_run",
            lint_run_payload(reports, target=args.target, stats=stats),
        )))
    else:
        for report in reports:
            print(report.render(), end="")
        n_suppressed = sum(len(r.suppressed) for r in reports)
        summary = (
            f"{len(reports)} element(s): {n_errors} error(s),"
            f" {n_warnings} warning(s)"
        )
        if n_suppressed:
            summary += f", {n_suppressed} suppressed"
        if baseline is not None:
            summary += f", {stats['n_baselined']} baselined"
        if stats["cache"] != "off":
            summary += (
                f" [cache: {stats['hits']} hit(s),"
                f" {stats['misses']} miss(es)]"
            )
        print(summary)
    if n_errors:
        return LINT_EXIT_ERROR
    if n_warnings:
        return LINT_EXIT_WARNING
    return 0


def cmd_explain(args) -> int:
    from repro.core.explain import render_explanations

    clara = _obtain_clara(args)
    print(render_explanations(clara.scaleout.model, clara.identifier), end="")
    return 0


def cmd_serve(args) -> int:
    import signal
    import threading

    from repro.serve import ServeConfig, build_server

    clara = _obtain_clara(args)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        colocation_programs=args.colocation_programs,
        colocation_groups=args.colocation_groups,
        predict_cache=args.predict_cache == "on",
        predictor_mode=args.predictor_mode,
        slow_request_ms=args.slow_request_ms,
        slow_trace_dir=args.slow_trace_dir,
        slo_window_s=args.slo_window_s,
        slo_p99_s=args.slo_p99_s,
        slo_error_rate=args.slo_error_rate,
    )
    server = build_server(clara, config)
    print(f"clara serve listening on {server.url()}"
          f" (batch window {config.batch_window_ms:g}ms,"
          f" max batch {config.max_batch})", file=sys.stderr)

    def request_stop(signum, _frame):
        # shutdown() must not run on the serving thread; hand it off.
        print(f"clara serve: caught signal {signum}, shutting down...",
              file=sys.stderr)
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, request_stop)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        server.serve_forever()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print("clara serve: clean shutdown", file=sys.stderr)
    return 0


def cmd_events(args) -> int:
    """``clara events``: poll a running daemon's event journal.

    A thin HTTP client over ``GET /v1/events`` — the printed ``--json``
    body is the daemon's response byte-for-byte (same envelope, same
    serializer), so scripts can treat both transports identically.
    ``--jsonl PATH`` additionally re-exports the returned events one
    JSON object per line for ingestion pipelines.
    """
    import urllib.error
    import urllib.parse
    import urllib.request

    params = {}
    if args.kind:
        params["kind"] = args.kind
    if args.for_request:
        params["request_id"] = args.for_request
    if args.since_seq is not None:
        params["since_seq"] = str(args.since_seq)
    if args.n is not None:
        params["n"] = str(args.n)
    url = args.url.rstrip("/") + "/v1/events"
    if params:
        url += "?" + urllib.parse.urlencode(params)
    request = urllib.request.Request(url)
    if args.request_id:
        request.add_header("X-Clara-Request-Id", args.request_id)
    try:
        with urllib.request.urlopen(request, timeout=args.timeout) as resp:
            body = resp.read()
    except urllib.error.HTTPError as exc:
        body = exc.read()
        message = body.decode("utf-8", "replace").strip()
        try:
            message = json.loads(message)["error"]["message"]
        except Exception:  # noqa: BLE001 - non-envelope error body
            pass
        raise ClaraError(
            f"daemon at {args.url} rejected the request"
            f" (HTTP {exc.code}): {message}"
        ) from None
    except (urllib.error.URLError, OSError) as exc:
        reason = getattr(exc, "reason", exc)
        raise ClaraError(
            f"cannot reach clara serve at {args.url}: {reason}"
        ) from None

    envelope_ = json.loads(body.decode("utf-8"))
    result = envelope_.get("result", {})
    events = result.get("events", [])
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        print(f"{len(events)} event(s) written to {args.jsonl}",
              file=sys.stderr)
    if args.json:
        sys.stdout.buffer.write(body)
        if not body.endswith(b"\n"):
            sys.stdout.write("\n")
        return 0
    print(f"{'seq':>6s} {'kind':16s} {'request':34s} data")
    for event in events:
        rid = event.get("request_id") or "-"
        data = json.dumps(event.get("data", {}), sort_keys=True)
        print(f"{event['seq']:6d} {event['kind']:16s} {rid:34s} {data}")
    print(
        f"\n{result.get('n_returned', len(events))} of"
        f" {result.get('n_emitted', '?')} emitted event(s)"
        f" ({result.get('n_dropped', 0)} dropped by the ring buffer)"
    )
    return 0


def cmd_bench(args) -> int:
    from contextlib import nullcontext

    from repro.obs import bench as bench_mod

    if args.list_cases:
        print(f"{'case':20s} description")
        for name in bench_mod.default_case_names():
            case = bench_mod.get_case(name)
            print(f"{case.name:20s} {case.description}")
        return 0

    profiler = nullcontext()
    if args.flame_out:
        from repro.obs.sampling import SamplingProfiler

        profiler = SamplingProfiler(interval_s=0.002)
    with profiler:
        run = bench_mod.run_suite(
            names=args.cases or None,
            repeats=args.repeats,
            quick=args.quick,
            seed=args.seed,
            target=args.target,
        )
    if args.flame_out:
        profiler.write(args.flame_out)
        print(f"collapsed stacks written to {args.flame_out}",
              file=sys.stderr)

    if not args.no_out:
        out_path = args.out or run.default_artifact_name()
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(run.to_json() + "\n")
        print(f"bench artifact written to {out_path}", file=sys.stderr)

    if args.json:
        print(run.to_json())
    else:
        print(run.render(), end="")

    if args.compare:
        baseline = bench_mod.BenchRun.load(args.compare)
        comparison = bench_mod.compare_runs(
            baseline, run,
            rel_threshold=(bench_mod.DEFAULT_REL_THRESHOLD
                           if args.rel_threshold is None
                           else args.rel_threshold),
            mad_k=(bench_mod.DEFAULT_MAD_K
                   if args.mad_k is None else args.mad_k),
        )
        print()
        print(comparison.render(), end="")
        return comparison.exit_code
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clara (SOSP'21) reproduction: SmartNIC offloading insights",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared flag groups: every subcommand inherits observability; the
    # training-source and workload groups attach where they apply.
    obs = _obs_parent()
    train_source = _train_source_parent()
    workload = _workload_parent()
    target = _target_parent()
    target_or_all = _target_parent(allow_all=True)

    sub.add_parser("inventory", help="element inventory (Table 2)",
                   parents=[obs])

    p_render = sub.add_parser("render", help="print element source",
                              parents=[obs])
    p_render.add_argument("element")

    p_train = sub.add_parser(
        "train",
        help="run the learning phases, optionally saving the artifact",
        parents=[target, obs],
    )
    p_train.add_argument("--quick", action="store_true",
                        help="small dataset sizes (fast, lower fidelity)")
    p_train.add_argument("--save", metavar="PATH", default=None,
                        help="write the trained artifact to PATH")
    p_train.add_argument("--predictor-programs", type=int, default=None,
                        help="override TrainConfig.n_predictor_programs")
    p_train.add_argument("--scaleout-programs", type=int, default=None,
                        help="override TrainConfig.n_scaleout_programs")
    p_train.add_argument("--epochs", type=int, default=None,
                        help="override TrainConfig.predictor_epochs")
    p_train.add_argument("--workers", type=int, default=1,
                        help="worker processes for dataset synthesis"
                             " (0 = all cores)")
    p_train.add_argument("--cache", choices=("auto", "off", "require"),
                        default="auto",
                        help="artifact-cache mode (default auto)")

    p_analyze = sub.add_parser("analyze", help="offloading insights",
                               parents=[workload, train_source,
                                        target_or_all, obs])
    p_analyze.add_argument("element")
    p_analyze.add_argument("--json", action="store_true",
                           help="emit the versioned JSON envelope instead"
                                " of the human report")
    p_analyze.add_argument("--predict-cache", choices=("auto", "off"),
                           default="off",
                           help="content-addressed prediction cache: auto"
                                " persists block predictions in the"
                                " artifact cache across runs (default off;"
                                " results are bit-identical either way)")
    p_analyze.add_argument("--predictor-mode",
                           choices=("lstm", "distilled", "auto"),
                           default="lstm",
                           help="serving mode: lstm (exact sequence model),"
                                " distilled (GBDT fast path), or auto"
                                " (distilled where confident, LSTM"
                                " fallback elsewhere; default lstm)")

    p_sweep = sub.add_parser("sweep", help="core-count sweep",
                             parents=[workload, target, obs])
    p_sweep.add_argument("element")
    p_sweep.add_argument("--json", action="store_true",
                         help="emit the versioned JSON envelope instead of"
                              " the table")
    p_sweep.add_argument("--load", metavar="PATH", default=None,
                         help="also print the predicted knee from a saved"
                              " Clara artifact")

    sub.add_parser("explain", help="model interpretability report",
                   parents=[train_source, target, obs])

    p_serve = sub.add_parser(
        "serve",
        help="long-running analysis daemon (JSON-over-HTTP API)",
        parents=[train_source, target, obs],
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8787,
                         help="TCP port, 0 for ephemeral (default 8787)")
    p_serve.add_argument("--batch-window-ms", type=float, default=2.0,
                         help="how long the inference broker waits for"
                              " concurrent requests to batch (default 2.0)")
    p_serve.add_argument("--max-batch", type=int, default=64,
                         help="max inference calls merged into one model"
                              " invocation (default 64)")
    p_serve.add_argument("--colocation-programs", type=int, default=12,
                         help="candidate-pool size for the lazily trained"
                              " colocation ranker (default 12)")
    p_serve.add_argument("--colocation-groups", type=int, default=12,
                         help="ranking groups for the lazily trained"
                              " colocation ranker (default 12)")
    p_serve.add_argument("--predict-cache", choices=("on", "off"),
                         default="on",
                         help="in-memory content-addressed prediction"
                              " cache for repeat analyzes (default on;"
                              " responses are byte-identical either way)")
    p_serve.add_argument("--predictor-mode",
                         choices=("lstm", "distilled", "auto"),
                         default="lstm",
                         help="predictor serving mode (see analyze"
                              " --predictor-mode; default lstm)")
    p_serve.add_argument("--slow-request-ms", type=float, default=5000.0,
                         help="requests slower than this capture their"
                              " full span tree into the event journal"
                              " (default 5000)")
    p_serve.add_argument("--slow-trace-dir", metavar="DIR", default=None,
                         help="also write each slow request's span tree"
                              " as a Chrome trace file under DIR")
    p_serve.add_argument("--slo-window-s", type=float, default=300.0,
                         help="sliding window for the rolling latency"
                              " quantiles and error rate (default 300)")
    p_serve.add_argument("--slo-p99-s", type=float, default=2.0,
                         help="windowed p99 above this marks /healthz"
                              " degraded (default 2.0)")
    p_serve.add_argument("--slo-error-rate", type=float, default=0.05,
                         help="windowed 5xx rate above this marks"
                              " /healthz degraded (default 0.05)")

    p_events = sub.add_parser(
        "events",
        help="poll a running clara serve daemon's event journal",
        parents=[obs],
    )
    p_events.add_argument("--url", default="http://127.0.0.1:8787",
                          help="daemon base URL (default"
                               " http://127.0.0.1:8787)")
    p_events.add_argument("--kind", default=None,
                          help="only events of this kind (e.g."
                               " request_finish, broker_batch,"
                               " slow_request)")
    p_events.add_argument("--for-request", metavar="ID", default=None,
                          help="only events stamped with this request id")
    p_events.add_argument("--since-seq", type=int, default=None,
                          help="only events with seq > N (incremental"
                               " polling)")
    p_events.add_argument("-n", type=int, default=None,
                          help="at most N events (newest kept)")
    p_events.add_argument("--jsonl", metavar="PATH", default=None,
                          help="also export the returned events as JSON"
                               " lines to PATH")
    p_events.add_argument("--timeout", type=float, default=10.0,
                          help="HTTP timeout in seconds (default 10)")
    p_events.add_argument("--json", action="store_true",
                          help="print the daemon's envelope verbatim"
                               " instead of the table")

    p_lint = sub.add_parser(
        "lint", help="static offload-portability diagnostics",
        parents=[target, obs],
    )
    p_lint.add_argument("elements", nargs="*",
                        help="library element names (default: all)")
    output = p_lint.add_mutually_exclusive_group()
    output.add_argument("--json", action="store_true",
                        help="emit the schema-stable lint reports as JSON")
    output.add_argument("--sarif", action="store_true",
                        help="emit a SARIF 2.1.0 document")
    p_lint.add_argument("--only", metavar="RULES", default=None,
                        help="comma-separated rule codes/names to run"
                             " exclusively")
    p_lint.add_argument("--disable", metavar="RULES", default=None,
                        help="comma-separated rule codes/names to skip")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    p_lint.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="record every current finding as accepted"
                             " and write the baseline file")
    p_lint.add_argument("--baseline", metavar="FILE", default=None,
                        help="report (and gate on) only findings absent"
                             " from this baseline file")
    p_lint.add_argument("--cache", choices=("auto", "off"), default="off",
                        help="incremental lint through the artifact cache"
                             " (default off)")

    p_bench = sub.add_parser(
        "bench", help="continuous benchmarking of Clara's own hot paths",
        parents=[target, obs],
    )
    p_bench.add_argument("cases", nargs="*",
                         help="bench case names (default: the whole"
                              " declared suite)")
    p_bench.add_argument("--quick", action="store_true",
                         help="shrunken workload sizes (CI smoke profile)")
    p_bench.add_argument("--repeats", type=int, default=None,
                         help="timed repetitions per case (default: 5,"
                              " or 3 with --quick)")
    p_bench.add_argument("--out", metavar="PATH", default=None,
                         help="artifact path (default BENCH_<git-sha>.json)")
    p_bench.add_argument("--no-out", action="store_true",
                         help="skip writing the BENCH_*.json artifact")
    p_bench.add_argument("--json", action="store_true",
                         help="print the bench run as JSON instead of the"
                              " human table")
    p_bench.add_argument("--compare", metavar="BASELINE", default=None,
                         help="grade this run against a BENCH_*.json"
                              " baseline; exit 10 on warn-grade and 11 on"
                              " error-grade regressions")
    p_bench.add_argument("--rel-threshold", type=float, default=None,
                         help="relative slowdown that counts as a"
                              " regression (default 0.25)")
    p_bench.add_argument("--mad-k", type=float, default=None,
                         help="noise guard: slowdown must also exceed"
                              " K*MAD (default 4.0)")
    p_bench.add_argument("--flame-out", metavar="PATH", default=None,
                         help="sample the suite with the signal profiler"
                              " and write collapsed stacks to PATH")
    p_bench.add_argument("--list-cases", action="store_true",
                         help="print the declared case table and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "inventory": cmd_inventory,
        "render": cmd_render,
        "train": cmd_train,
        "analyze": cmd_analyze,
        "sweep": cmd_sweep,
        "explain": cmd_explain,
        "serve": cmd_serve,
        "lint": cmd_lint,
        "bench": cmd_bench,
        "events": cmd_events,
    }

    from repro import obs

    obs.configure(verbosity=-1 if getattr(args, "quiet", False)
                  else getattr(args, "verbose", 0),
                  fmt=getattr(args, "log_format", "text"))
    want_report = bool(
        getattr(args, "profile", False)
        or getattr(args, "json_report", None)
        or getattr(args, "trace_out", None)
    )
    tracer = obs.Tracer() if want_report else None
    previous = obs.set_tracer(tracer) if tracer is not None else None

    # --request-id installs the same correlation context the daemon
    # builds from X-Clara-Request-Id: spans, journal events, JSON log
    # lines, and --json envelopes all carry the id, so a CLI run and an
    # HTTP request with matching ids produce byte-identical bodies.
    from contextlib import nullcontext

    request_id = getattr(args, "request_id", None)
    reqctx = (
        obs.use_request(obs.RequestContext(request_id=request_id))
        if request_id else nullcontext()
    )

    status, code = "ok", 0
    obs.get_metrics().counter("cli_invocations", command=args.command).inc()
    try:
        with reqctx, obs.span(f"cli.{args.command}"):
            code = handlers[args.command](args)
    except ClaraError as exc:
        print(f"error: {exc}", file=sys.stderr)
        status = type(exc).__name__
        code = exc.exit_code
    finally:
        if tracer is not None:
            obs.set_tracer(previous)

    if tracer is not None:
        report = obs.RunReport.collect(
            command=args.command,
            tracer=tracer,
            metrics=obs.get_metrics(),
            status=status,
            exit_code=code,
        )
        if args.profile:
            print()
            print(report.render_profile(), end="")
        if args.json_report:
            with open(args.json_report, "w", encoding="utf-8") as handle:
                handle.write(report.to_json() + "\n")
            print(f"run report written to {args.json_report}",
                  file=sys.stderr)
        if args.trace_out:
            obs.write_chrome_trace(tracer, args.trace_out)
            print(f"chrome trace written to {args.trace_out}"
                  " (view in https://ui.perfetto.dev)", file=sys.stderr)
    if getattr(args, "metrics", None):
        with open(args.metrics, "w", encoding="utf-8") as handle:
            handle.write(obs.get_metrics().to_prometheus())
        print(f"metrics written to {args.metrics}", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
