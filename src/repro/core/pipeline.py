"""The end-to-end Clara pipeline (paper Figure 2).

``Clara.train()`` performs the one-time learning phases (instruction
prediction on synthesized pairs, algorithm-identification corpus,
scale-out cost model).  Training is driven by a
:class:`~repro.core.artifacts.TrainConfig`, can fan dataset synthesis
out over worker processes (``workers=N``), and can persist/restore its
fitted advisors through the content-addressed artifact cache
(``cache="auto"``) or explicit ``Clara.save()`` / ``Clara.load()``
calls — a second ``train()`` with the same config is a sub-second load
instead of a retrain.

``Clara.analyze()`` then takes an *unported* ClickScript element plus
a workload spec and produces the full insight report;
``Clara.port_config()`` turns the insights into a
:class:`~repro.nic.port.PortConfig` — the "Clara porting" strategy the
evaluation benchmarks against naive porting and expert emulation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.click.ast import ElementDef
from repro.click.elements import build_element, initial_state, install_state
from repro.click.interp import ExecutionProfile, Interpreter
from repro.core.algorithms import AlgorithmIdentifier, build_algorithm_corpus
from repro.core.artifacts import (
    ArtifactCache,
    ArtifactCacheMiss,
    TrainConfig,
    load_state,
    save_state,
    train_cache_key,
)
from repro.core.coalescing import CoalescingAdvisor
from repro.core.insights import INSIGHT_REPORT_SCHEMA, InsightReport
from repro.core.placement import PlacementAdvisor
from repro.core.predictor import InstructionPredictor, PredictorDataset
from repro.core.prepare import PreparedNF, prepare_element
from repro.core.scaleout import ScaleoutAdvisor
from repro.errors import NotTrainedError
from repro.nfir.analysis import lint_module
from repro.nic.machine import NICModel, WorkloadCharacter
from repro.nic.port import PortConfig
from repro.nic.targets import TargetDescription
from repro.obs import get_logger, get_metrics, span
from repro.obs.metrics import DEFAULT_BUCKETS, observe_latency
from repro.workload import characterize, generate_trace
from repro.workload.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.colocation import ColocationAdvisor, NFCandidate

log = get_logger(__name__)

#: valid values of ``Clara.train(cache=...)``.
CACHE_MODES = ("auto", "off", "require")


@dataclass
class AnalysisResult:
    report: InsightReport
    prepared: PreparedNF
    profile: ExecutionProfile
    workload: WorkloadCharacter
    #: registry name of the NIC target the analysis ran against.
    target: str = "nfp-4000"

    @property
    def block_freq(self) -> Dict[str, float]:
        packets = max(self.profile.packets, 1)
        return {
            b: c / packets for b, c in self.profile.block_counts.items()
        }

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON layout (``"schema": 2``): the insight report
        plus the host-profile and workload facts it was derived from."""
        return {
            "schema": INSIGHT_REPORT_SCHEMA,
            "kind": "analysis_result",
            "target": self.target,
            "report": self.report.to_dict(),
            "block_freq": {
                name: round(freq, 6)
                for name, freq in sorted(self.block_freq.items())
            },
            "profile": {
                "packets": int(self.profile.packets),
                "sent": int(self.profile.sent),
                "dropped": int(self.profile.dropped),
                "api_counts": {
                    api: int(count)
                    for api, count in sorted(self.profile.api_counts.items())
                },
            },
            "workload": {
                "name": self.workload.name,
                "packet_bytes": int(self.workload.packet_bytes),
                "emem_cache_hit_rate": float(
                    self.workload.emem_cache_hit_rate
                ),
                "flow_cache_hit_rate": float(
                    self.workload.flow_cache_hit_rate
                ),
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class Clara:
    """Automated SmartNIC offloading insights."""

    def __init__(
        self,
        nic: Optional[NICModel] = None,
        seed: int = 0,
        target: "str | TargetDescription | None" = None,
    ) -> None:
        """``target`` selects the registered NIC backend the pipeline
        models (default ``nfp-4000``); passing an explicit ``nic``
        model overrides it entirely."""
        self.nic = nic or NICModel(target=target)
        self.seed = seed
        self.predictor = InstructionPredictor(seed=seed)
        self.identifier = AlgorithmIdentifier(seed=seed)
        self.scaleout = ScaleoutAdvisor(nic=self.nic, seed=seed)
        self.placement = PlacementAdvisor(hierarchy=self.nic.hierarchy)
        self.coalescing = CoalescingAdvisor(seed=seed)
        #: trained lazily by :meth:`train_colocation`.
        self.colocation: Optional["ColocationAdvisor"] = None
        #: the config of the last (or loaded) training run.
        self.train_config: Optional[TrainConfig] = None
        self.trained = False

    # -- one-time training phases ---------------------------------------
    def train(
        self,
        config: Optional[TrainConfig] = None,
        *,
        workers: int = 1,
        cache: str = "off",
        cache_dir: Optional[str] = None,
    ) -> "Clara":
        """Run all learning phases for ``config`` (default
        :class:`TrainConfig`; use ``TrainConfig.quick()`` for tests).

        ``workers`` fans dataset synthesis out over processes —
        parallel and serial synthesis produce identical datasets, so
        the choice is invisible to everything downstream.  ``cache``
        selects artifact-cache behavior: ``"off"`` always retrains,
        ``"auto"`` loads a previously stored artifact for the same
        (config, seed, NIC) and stores fresh ones, ``"require"``
        raises :class:`ArtifactCacheMiss` instead of retraining.

        :class:`TrainConfig` is the only way to size a run — the
        pre-1.0 ``n_predictor_programs``/``n_scaleout_programs``/
        ``predictor_epochs``/``quick`` kwargs (deprecated since the
        artifact-cache release) are gone.
        """
        if config is None:
            config = TrainConfig()
        if cache not in CACHE_MODES:
            raise ValueError(
                f"cache must be one of {CACHE_MODES}, got {cache!r}"
            )
        self.train_config = config

        with span("train", cache_mode=cache, workers=workers) as train_sp:
            get_metrics().counter("train_runs").inc()
            store: Optional[ArtifactCache] = None
            key: Optional[str] = None
            if cache != "off":
                store = ArtifactCache(cache_dir)
                key = train_cache_key(config, seed=self.seed, nic=self.nic)
                state = store.load(key)
                if state is not None:
                    train_sp.set("cache", "hit")
                    log.info("train: cache hit for key %s", key)
                    return self.load_state_dict(state)
                train_sp.set("cache", "miss")
                if cache == "require":
                    raise ArtifactCacheMiss(
                        f"no cached Clara artifact for key {key}"
                        f" under {store.root}"
                    )
            log.info("train: learning phases for config %s", config)

            with span("synthesize_predictor") as sp:
                dataset = PredictorDataset.synthesize(
                    n_programs=config.n_predictor_programs,
                    seed=self.seed,
                    workers=workers,
                    target=self.nic.target.name,
                )
                sp.set("n_samples", len(dataset))
            with span("fit_predictor") as sp:
                self.predictor.epochs = config.predictor_epochs
                self.predictor.fit(dataset)
                sp.set("vocab_size", self.predictor.vocab.size)
                sp.set("epochs", config.predictor_epochs)
            with span("distill_predictor") as sp:
                # GBDT fast path imitating the fitted LSTM over the
                # same corpus (--predictor-mode distilled/auto).
                self.predictor.distill(dataset)
                sp.set("threshold", self.predictor.distilled.threshold)
            with span("build_algorithm_corpus") as sp:
                corpus = build_algorithm_corpus(
                    seed=self.seed, n_negatives=config.n_negatives
                )
                sp.set("n_samples", len(corpus.sequences))
            with span("fit_identifier"):
                self.identifier.fit(corpus)
            with span("build_scaleout_set") as sp:
                self.scaleout.build_training_set(
                    n_programs=config.n_scaleout_programs,
                    trace_packets=config.scaleout_trace_packets,
                    workers=workers,
                )
                sp.set("n_samples", len(self.scaleout.samples))
            with span("fit_scaleout"):
                self.scaleout.fit()
            self.trained = True
            if store is not None and key is not None:
                store.store(key, self.state_dict())
        return self

    def train_colocation(
        self,
        n_programs: int = 20,
        n_groups: int = 30,
        objective: str = "total_throughput_loss",
    ) -> "Clara":
        """Train the colocation ranker (Section 4.5).  Separate from
        :meth:`train` because colocation analysis is only needed when
        several NFs compete for one NIC."""
        from repro.core.colocation import ColocationAdvisor

        with span("train_colocation", n_programs=n_programs,
                  n_groups=n_groups, objective=objective):
            advisor = ColocationAdvisor(
                nic=self.nic, objective=objective, seed=self.seed
            )
            with span("build_candidate_pool"):
                pool, workload = advisor.build_candidate_pool(
                    n_programs=n_programs
                )
            with span("fit_colocation"):
                advisor.fit(pool, workload, n_groups=n_groups)
        self.colocation = advisor
        return self

    def rank_colocations(
        self,
        candidates: Sequence[Tuple["NFCandidate", "NFCandidate"]],
    ) -> List[Tuple["NFCandidate", "NFCandidate"]]:
        """Rank (a, b) NFCandidate pairs friendliest-first; requires
        :meth:`train_colocation` to have run."""
        from repro.core.colocation import NFCandidate

        if self.colocation is None:
            raise NotTrainedError("call Clara.train_colocation() first")
        pairs = list(candidates)
        for position, pair in enumerate(pairs):
            if not (
                isinstance(pair, tuple)
                and len(pair) == 2
                and all(isinstance(nf, NFCandidate) for nf in pair)
            ):
                raise TypeError(
                    f"candidates[{position}] is not an (NFCandidate,"
                    f" NFCandidate) pair: {pair!r}"
                )
        if not pairs:
            return []
        with span("rank_colocations", n_pairs=len(pairs)):
            get_metrics().counter("colocation_rankings").inc()
            order = self.colocation.rank_pairs(pairs)
            return [pairs[i] for i in order]

    # -- serving fast paths ---------------------------------------------
    def enable_prediction_cache(
        self, store: Optional[ArtifactCache] = None
    ) -> "Any":
        """Attach the content-addressed prediction cache to the fitted
        predictor, namespaced to this pipeline's NIC target.  Pass
        ``store`` to page previously flushed predictions in from disk;
        without it the cache is purely in-memory (what ``clara serve``
        uses).  Returns the attached
        :class:`~repro.core.artifacts.PredictionCache`."""
        return self.predictor.attach_prediction_cache(
            store=store, nic=self.nic
        )

    # -- artifact persistence -------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """The fitted state of every advisor, picklable, sufficient to
        reproduce bit-identical analyses via :meth:`load_state_dict`."""
        return {
            "seed": self.seed,
            "trained": self.trained,
            "train_config": self.train_config,
            "target": self.nic.target.to_dict(),
            "advisors": {
                "predictor": self.predictor.state_dict(),
                "identifier": self.identifier.state_dict(),
                "scaleout": self.scaleout.state_dict(),
                "placement": self.placement.state_dict(),
                "coalescing": self.coalescing.state_dict(),
                "colocation": (
                    None if self.colocation is None
                    else self.colocation.state_dict()
                ),
            },
        }

    def load_state_dict(self, state: Mapping[str, object]) -> "Clara":
        advisors = state["advisors"]
        self.predictor.load_state_dict(advisors["predictor"])
        self.identifier.load_state_dict(advisors["identifier"])
        self.scaleout.load_state_dict(advisors["scaleout"])
        self.placement.load_state_dict(advisors["placement"])
        self.coalescing.load_state_dict(advisors["coalescing"])
        colocation_state = advisors.get("colocation")
        if colocation_state is None:
            self.colocation = None
        else:
            from repro.core.colocation import ColocationAdvisor

            advisor = ColocationAdvisor(nic=self.nic, seed=self.seed)
            advisor.load_state_dict(colocation_state)
            self.colocation = advisor
        self.seed = int(state.get("seed", self.seed))
        self.train_config = state.get("train_config")
        self.trained = bool(state.get("trained", True))
        return self

    def save(self, path) -> Path:
        """Serialize the trained advisors to ``path`` for explicit
        artifact shipping (``Clara.load(path)`` restores them)."""
        return save_state(self.state_dict(), path)

    @classmethod
    def load(cls, path, nic: Optional[NICModel] = None) -> "Clara":
        """A Clara instance restored from a :meth:`save` artifact.

        When ``nic`` is not given, the NIC model is rebuilt from the
        target description recorded in the artifact (pre-registry
        artifacts recorded none and default to the NFP)."""
        state = load_state(path)
        if nic is None:
            target_payload = state.get("target")
            if target_payload is not None:
                nic = NICModel(
                    target=TargetDescription.from_dict(target_payload)
                )
        clara = cls(nic=nic, seed=int(state.get("seed", 0)))
        return clara.load_state_dict(state)

    # -- per-NF analysis ---------------------------------------------------
    def profile_on_host(
        self,
        prepared: PreparedNF,
        spec: WorkloadSpec,
        state: Optional[Mapping[str, object]] = None,
        trace_seed: int = 0,
    ) -> ExecutionProfile:
        """Run the NF on the host against the workload (Section 4.3)."""
        with span("profile_on_host", nf=prepared.name,
                  workload=spec.name) as sp:
            interp = Interpreter(prepared.module, seed=trace_seed)
            if prepared.element is not None:
                install_state(interp, initial_state(prepared.element))
            if state:
                install_state(interp, state)
            profile = interp.run_trace(generate_trace(spec, seed=trace_seed))
            sp.set("packets", profile.packets)
        return profile

    def analyze(
        self,
        element: Union[ElementDef, str],
        spec: WorkloadSpec,
        state: Optional[Mapping[str, object]] = None,
        trace_seed: int = 0,
    ) -> AnalysisResult:
        """The full insight pipeline for one NF under one workload.

        ``element`` is either an :class:`~repro.click.ast.ElementDef`
        or a library element *name* (resolved via
        :func:`~repro.click.elements.build_element`).

        Re-entrant: every call builds its own interpreter, profile,
        and report, and the fitted advisors are only *read* — so
        ``clara serve`` calls this concurrently from its request
        threads (with predictor inference batched across them by the
        serve broker).  Only :meth:`train`/:meth:`load_state_dict`
        mutate advisor state and must not overlap with analyses.
        """
        if not self.trained:
            raise NotTrainedError("call Clara.train() before analyze()")
        if isinstance(element, str):
            element = build_element(element)
        with span("analyze", nf=element.name, workload=spec.name), \
                observe_latency("analyze_latency_seconds",
                                buckets=DEFAULT_BUCKETS):
            get_metrics().counter("analyze_runs").inc()
            with span("prepare") as sp:
                prepared = prepare_element(element)
                sp.set("n_blocks", len(prepared.blocks))
            profile = self.profile_on_host(prepared, spec, state, trace_seed)
            with span("characterize"):
                workload = characterize(spec, hierarchy=self.nic.hierarchy)

            with span("predict") as sp:
                report = self.predictor.advise(prepared, profile, workload)
                report.workload_name = spec.name
                sp.set("n_insights", len(report.insights))

            # Accelerator opportunities (Section 4.1).
            with span("identify") as sp:
                accelerators = self.identifier.advise(
                    prepared, profile, workload
                )
                sp.set("n_regions", len(accelerators))
            for region, (label, blocks) in accelerators.items():
                report.add(
                    "accelerator",
                    region,
                    label,
                    detail=f"blocks: {','.join(blocks[:4])}"
                    + ("..." if len(blocks) > 4 else ""),
                )
                report.insights[-1].value = {"accel": label, "blocks": blocks}

            # Scale-out suggestion (Section 4.2).
            with span("scaleout") as sp:
                cores = self.scaleout.advise(
                    prepared, profile, workload,
                    block_compute=report.predicted_compute,
                )
                sp.set("cores", cores)
            report.add("scaleout", "cores", cores, detail="GBDT cost model")

            # State placement (Section 4.3).
            with span("placement") as sp:
                solution = self.placement.advise(prepared, profile, workload)
                sp.set("method", solution.method)
            for name, region in solution.assignment.items():
                report.add(
                    "placement", name, region,
                    detail=f"ILP ({solution.method})",
                )

            # Coalescing (Section 4.4).
            with span("coalescing") as sp:
                plan = self.coalescing.advise(prepared, profile, workload)
                sp.set("n_packs", len(plan.packs))
            for pack in plan.packs:
                report.add(
                    "coalescing",
                    "+".join(pack.variables),
                    pack.access_bytes,
                    detail="K-means access-vector cluster",
                )

            # Offload lint (static portability diagnostics).
            with span("lint") as sp:
                lint = lint_module(prepared.module, target=self.nic.target)
                report.diagnostics = list(lint.diagnostics)
                sp.set("n_diagnostics", len(lint.diagnostics))
                sp.set("n_errors", lint.n_errors)
                sp.set("n_suppressed", len(lint.suppressed))
                metrics = get_metrics()
                for diag in lint.diagnostics:
                    metrics.counter(
                        "lint_diagnostics",
                        severity=diag.severity,
                        rule=diag.rule,
                    ).inc()
                    if diag.data.get("downgraded_by"):
                        metrics.counter(
                            "lint_downgrades",
                            rule=diag.rule,
                            by=str(diag.data["downgraded_by"]),
                        ).inc()

        log.info(
            "analyze: %s under %s -> %d insights",
            element.name, spec.name, len(report.insights),
        )
        return AnalysisResult(
            report, prepared, profile, workload, target=self.nic.target.name
        )

    # -- turning insights into a port ---------------------------------------
    def port_config(self, analysis: AnalysisResult) -> PortConfig:
        """The "Clara porting" strategy: apply every insight."""
        report = analysis.report
        crc_blocks: List[str] = []
        lpm_blocks: List[str] = []
        crypto_blocks: List[str] = []
        for insight in report.of_type("accelerator"):
            value = insight.value
            # Only helper bodies and natural loops are mechanically
            # substitutable; a label on the residual "main" region is a
            # rewrite *suggestion* for the developer, not a safe
            # automated transformation.
            if not (
                insight.subject.startswith("helper:")
                or insight.subject.startswith("loop:")
            ):
                continue
            if value["accel"] == "crc":
                crc_blocks.extend(value["blocks"])
            elif value["accel"] == "lpm":
                lpm_blocks.extend(value["blocks"])
            elif value["accel"] == "crypto":
                crypto_blocks.extend(value["blocks"])
        packs = []
        from repro.nic.port import CoalescePack

        for insight in report.of_type("coalescing"):
            packs.append(
                CoalescePack(tuple(insight.subject.split("+")), int(insight.value))
            )
        uses_checksum = any(
            api.startswith("checksum_update") for api in analysis.prepared.api_set
        )
        return PortConfig(
            use_checksum_accel=uses_checksum,
            crc_accel_blocks=frozenset(crc_blocks),
            crypto_accel_blocks=frozenset(crypto_blocks),
            lpm_accel_blocks=frozenset(lpm_blocks),
            placement=dict(report.placement),
            packs=packs,
            cores=report.suggested_cores or self.nic.n_cores,
        )
