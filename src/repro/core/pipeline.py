"""The end-to-end Clara pipeline (paper Figure 2).

``Clara.train()`` performs the one-time learning phases (instruction
prediction on synthesized pairs, algorithm-identification corpus,
scale-out cost model).  Training is driven by a
:class:`~repro.core.artifacts.TrainConfig`, can fan dataset synthesis
out over worker processes (``workers=N``), and can persist/restore its
fitted advisors through the content-addressed artifact cache
(``cache="auto"``) or explicit ``Clara.save()`` / ``Clara.load()``
calls — a second ``train()`` with the same config is a sub-second load
instead of a retrain.

``Clara.analyze()`` then takes an *unported* ClickScript element plus
a workload spec and produces the full insight report;
``Clara.port_config()`` turns the insights into a
:class:`~repro.nic.port.PortConfig` — the "Clara porting" strategy the
evaluation benchmarks against naive porting and expert emulation.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.click.ast import ElementDef
from repro.click.elements import initial_state, install_state
from repro.click.interp import ExecutionProfile, Interpreter
from repro.core.algorithms import AlgorithmIdentifier, build_algorithm_corpus
from repro.core.artifacts import (
    ArtifactCache,
    ArtifactCacheMiss,
    TrainConfig,
    load_state,
    save_state,
    train_cache_key,
)
from repro.core.coalescing import CoalescingAdvisor
from repro.core.insights import InsightReport
from repro.core.placement import PlacementAdvisor
from repro.core.predictor import InstructionPredictor, PredictorDataset
from repro.core.prepare import PreparedNF, prepare_element
from repro.core.scaleout import ScaleoutAdvisor
from repro.nic.machine import NICModel, WorkloadCharacter
from repro.nic.port import PortConfig
from repro.workload import characterize, generate_trace
from repro.workload.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.colocation import ColocationAdvisor, NFCandidate

#: valid values of ``Clara.train(cache=...)``.
CACHE_MODES = ("auto", "off", "require")


@dataclass
class AnalysisResult:
    report: InsightReport
    prepared: PreparedNF
    profile: ExecutionProfile
    workload: WorkloadCharacter

    @property
    def block_freq(self) -> Dict[str, float]:
        packets = max(self.profile.packets, 1)
        return {
            b: c / packets for b, c in self.profile.block_counts.items()
        }


class Clara:
    """Automated SmartNIC offloading insights."""

    def __init__(self, nic: Optional[NICModel] = None, seed: int = 0) -> None:
        self.nic = nic or NICModel()
        self.seed = seed
        self.predictor = InstructionPredictor(seed=seed)
        self.identifier = AlgorithmIdentifier(seed=seed)
        self.scaleout = ScaleoutAdvisor(nic=self.nic, seed=seed)
        self.placement = PlacementAdvisor()
        self.coalescing = CoalescingAdvisor(seed=seed)
        #: trained lazily by :meth:`train_colocation`.
        self.colocation: Optional["ColocationAdvisor"] = None
        #: the config of the last (or loaded) training run.
        self.train_config: Optional[TrainConfig] = None
        self.trained = False

    # -- one-time training phases ---------------------------------------
    def train(
        self,
        config: Optional[TrainConfig] = None,
        *,
        workers: int = 1,
        cache: str = "off",
        cache_dir: Optional[str] = None,
        n_predictor_programs: Optional[int] = None,
        n_scaleout_programs: Optional[int] = None,
        predictor_epochs: Optional[int] = None,
        quick: Optional[bool] = None,
    ) -> "Clara":
        """Run all learning phases for ``config`` (default
        :class:`TrainConfig`; use ``TrainConfig.quick()`` for tests).

        ``workers`` fans dataset synthesis out over processes —
        parallel and serial synthesis produce identical datasets, so
        the choice is invisible to everything downstream.  ``cache``
        selects artifact-cache behavior: ``"off"`` always retrains,
        ``"auto"`` loads a previously stored artifact for the same
        (config, seed, NIC) and stores fresh ones, ``"require"``
        raises :class:`ArtifactCacheMiss` instead of retraining.

        The ``n_predictor_programs``/``n_scaleout_programs``/
        ``predictor_epochs``/``quick`` kwargs are a deprecated shim
        over :class:`TrainConfig`.
        """
        legacy = {
            "n_predictor_programs": n_predictor_programs,
            "n_scaleout_programs": n_scaleout_programs,
            "predictor_epochs": predictor_epochs,
            "quick": quick,
        }
        if any(value is not None for value in legacy.values()):
            if config is not None:
                raise TypeError(
                    "pass either a TrainConfig or the legacy kwargs, not both"
                )
            warnings.warn(
                "Clara.train(n_predictor_programs=..., quick=...) is"
                " deprecated; pass a TrainConfig (e.g."
                " Clara.train(TrainConfig.quick()))",
                DeprecationWarning,
                stacklevel=2,
            )
            config = TrainConfig.from_legacy(**legacy)
        if config is None:
            config = TrainConfig()
        if cache not in CACHE_MODES:
            raise ValueError(
                f"cache must be one of {CACHE_MODES}, got {cache!r}"
            )
        self.train_config = config

        store: Optional[ArtifactCache] = None
        key: Optional[str] = None
        if cache != "off":
            store = ArtifactCache(cache_dir)
            key = train_cache_key(config, seed=self.seed, nic=self.nic)
            state = store.load(key)
            if state is not None:
                return self.load_state_dict(state)
            if cache == "require":
                raise ArtifactCacheMiss(
                    f"no cached Clara artifact for key {key}"
                    f" under {store.root}"
                )

        dataset = PredictorDataset.synthesize(
            n_programs=config.n_predictor_programs,
            seed=self.seed,
            workers=workers,
        )
        self.predictor.epochs = config.predictor_epochs
        self.predictor.fit(dataset)
        corpus = build_algorithm_corpus(
            seed=self.seed, n_negatives=config.n_negatives
        )
        self.identifier.fit(corpus)
        self.scaleout.build_training_set(
            n_programs=config.n_scaleout_programs,
            trace_packets=config.scaleout_trace_packets,
            workers=workers,
        )
        self.scaleout.fit()
        self.trained = True
        if store is not None and key is not None:
            store.store(key, self.state_dict())
        return self

    def train_colocation(
        self,
        n_programs: int = 20,
        n_groups: int = 30,
        objective: str = "total_throughput_loss",
    ) -> "Clara":
        """Train the colocation ranker (Section 4.5).  Separate from
        :meth:`train` because colocation analysis is only needed when
        several NFs compete for one NIC."""
        from repro.core.colocation import ColocationAdvisor

        advisor = ColocationAdvisor(
            nic=self.nic, objective=objective, seed=self.seed
        )
        pool, workload = advisor.build_candidate_pool(n_programs=n_programs)
        advisor.fit(pool, workload, n_groups=n_groups)
        self.colocation = advisor
        return self

    def rank_colocations(
        self,
        candidates: Sequence[Tuple["NFCandidate", "NFCandidate"]],
    ) -> List[Tuple["NFCandidate", "NFCandidate"]]:
        """Rank (a, b) NFCandidate pairs friendliest-first; requires
        :meth:`train_colocation` to have run."""
        from repro.core.colocation import NFCandidate

        if self.colocation is None:
            raise RuntimeError("call Clara.train_colocation() first")
        pairs = list(candidates)
        for position, pair in enumerate(pairs):
            if not (
                isinstance(pair, tuple)
                and len(pair) == 2
                and all(isinstance(nf, NFCandidate) for nf in pair)
            ):
                raise TypeError(
                    f"candidates[{position}] is not an (NFCandidate,"
                    f" NFCandidate) pair: {pair!r}"
                )
        if not pairs:
            return []
        order = self.colocation.rank_pairs(pairs)
        return [pairs[i] for i in order]

    # -- artifact persistence -------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """The fitted state of every advisor, picklable, sufficient to
        reproduce bit-identical analyses via :meth:`load_state_dict`."""
        return {
            "seed": self.seed,
            "trained": self.trained,
            "train_config": self.train_config,
            "advisors": {
                "predictor": self.predictor.state_dict(),
                "identifier": self.identifier.state_dict(),
                "scaleout": self.scaleout.state_dict(),
                "placement": self.placement.state_dict(),
                "coalescing": self.coalescing.state_dict(),
                "colocation": (
                    None if self.colocation is None
                    else self.colocation.state_dict()
                ),
            },
        }

    def load_state_dict(self, state: Mapping[str, object]) -> "Clara":
        advisors = state["advisors"]
        self.predictor.load_state_dict(advisors["predictor"])
        self.identifier.load_state_dict(advisors["identifier"])
        self.scaleout.load_state_dict(advisors["scaleout"])
        self.placement.load_state_dict(advisors["placement"])
        self.coalescing.load_state_dict(advisors["coalescing"])
        colocation_state = advisors.get("colocation")
        if colocation_state is None:
            self.colocation = None
        else:
            from repro.core.colocation import ColocationAdvisor

            advisor = ColocationAdvisor(nic=self.nic, seed=self.seed)
            advisor.load_state_dict(colocation_state)
            self.colocation = advisor
        self.seed = int(state.get("seed", self.seed))
        self.train_config = state.get("train_config")
        self.trained = bool(state.get("trained", True))
        return self

    def save(self, path) -> Path:
        """Serialize the trained advisors to ``path`` for explicit
        artifact shipping (``Clara.load(path)`` restores them)."""
        return save_state(self.state_dict(), path)

    @classmethod
    def load(cls, path, nic: Optional[NICModel] = None) -> "Clara":
        """A Clara instance restored from a :meth:`save` artifact."""
        state = load_state(path)
        clara = cls(nic=nic, seed=int(state.get("seed", 0)))
        return clara.load_state_dict(state)

    # -- per-NF analysis ---------------------------------------------------
    def profile_on_host(
        self,
        prepared: PreparedNF,
        spec: WorkloadSpec,
        state: Optional[Mapping[str, object]] = None,
        trace_seed: int = 0,
    ) -> ExecutionProfile:
        """Run the NF on the host against the workload (Section 4.3)."""
        interp = Interpreter(prepared.module, seed=trace_seed)
        if prepared.element is not None:
            install_state(interp, initial_state(prepared.element))
        if state:
            install_state(interp, state)
        return interp.run_trace(generate_trace(spec, seed=trace_seed))

    def analyze(
        self,
        element: ElementDef,
        spec: WorkloadSpec,
        state: Optional[Mapping[str, object]] = None,
        trace_seed: int = 0,
    ) -> AnalysisResult:
        if not self.trained:
            raise RuntimeError("call Clara.train() before analyze()")
        prepared = prepare_element(element)
        profile = self.profile_on_host(prepared, spec, state, trace_seed)
        workload = characterize(spec)

        report = self.predictor.advise(prepared, profile, workload)
        report.workload_name = spec.name

        # Accelerator opportunities (Section 4.1).
        accelerators = self.identifier.advise(prepared, profile, workload)
        for region, (label, blocks) in accelerators.items():
            report.add(
                "accelerator",
                region,
                label,
                detail=f"blocks: {','.join(blocks[:4])}"
                + ("..." if len(blocks) > 4 else ""),
            )
            report.insights[-1].value = {"accel": label, "blocks": blocks}

        # Scale-out suggestion (Section 4.2).
        cores = self.scaleout.advise(
            prepared, profile, workload,
            block_compute=report.predicted_compute,
        )
        report.add("scaleout", "cores", cores, detail="GBDT cost model")

        # State placement (Section 4.3).
        solution = self.placement.advise(prepared, profile, workload)
        for name, region in solution.assignment.items():
            report.add(
                "placement", name, region,
                detail=f"ILP ({solution.method})",
            )

        # Coalescing (Section 4.4).
        plan = self.coalescing.advise(prepared, profile, workload)
        for pack in plan.packs:
            report.add(
                "coalescing",
                "+".join(pack.variables),
                pack.access_bytes,
                detail="K-means access-vector cluster",
            )

        return AnalysisResult(report, prepared, profile, workload)

    # -- turning insights into a port ---------------------------------------
    def port_config(self, analysis: AnalysisResult) -> PortConfig:
        """The "Clara porting" strategy: apply every insight."""
        report = analysis.report
        crc_blocks: List[str] = []
        lpm_blocks: List[str] = []
        crypto_blocks: List[str] = []
        for insight in report.of_type("accelerator"):
            value = insight.value
            # Only helper bodies and natural loops are mechanically
            # substitutable; a label on the residual "main" region is a
            # rewrite *suggestion* for the developer, not a safe
            # automated transformation.
            if not (
                insight.subject.startswith("helper:")
                or insight.subject.startswith("loop:")
            ):
                continue
            if value["accel"] == "crc":
                crc_blocks.extend(value["blocks"])
            elif value["accel"] == "lpm":
                lpm_blocks.extend(value["blocks"])
            elif value["accel"] == "crypto":
                crypto_blocks.extend(value["blocks"])
        packs = []
        from repro.nic.port import CoalescePack

        for insight in report.of_type("coalescing"):
            packs.append(
                CoalescePack(tuple(insight.subject.split("+")), int(insight.value))
            )
        uses_checksum = any(
            api.startswith("checksum_update") for api in analysis.prepared.api_set
        )
        return PortConfig(
            use_checksum_accel=uses_checksum,
            crc_accel_blocks=frozenset(crc_blocks),
            crypto_accel_blocks=frozenset(crypto_blocks),
            lpm_accel_blocks=frozenset(lpm_blocks),
            placement=dict(report.placement),
            packs=packs,
            cores=report.suggested_cores or 60,
        )
