"""The end-to-end Clara pipeline (paper Figure 2).

``Clara.train()`` performs the one-time learning phases (instruction
prediction on synthesized pairs, algorithm-identification corpus,
scale-out cost model); ``Clara.analyze()`` then takes an *unported*
ClickScript element plus a workload spec and produces the full insight
report; ``Clara.port_config()`` turns the insights into a
:class:`~repro.nic.port.PortConfig` — the "Clara porting" strategy the
evaluation benchmarks against naive porting and expert emulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.click.ast import ElementDef
from repro.click.elements import initial_state, install_state
from repro.click.interp import ExecutionProfile, Interpreter
from repro.core.algorithms import AlgorithmIdentifier, build_algorithm_corpus
from repro.core.coalescing import CoalescingAdvisor
from repro.core.insights import InsightReport
from repro.core.placement import PlacementAdvisor
from repro.core.predictor import InstructionPredictor, PredictorDataset
from repro.core.prepare import PreparedNF, prepare_element
from repro.core.scaleout import ScaleoutAdvisor
from repro.nic.machine import NICModel, WorkloadCharacter
from repro.nic.port import PortConfig
from repro.workload import characterize, generate_trace
from repro.workload.spec import WorkloadSpec


@dataclass
class AnalysisResult:
    report: InsightReport
    prepared: PreparedNF
    profile: ExecutionProfile
    workload: WorkloadCharacter

    @property
    def block_freq(self) -> Dict[str, float]:
        packets = max(self.profile.packets, 1)
        return {
            b: c / packets for b, c in self.profile.block_counts.items()
        }


class Clara:
    """Automated SmartNIC offloading insights."""

    def __init__(self, nic: Optional[NICModel] = None, seed: int = 0) -> None:
        self.nic = nic or NICModel()
        self.seed = seed
        self.predictor = InstructionPredictor(seed=seed)
        self.identifier = AlgorithmIdentifier(seed=seed)
        self.scaleout = ScaleoutAdvisor(nic=self.nic, seed=seed)
        self.placement = PlacementAdvisor()
        self.coalescing = CoalescingAdvisor(seed=seed)
        #: trained lazily by :meth:`train_colocation`.
        self.colocation = None
        self.trained = False

    # -- one-time training phases ---------------------------------------
    def train(
        self,
        n_predictor_programs: int = 120,
        n_scaleout_programs: int = 60,
        predictor_epochs: int = 35,
        quick: bool = False,
    ) -> "Clara":
        """Run all learning phases.  ``quick=True`` shrinks everything
        for tests (minutes -> seconds) at some accuracy cost."""
        if quick:
            n_predictor_programs = 12
            n_scaleout_programs = 6
            predictor_epochs = 8
        dataset = PredictorDataset.synthesize(
            n_programs=n_predictor_programs, seed=self.seed
        )
        self.predictor.epochs = predictor_epochs
        self.predictor.fit(dataset)
        corpus = build_algorithm_corpus(
            seed=self.seed, n_negatives=10 if quick else 40
        )
        self.identifier.fit(corpus)
        self.scaleout.build_training_set(
            n_programs=n_scaleout_programs,
            trace_packets=150 if quick else 400,
        )
        self.scaleout.fit()
        self.trained = True
        return self

    def train_colocation(
        self,
        n_programs: int = 20,
        n_groups: int = 30,
        objective: str = "total_throughput_loss",
    ) -> "Clara":
        """Train the colocation ranker (Section 4.5).  Separate from
        :meth:`train` because colocation analysis is only needed when
        several NFs compete for one NIC."""
        from repro.core.colocation import ColocationAdvisor

        advisor = ColocationAdvisor(
            nic=self.nic, objective=objective, seed=self.seed
        )
        pool, workload = advisor.build_candidate_pool(n_programs=n_programs)
        advisor.fit(pool, workload, n_groups=n_groups)
        self.colocation = advisor
        return self

    def rank_colocations(self, candidates) -> list:
        """Rank (a, b) NFCandidate pairs friendliest-first; requires
        :meth:`train_colocation` to have run."""
        if self.colocation is None:
            raise RuntimeError("call Clara.train_colocation() first")
        order = self.colocation.rank_pairs(candidates)
        return [candidates[i] for i in order]

    # -- per-NF analysis ---------------------------------------------------
    def profile_on_host(
        self,
        prepared: PreparedNF,
        spec: WorkloadSpec,
        state: Optional[Mapping[str, object]] = None,
        trace_seed: int = 0,
    ) -> ExecutionProfile:
        """Run the NF on the host against the workload (Section 4.3)."""
        interp = Interpreter(prepared.module, seed=trace_seed)
        if prepared.element is not None:
            install_state(interp, initial_state(prepared.element))
        if state:
            install_state(interp, state)
        return interp.run_trace(generate_trace(spec, seed=trace_seed))

    def analyze(
        self,
        element: ElementDef,
        spec: WorkloadSpec,
        state: Optional[Mapping[str, object]] = None,
        trace_seed: int = 0,
    ) -> AnalysisResult:
        if not self.trained:
            raise RuntimeError("call Clara.train() before analyze()")
        prepared = prepare_element(element)
        profile = self.profile_on_host(prepared, spec, state, trace_seed)
        workload = characterize(spec)

        report = self.predictor.analyze(prepared)
        report.workload_name = spec.name

        # Accelerator opportunities (Section 4.1).
        for region, (label, blocks) in self.identifier.identify(prepared).items():
            report.add(
                "accelerator",
                region,
                label,
                detail=f"blocks: {','.join(blocks[:4])}"
                + ("..." if len(blocks) > 4 else ""),
            )
            report.insights[-1].value = {"accel": label, "blocks": blocks}

        # Scale-out suggestion (Section 4.2).
        cores = self.scaleout.predict_cores(
            prepared, report.predicted_compute, profile, workload
        )
        report.add("scaleout", "cores", cores, detail="GBDT cost model")

        # State placement (Section 4.3).
        solution = self.placement.advise(prepared.module, profile)
        for name, region in solution.assignment.items():
            report.add(
                "placement", name, region,
                detail=f"ILP ({solution.method})",
            )

        # Coalescing (Section 4.4).
        plan = self.coalescing.advise(prepared.module, profile)
        for pack in plan.packs:
            report.add(
                "coalescing",
                "+".join(pack.variables),
                pack.access_bytes,
                detail="K-means access-vector cluster",
            )

        return AnalysisResult(report, prepared, profile, workload)

    # -- turning insights into a port ---------------------------------------
    def port_config(self, analysis: AnalysisResult) -> PortConfig:
        """The "Clara porting" strategy: apply every insight."""
        report = analysis.report
        crc_blocks: List[str] = []
        lpm_blocks: List[str] = []
        crypto_blocks: List[str] = []
        for insight in report.of_type("accelerator"):
            value = insight.value
            # Only helper bodies and natural loops are mechanically
            # substitutable; a label on the residual "main" region is a
            # rewrite *suggestion* for the developer, not a safe
            # automated transformation.
            if not (
                insight.subject.startswith("helper:")
                or insight.subject.startswith("loop:")
            ):
                continue
            if value["accel"] == "crc":
                crc_blocks.extend(value["blocks"])
            elif value["accel"] == "lpm":
                lpm_blocks.extend(value["blocks"])
            elif value["accel"] == "crypto":
                crypto_blocks.extend(value["blocks"])
        packs = []
        from repro.nic.port import CoalescePack

        for insight in report.of_type("coalescing"):
            packs.append(
                CoalescePack(tuple(insight.subject.split("+")), int(insight.value))
            )
        uses_checksum = any(
            api.startswith("checksum_update") for api in analysis.prepared.api_set
        )
        return PortConfig(
            use_checksum_accel=uses_checksum,
            crc_accel_blocks=frozenset(crc_blocks),
            crypto_accel_blocks=frozenset(crypto_blocks),
            lpm_accel_blocks=frozenset(lpm_blocks),
            placement=dict(report.placement),
            packs=packs,
            cores=report.suggested_cores or 60,
        )
