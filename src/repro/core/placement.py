"""NF state placement via ILP (paper Section 4.3).

``min sum_ij L_j * p_ij * f_i`` subject to every structure placed
exactly once and region capacities respected.  Solved with
``scipy.optimize.milp``; a greedy heuristic provides a fallback and a
baseline, and an exhaustive sweep implements the Section 5.8 "expert".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.nic.regions import MemoryHierarchy
from repro.nic.targets import resolve_target
from repro.obs.metrics import observe_latency


def _default_hierarchy() -> MemoryHierarchy:
    """Hierarchy of the default registered target (the NFP)."""
    return resolve_target(None).hierarchy()


@dataclass
class PlacementProblem:
    """Sizes and access frequencies of an NF's stateful structures."""

    names: List[str]
    sizes: List[int]          # bytes
    frequencies: List[float]  # accesses per packet (host-profiled)
    hierarchy: MemoryHierarchy = field(default_factory=_default_hierarchy)

    def __post_init__(self) -> None:
        if not (len(self.names) == len(self.sizes) == len(self.frequencies)):
            raise ValueError("names/sizes/frequencies must align")
        if any(s <= 0 for s in self.sizes):
            raise ValueError("sizes must be positive")
        if any(f < 0 for f in self.frequencies):
            raise ValueError("frequencies must be non-negative")

    @property
    def regions(self):
        return self.hierarchy.placeable


class PlacementError(RuntimeError):
    pass


@dataclass
class PlacementSolution:
    assignment: Dict[str, str]
    expected_cost: float  # frequency-weighted latency cycles per packet
    method: str


def solve_ilp(problem: PlacementProblem) -> PlacementSolution:
    """Exact ILP solution (Section 4.3 formulation)."""
    k = len(problem.names)
    regions = problem.regions
    t = len(regions)
    if k == 0:
        return PlacementSolution({}, 0.0, "ilp")
    # Decision variables p_ij flattened row-major: i * t + j.
    costs = np.array(
        [
            problem.frequencies[i] * regions[j].latency_cycles
            for i in range(k)
            for j in range(t)
        ]
    )
    # Each structure placed exactly once.
    assign_rows = np.zeros((k, k * t))
    for i in range(k):
        assign_rows[i, i * t : (i + 1) * t] = 1.0
    assign_constraint = LinearConstraint(assign_rows, lb=1.0, ub=1.0)
    # Region capacities.
    cap_rows = np.zeros((t, k * t))
    for j in range(t):
        for i in range(k):
            cap_rows[j, i * t + j] = float(problem.sizes[i])
    cap_constraint = LinearConstraint(
        cap_rows,
        lb=0.0,
        ub=[r.capacity_bytes for r in regions],
    )
    result = milp(
        c=costs,
        constraints=[assign_constraint, cap_constraint],
        integrality=np.ones(k * t),
        bounds=Bounds(0.0, 1.0),
    )
    if not result.success:
        raise PlacementError(f"ILP infeasible: {result.message}")
    x = np.round(result.x).reshape(k, t)
    assignment = {
        problem.names[i]: regions[int(np.argmax(x[i]))].name for i in range(k)
    }
    return PlacementSolution(assignment, float(costs @ result.x), "ilp")


def solve_greedy(problem: PlacementProblem) -> PlacementSolution:
    """Hottest-first greedy: place by descending access frequency into
    the fastest region with remaining capacity."""
    remaining = {r.name: r.capacity_bytes for r in problem.regions}
    order = sorted(
        range(len(problem.names)),
        key=lambda i: -problem.frequencies[i] / max(problem.sizes[i], 1),
    )
    assignment: Dict[str, str] = {}
    cost = 0.0
    for i in order:
        placed = False
        for region in problem.regions:  # fastest first
            if remaining[region.name] >= problem.sizes[i]:
                remaining[region.name] -= problem.sizes[i]
                assignment[problem.names[i]] = region.name
                cost += problem.frequencies[i] * region.latency_cycles
                placed = True
                break
        if not placed:
            raise PlacementError(
                f"structure {problem.names[i]} does not fit anywhere"
            )
    return PlacementSolution(assignment, cost, "greedy")


def solve_baseline(problem: PlacementProblem) -> PlacementSolution:
    """The naive port: everything in EMEM (Section 5.5 baseline)."""
    emem = problem.regions[-1]
    assignment = {name: emem.name for name in problem.names}
    cost = sum(f * emem.latency_cycles for f in problem.frequencies)
    return PlacementSolution(assignment, cost, "baseline")


def expert_search(
    problem: PlacementProblem,
    evaluate: Callable[[Dict[str, str]], float],
    max_structures: int = 8,
) -> Tuple[Dict[str, str], float]:
    """Exhaustive per-structure sweep (Section 5.8): try every feasible
    assignment, scored by a caller-supplied objective (typically a full
    NIC simulation, which sees bandwidth effects the ILP's latency-only
    objective cannot).  Returns (best assignment, best score);
    ``evaluate`` is minimized.
    """
    k = len(problem.names)
    if k > max_structures:
        raise PlacementError(
            f"exhaustive search over {k} structures is too large"
        )
    region_names = [r.name for r in problem.regions]
    capacities = {r.name: r.capacity_bytes for r in problem.regions}
    best: Tuple[Optional[Dict[str, str]], float] = (None, float("inf"))
    for combo in itertools.product(region_names, repeat=k):
        used: Dict[str, int] = {}
        feasible = True
        for i, region in enumerate(combo):
            used[region] = used.get(region, 0) + problem.sizes[i]
            if used[region] > capacities[region]:
                feasible = False
                break
        if not feasible:
            continue
        assignment = dict(zip(problem.names, combo))
        score = evaluate(assignment)
        if score < best[1]:
            best = (assignment, score)
    if best[0] is None:
        raise PlacementError("no feasible assignment found")
    return best  # type: ignore[return-value]


class PlacementAdvisor:
    """Clara's placement insight generator."""

    def __init__(self, hierarchy: Optional[MemoryHierarchy] = None) -> None:
        self.hierarchy = hierarchy or _default_hierarchy()

    def problem_from_profile(
        self, module, profile
    ) -> PlacementProblem:
        """Build the ILP inputs from the lowered module's globals and a
        host execution profile."""
        names, sizes, freqs = [], [], []
        for name, g in module.globals.items():
            names.append(name)
            sizes.append(g.size_bytes)
            freqs.append(profile.access_frequency(name))
        return PlacementProblem(names, sizes, freqs, self.hierarchy)

    def advise(self, prepared, profile, workload=None) -> PlacementSolution:
        """Uniform advisor entry point.  ``prepared`` may be a
        :class:`~repro.core.prepare.PreparedNF` or a bare lowered
        module (the historical calling convention)."""
        module = getattr(prepared, "module", prepared)
        problem = self.problem_from_profile(module, profile)
        if not problem.names:
            return PlacementSolution({}, 0.0, "ilp")
        try:
            with observe_latency("placement_solve_latency_seconds",
                                 method="ilp"):
                return solve_ilp(problem)
        except PlacementError:
            with observe_latency("placement_solve_latency_seconds",
                                 method="greedy"):
                return solve_greedy(problem)

    # -- uniform advisor protocol --------------------------------------
    def fit(self, *args, **kwargs) -> "PlacementAdvisor":
        """Placement solves an ILP per NF; there is nothing to learn."""
        return self

    def state_dict(self) -> Dict[str, object]:
        return {"hierarchy": self.hierarchy}

    def load_state_dict(self, state: Dict[str, object]) -> "PlacementAdvisor":
        self.hierarchy = state["hierarchy"]
        return self
