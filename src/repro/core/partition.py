"""Partial offloading analysis (the paper's Section 6 future work).

"A partial offloading scenario might split the NF program between host
CPUs and SmartNICs.  In order to handle such scenarios, Clara would
also need to reason about the communication between SmartNICs and the
host."

This extension implements a first-order version of that reasoning.  A
*partition* designates a subset of handler basic blocks as host-side;
any packet whose execution path touches a host block is punted across
PCIe (paying a fixed crossing cost plus host processing), while packets
that stay on fast NIC-only paths complete on the SmartNIC.  The advisor
searches candidate partitions built from the host-profiled path
signatures (which the interpreter records per packet) and reports the
split with the best predicted throughput — including the two trivial
partitions, full offload and no offload, which it falls back to when
splitting does not pay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.click.interp import ExecutionProfile
from repro.core.prepare import PreparedNF
from repro.nic.compiler import compile_module
from repro.nic.machine import NICModel, WorkloadCharacter
from repro.nic.port import PortConfig

#: One PCIe round trip (DMA descriptor + doorbell + completion), in NIC
#: cycles at 1.2GHz — about 1.5us, the commonly cited ballpark.
PCIE_CROSSING_CYCLES = 1800.0

#: Host processing-speed advantage over one wimpy NIC core: a 3.4GHz
#: Xeon core against a 1.2GHz micro-engine, minus the host framework
#: overhead the paper's Section 1 motivates offloading away.
HOST_SPEEDUP = 2.2

#: Host cores the deployment is willing to burn on punted packets (the
#: whole point of offloading is freeing these, so keep it small).
HOST_CORES = 2


@dataclass
class Partition:
    """One candidate host/NIC split."""

    host_blocks: FrozenSet[str]
    punt_fraction: float          # share of packets crossing to the host
    nic_cycles_per_pkt: float     # NIC work for the average packet
    host_cycles_per_pkt: float    # host work per *punted* packet
    throughput_mpps: float
    description: str = ""

    @property
    def is_full_offload(self) -> bool:
        return not self.host_blocks

    @property
    def is_no_offload(self) -> bool:
        return self.punt_fraction >= 1.0 and bool(self.host_blocks)


class PartitionAdvisor:
    """Suggests host/NIC partitions for an NF (extension of Clara)."""

    def __init__(self, nic: Optional[NICModel] = None, cores: int = 20) -> None:
        self.nic = nic or NICModel()
        self.cores = cores

    # -- cost building blocks -------------------------------------------
    def _block_cycles(
        self,
        prepared: PreparedNF,
        workload: WorkloadCharacter,
        config: Optional[PortConfig] = None,
    ) -> Dict[str, float]:
        """Approximate per-execution cycles of each handler block on
        the NIC (issue + uninflated memory latencies + API costs)."""
        from repro.nic.libnfp import api_cost, sw_checksum_cycles

        program = compile_module(prepared.module, config or PortConfig())
        out: Dict[str, float] = {}
        for block in program.handler.blocks:
            cycles = 0.0
            for instr in block.instructions:
                cycles += instr.issue_cycles
                if instr.is_memory:
                    region = instr.region or "emem"
                    if region.startswith("state:"):
                        hit = workload.emem_cache_hit_rate
                        cycles += hit * 90.0 + (1.0 - hit) * 300.0
                    elif region == "ctm":
                        cycles += 55.0
                if instr.opcode == "call" and instr.srcs:
                    callee = instr.srcs[0]
                    if callee == "sw_checksum":
                        cycles += sw_checksum_cycles(workload.packet_bytes)
                    else:
                        cost = api_cost(callee)
                        cycles += cost.cycles + 200.0 * sum(
                            c for _k, _s, c in cost.accesses
                        )
            out[block.name] = cycles
        return out

    def evaluate(
        self,
        host_blocks: FrozenSet[str],
        prepared: PreparedNF,
        profile: ExecutionProfile,
        workload: WorkloadCharacter,
        block_cycles: Optional[Dict[str, float]] = None,
    ) -> Partition:
        """Predict the throughput of one candidate partition."""
        if block_cycles is None:
            block_cycles = self._block_cycles(prepared, workload)
        packets = max(profile.packets, 1)

        # Loop blocks execute many times per packet; estimate each
        # block's per-packet trip count among the packets that reach it
        # (total executions / packets whose path contains the block).
        packets_with: Dict[str, int] = {}
        for path, count in profile.path_counts.items():
            for name in path:
                packets_with[name] = packets_with.get(name, 0) + count
        trips = {
            name: profile.block_counts.get(name, 0) / max(reached, 1)
            for name, reached in packets_with.items()
        }

        punted = 0
        nic_cycles_total = 0.0
        host_cycles_total = 0.0
        for path, count in profile.path_counts.items():
            path_cost = sum(
                block_cycles.get(b, 0.0) * trips.get(b, 1.0) for b in path
            )
            if path & host_blocks:
                punted += count
                # The NIC still runs the pre-punt share of the path; we
                # charge half the path as NIC-side classification work,
                # the rest on the host.
                nic_cycles_total += count * (0.5 * path_cost)
                host_cycles_total += count * (0.5 * path_cost / HOST_SPEEDUP)
            else:
                nic_cycles_total += count * path_cost
        punt_fraction = punted / packets
        nic_per_pkt = nic_cycles_total / packets + 120.0
        nic_per_pkt += punt_fraction * PCIE_CROSSING_CYCLES
        host_per_punted = (
            host_cycles_total / punted if punted else 0.0
        )

        # Throughput: NIC-side concurrency/line-rate bound, then the
        # host-side capacity bound on the punted share.
        line = self.nic.line_rate_pps(workload.packet_bytes)
        nic_bound = min(
            self.cores * self.nic.threads_per_core * self.nic.freq_hz
            / max(nic_per_pkt, 1.0),
            line,
        )
        if punt_fraction > 0 and host_per_punted > 0:
            host_capacity = (
                HOST_CORES * 3.4e9 / host_per_punted
            ) / punt_fraction
            throughput = min(nic_bound, host_capacity)
        else:
            throughput = nic_bound
        return Partition(
            host_blocks=host_blocks,
            punt_fraction=punt_fraction,
            nic_cycles_per_pkt=nic_per_pkt,
            host_cycles_per_pkt=host_per_punted,
            throughput_mpps=throughput / 1e6,
        )

    # -- search ----------------------------------------------------------
    def candidate_block_sets(
        self, prepared: PreparedNF, profile: ExecutionProfile,
        max_candidates: int = 12,
    ) -> List[FrozenSet[str]]:
        """Candidate host-side block sets: rare, expensive paths make
        the best punt targets, so candidates are built from blocks that
        appear only on infrequent paths (e.g. flow-setup slow paths)."""
        packets = max(profile.packets, 1)
        # Block rarity: share of packets whose path includes the block.
        share: Dict[str, float] = {}
        for path, count in profile.path_counts.items():
            for name in path:
                share[name] = share.get(name, 0.0) + count / packets
        candidates: List[FrozenSet[str]] = [frozenset()]
        # Punt everything (no offload) as a baseline candidate.
        all_blocks = frozenset(b.name for b in prepared.blocks)
        candidates.append(all_blocks)
        for threshold in (0.02, 0.05, 0.1, 0.25, 0.5):
            rare = frozenset(
                name for name, s in share.items() if s <= threshold
            )
            if rare and rare not in candidates and rare != all_blocks:
                candidates.append(rare)
        return candidates[:max_candidates]

    def advise(
        self,
        prepared: PreparedNF,
        profile: ExecutionProfile,
        workload: WorkloadCharacter,
    ) -> Tuple[Partition, List[Partition]]:
        """Return (best partition, all evaluated candidates)."""
        block_cycles = self._block_cycles(prepared, workload)
        evaluated = [
            self.evaluate(host_blocks, prepared, profile, workload, block_cycles)
            for host_blocks in self.candidate_block_sets(prepared, profile)
        ]
        best = max(evaluated, key=lambda p: p.throughput_mpps)
        return best, evaluated
