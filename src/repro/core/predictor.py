"""Cross-platform performance prediction (paper Section 3, Figure 3).

Predicts, for an *unported* NF, the per-block number of compute
instructions the closed-source NIC compiler would emit (LSTM+FC over
vocabulary-compacted instruction sequences) and counts stateful memory
accesses directly from the IR (which the paper reports is already
96.4%-100% accurate).  Framework APIs are profiled through reverse
porting instead of prediction.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.click.elements import all_elements
from repro.core.artifacts import (
    ArtifactCache,
    PredictionCache,
    _nic_fingerprint,
    sequence_key,
)
from repro.core.insights import InsightReport
from repro.errors import NotTrainedError
from repro.core.parallel import synthesize_predictor_rows
from repro.core.prepare import PreparedNF
from repro.ml.distill import ConfidenceGatedGBDT
from repro.ml.encoding import (
    InstructionVocabulary,
    encode_block_ids,
    encode_blocks,
    histogram_features,
)
from repro.ml.lstm import LSTMRegressor
from repro.ml.metrics import wmape
from repro.nic.compiler import compile_module
from repro.nic.isa import NICProgram
from repro.nic.libnfp import api_cost
from repro.nic.port import PortConfig
from repro.obs.metrics import get_metrics, observe_latency
from repro.synthesis.stats import extract_stats

#: Sequence length cap for block encodings (longer blocks truncate).
MAX_BLOCK_LEN = 112

#: Serving modes: ``lstm`` always runs the sequence model;
#: ``distilled`` always serves the distilled GBDT student; ``auto``
#: serves the student only where its error model is confident and
#: falls back to the LSTM elsewhere.
PREDICTOR_MODES = ("lstm", "distilled", "auto")


def iter_block_samples(prepared: PreparedNF, program: NICProgram):
    """Yield ``(tokens, compute_count, group)`` for every handler block
    of a prepared NF with its compiled ground-truth instruction count —
    the unit of dataset construction, shared by the serial path and the
    parallel synthesis workers."""
    for block_asm in program.handler.blocks:
        tokens = prepared.tokens.get(block_asm.name)
        if tokens is None or not tokens:
            continue
        yield tokens, float(block_asm.n_compute), prepared.name


@dataclass
class PredictorDataset:
    """(IR token sequence -> NIC instruction count) pairs, per block.

    ``groups`` names the source program of each sample so evaluation
    can split by program (the paper trains on synthesized programs and
    tests on real NFs).
    """

    sequences: List[List[str]] = field(default_factory=list)
    targets: List[float] = field(default_factory=list)
    groups: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sequences)

    def extend_from_prepared(
        self, prepared: PreparedNF, program: Optional[NICProgram] = None
    ) -> None:
        """Add every handler block of a prepared NF with its compiled
        ground-truth compute-instruction count."""
        if program is None:
            program = compile_module(prepared.module, PortConfig())
        for tokens, target, group in iter_block_samples(prepared, program):
            self.sequences.append(tokens)
            self.targets.append(target)
            self.groups.append(group)

    @classmethod
    def synthesize(
        cls,
        n_programs: int = 80,
        seed: int = 0,
        corpus=None,
        workers: int = 1,
        target: Optional[str] = None,
    ) -> "PredictorDataset":
        """The data-synthesis pipeline of Section 3.2: generate guided
        Click programs, compile each with both toolchains, and pair
        per-block IR sequences with NIC instruction counts.

        Each program is generated from a child seed of ``(seed,
        index)``, so the dataset is identical for every ``workers``
        count (see :mod:`repro.core.parallel`).
        """
        corpus = corpus if corpus is not None else all_elements()
        stats = extract_stats(corpus)
        dataset = cls()
        rows = synthesize_predictor_rows(
            stats, n_programs=n_programs, seed=seed, workers=workers,
            target=target,
        )
        for tokens, target, group in rows:
            dataset.sequences.append(tokens)
            dataset.targets.append(target)
            dataset.groups.append(group)
        return dataset

    def split_by_group(
        self, test_fraction: float = 0.2, seed: int = 0
    ) -> Tuple["PredictorDataset", "PredictorDataset"]:
        rng = np.random.default_rng(seed)
        names = sorted(set(self.groups))
        rng.shuffle(names)
        n_test = max(1, int(len(names) * test_fraction))
        test_names = set(names[:n_test])
        train, test = PredictorDataset(), PredictorDataset()
        for seq, target, group in zip(self.sequences, self.targets, self.groups):
            bucket = test if group in test_names else train
            bucket.sequences.append(seq)
            bucket.targets.append(target)
            bucket.groups.append(group)
        return train, test


class InstructionPredictor:
    """The LSTM+FC instruction predictor (Figure 6)."""

    def __init__(
        self,
        hidden_dim: int = 40,
        max_len: int = MAX_BLOCK_LEN,
        epochs: int = 35,
        seed: int = 0,
    ) -> None:
        self.max_len = max_len
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.seed = seed
        self.vocab = InstructionVocabulary()
        self.model: Optional[LSTMRegressor] = None
        #: distilled GBDT fast path (``None`` until :meth:`distill`);
        #: part of :meth:`state_dict` — it is learned state.
        self.distilled: Optional[ConfidenceGatedGBDT] = None
        self._predictor_mode: str = "lstm"
        self._prediction_cache: Optional[PredictionCache] = None
        self._cache_store: Optional[ArtifactCache] = None
        self._cache_nic: Any = None
        #: optional serving-time indirection: when set, every
        #: :meth:`predict_sequences` call routes through it instead of
        #: running the model directly (the serve broker installs one to
        #: batch inference across concurrent requests).  Not part of
        #: :meth:`state_dict` — it is deployment wiring, not learning.
        self._infer_hook: Optional[
            Callable[[Sequence[Sequence[str]]], np.ndarray]
        ] = None

    def fit(self, dataset: PredictorDataset) -> "InstructionPredictor":
        self.vocab.fit(dataset.sequences)
        X, mask = encode_blocks(self.vocab, dataset.sequences, self.max_len)
        y = np.asarray(dataset.targets)
        self.model = LSTMRegressor(
            input_dim=self.vocab.size,
            hidden_dim=self.hidden_dim,
            seed=self.seed,
        )
        self.model.fit(X, mask, y, epochs=self.epochs, seed=self.seed)
        return self

    def distill(self, dataset: PredictorDataset) -> "InstructionPredictor":
        """Train the GBDT fast path to imitate the fitted LSTM over
        ``dataset`` (typically the synthesis corpus the LSTM itself was
        trained on).  The teacher signal is the LSTM's *served outputs*
        — chunked long blocks included — so the student approximates
        exactly the function :meth:`predict_direct` serves."""
        if self.model is None:
            raise NotTrainedError("fit the predictor before distilling")
        sequences = [list(seq) for seq in dataset.sequences]
        teacher = self._predict_uncached(sequences, mode="lstm")
        features = histogram_features(self.vocab, sequences)
        self.distilled = ConfidenceGatedGBDT.distill(
            features, np.log1p(np.maximum(teacher, 0.0)), seed=self.seed
        )
        return self

    # -- serving mode and prediction cache -----------------------------
    @property
    def predictor_mode(self) -> str:
        return self._predictor_mode

    @predictor_mode.setter
    def predictor_mode(self, value: str) -> None:
        if value not in PREDICTOR_MODES:
            raise ValueError(
                f"predictor_mode must be one of {PREDICTOR_MODES}, "
                f"got {value!r}"
            )
        if value == self._predictor_mode:
            return
        self._predictor_mode = value
        if self._prediction_cache is not None:
            # The mode is part of the cache namespace — re-attach so
            # stale entries from the previous mode cannot be served.
            self.attach_prediction_cache(
                store=self._cache_store, nic=self._cache_nic
            )

    def model_fingerprint(self) -> str:
        """Content hash of the fitted weights + vocabulary + encoding
        geometry: two predictors with identical fingerprints produce
        identical predictions."""
        if self.model is None:
            raise NotTrainedError("predictor is not fitted")
        digest = hashlib.sha256()
        digest.update(
            json.dumps(
                {
                    "hidden_dim": self.hidden_dim,
                    "max_len": self.max_len,
                    "vocab": self.vocab.tokens(),
                },
                sort_keys=True,
            ).encode("utf-8")
        )
        for name in sorted(self.model.params):
            digest.update(name.encode("utf-8"))
            digest.update(np.ascontiguousarray(self.model.params[name]).tobytes())
        return digest.hexdigest()[:24]

    def prediction_namespace(self, nic: Any = None) -> str:
        """Cache namespace: model fingerprint x predictor mode (plus
        the distilled model's fingerprint when it can serve) x target
        fingerprint.  Any change to what a token sequence would predict
        lands in a fresh namespace."""
        payload: dict = {
            "model": self.model_fingerprint(),
            "mode": self.predictor_mode,
            "nic": _nic_fingerprint(nic),
        }
        if self.predictor_mode != "lstm" and self.distilled is not None:
            payload["distilled"] = self.distilled.fingerprint()
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]

    def attach_prediction_cache(
        self,
        store: Optional[ArtifactCache] = None,
        nic: Any = None,
    ) -> PredictionCache:
        """Enable the content-addressed prediction cache (consulted by
        :meth:`predict_direct` before any encoding happens).  Pass
        ``store`` to page the namespace in from disk and allow
        :meth:`~repro.core.artifacts.PredictionCache.flush`; ``nic``
        scopes the namespace to a target."""
        self._cache_store = store
        self._cache_nic = nic
        self._prediction_cache = PredictionCache(
            self.prediction_namespace(nic), store=store
        )
        return self._prediction_cache

    def detach_prediction_cache(self) -> None:
        self._prediction_cache = None
        self._cache_store = None
        self._cache_nic = None

    @property
    def prediction_cache(self) -> Optional[PredictionCache]:
        return self._prediction_cache

    # -- uniform advisor protocol --------------------------------------
    def advise(
        self, prepared: PreparedNF, profile=None, workload=None
    ) -> InsightReport:
        """Uniform advisor entry point; prediction is static, so the
        profile and workload are unused."""
        return self.analyze(prepared)

    def state_dict(self) -> dict:
        return {
            "hidden_dim": self.hidden_dim,
            "max_len": self.max_len,
            "epochs": self.epochs,
            "seed": self.seed,
            "vocab": self.vocab,
            "model": self.model,
            "distilled": self.distilled,
        }

    def load_state_dict(self, state: dict) -> "InstructionPredictor":
        self.hidden_dim = int(state["hidden_dim"])
        self.max_len = int(state["max_len"])
        self.epochs = int(state["epochs"])
        self.seed = int(state["seed"])
        self.vocab = state["vocab"]
        self.model = state["model"]
        self.distilled = state.get("distilled")
        return self

    def set_infer_hook(
        self,
        hook: Optional[Callable[[Sequence[Sequence[str]]], np.ndarray]],
    ) -> Optional[Callable[[Sequence[Sequence[str]]], np.ndarray]]:
        """Install (or clear, with ``None``) the serving-time inference
        hook and return the previous one.  The hook receives the exact
        ``sequences`` argument of a :meth:`predict_sequences` call and
        must return the matching prediction array; it must *not*
        re-enter :meth:`predict_sequences` — use
        :meth:`predict_direct`, the unhooked path."""
        previous = self._infer_hook
        self._infer_hook = hook
        return previous

    def predict_sequences(self, sequences: Sequence[Sequence[str]]) -> np.ndarray:
        """Predict per-sequence counts (the hot serving entry point).

        When an inference hook is installed (``clara serve``'s batching
        broker), the call is delegated to it so concurrent requests
        share one model invocation; otherwise this is
        :meth:`predict_direct`.
        """
        if self._infer_hook is not None:
            return self._infer_hook(sequences)
        return self.predict_direct(sequences)

    def predict_direct(self, sequences: Sequence[Sequence[str]]) -> np.ndarray:
        """Run the model on ``sequences`` in this thread, bypassing any
        installed hook — re-entrant and thread-safe (the fitted weights
        are only read), so a broker can batch many callers into one
        call here.  The input is materialized exactly once, so
        single-pass iterables (generators) are safe.  When a prediction
        cache is attached, each sequence's content hash is consulted
        before any encoding happens and only misses reach the model;
        the kernel is batch-composition-invariant, so cached and
        uncached predictions are bit-identical."""
        if self.model is None:
            raise NotTrainedError("predictor is not fitted")
        with observe_latency("predict_latency_seconds"):
            seqs = [list(seq) for seq in sequences]
            out = np.zeros(len(seqs))
            cache = self._prediction_cache
            if cache is None:
                missing = list(range(len(seqs)))
                keys: List[str] = []
            else:
                keys = [sequence_key(seq) for seq in seqs]
                cached = cache.lookup(keys)
                missing = []
                for i, value in enumerate(cached):
                    if value is None:
                        missing.append(i)
                    else:
                        out[i] = value
            if missing:
                values = self._predict_uncached([seqs[i] for i in missing])
                for i, value in zip(missing, values):
                    out[i] = value
                if cache is not None:
                    cache.insert(
                        [keys[i] for i in missing],
                        [float(v) for v in values],
                    )
            return out

    def _predict_uncached(
        self,
        seqs: List[List[str]],
        mode: Optional[str] = None,
    ) -> np.ndarray:
        """Model inference for already-materialized sequences (the
        cache-miss path).  Blocks longer than ``max_len`` are chunked
        and their chunk predictions summed — instruction selection is
        local, so a long straight-line block compiles to roughly the
        concatenation of its windows.  ``mode`` overrides the serving
        mode (distillation uses ``"lstm"`` to get a pure teacher
        signal)."""
        chunks: List[List[str]] = []
        owners: List[int] = []
        for i, seq in enumerate(seqs):
            if not seq:
                chunks.append(seq)
                owners.append(i)
                continue
            for start in range(0, len(seq), self.max_len):
                chunks.append(seq[start : start + self.max_len])
                owners.append(i)
        mode = mode or self.predictor_mode
        if mode == "lstm":
            chunk_preds = self._lstm_chunk_predictions(chunks)
        else:
            if self.distilled is None:
                raise NotTrainedError(
                    f"predictor_mode={mode!r} requires a distilled model"
                    " (call distill() or train via Clara.train)"
                )
            features = histogram_features(self.vocab, chunks)
            chunk_preds = self.distilled.predict_counts(features)
            if mode == "auto":
                fallback = np.flatnonzero(~self.distilled.confident(features))
                if len(fallback):
                    chunk_preds[fallback] = self._lstm_chunk_predictions(
                        [chunks[j] for j in fallback]
                    )
                get_metrics().counter(
                    "predictor_distilled_served", result="distilled"
                ).inc(len(chunks) - len(fallback))
                get_metrics().counter(
                    "predictor_distilled_served", result="lstm_fallback"
                ).inc(len(fallback))
        out = np.zeros(len(seqs))
        for owner, value in zip(owners, chunk_preds):
            out[owner] += value
        return out

    def _lstm_chunk_predictions(self, chunks: List[List[str]]) -> np.ndarray:
        """The batched LSTM kernel over encoded chunks.  Integer-id
        encoding feeds :meth:`~repro.ml.lstm.LSTMRegressor.predict_ids`
        — bit-identical to the one-hot matmul without materializing the
        dense ``[n, max_len, vocab]`` tensor."""
        ids, mask = encode_block_ids(self.vocab, chunks, self.max_len)
        return self.model.predict_ids(ids, mask)

    def evaluate(self, dataset: PredictorDataset) -> float:
        """WMAPE against ground truth (the paper's Section 5.2 metric)."""
        pred = self.predict_sequences(dataset.sequences)
        return wmape(np.asarray(dataset.targets), pred)

    # -- Figure 3: PREDICTOFFLOADINGPERF ------------------------------
    def analyze(self, prepared: PreparedNF) -> InsightReport:
        """Generate the prediction-class insights for an unported NF."""
        report = InsightReport(nf_name=prepared.name)
        sequences = prepared.block_token_sequences()
        predictions = self.predict_sequences(sequences)
        for block, pred in zip(prepared.blocks, predictions):
            report.add(
                "compute",
                block.name,
                float(round(float(pred), 2)),
                detail="LSTM-predicted NIC compute instructions",
            )
            # Memory accesses are counted, not learned (Section 3.2).
            report.add(
                "memory",
                block.name,
                block.n_mem_stateful,
                detail="stateful loads/stores counted from IR",
            )
        for api in prepared.api_set:
            cost = api_cost(api)
            n_accesses = sum(count for _k, _s, count in cost.accesses)
            report.add(
                "api",
                api,
                {"cycles": cost.cycles, "mem_accesses": n_accesses},
                detail="reverse-ported profile (NIC library semantics)",
            )
        return report


def histogram_dataset(
    vocab: InstructionVocabulary, dataset: PredictorDataset
) -> Tuple[np.ndarray, np.ndarray]:
    """Bag-of-words features for the DNN/AutoML/kNN baselines."""
    X = histogram_features(vocab, dataset.sequences)
    return X, np.asarray(dataset.targets)
