"""Clara: automated SmartNIC offloading insights (the paper's system).

The package mirrors the paper's structure:

* :mod:`repro.core.prepare` — program preparation (Section 3.1);
* :mod:`repro.core.predictor` — cross-platform instruction/memory
  prediction with the LSTM+FC model, data synthesis, and reverse-ported
  API profiles (Sections 3.2-3.3);
* :mod:`repro.core.algorithms` — accelerator algorithm identification
  with SPE features + SVM (Section 4.1);
* :mod:`repro.core.scaleout` — multicore scale-out factor analysis
  with a GBDT cost model (Section 4.2);
* :mod:`repro.core.placement` — NF state placement via ILP
  (Section 4.3);
* :mod:`repro.core.coalescing` — memory access coalescing via K-means
  over access vectors (Section 4.4);
* :mod:`repro.core.colocation` — pairwise colocation ranking with
  LambdaMART (Section 4.5);
* :mod:`repro.core.pipeline` — the end-to-end ``Clara`` facade that
  produces an :class:`~repro.core.insights.InsightReport` and a
  :class:`~repro.nic.port.PortConfig` for an unported element.

Two infrastructure modules support the learning phases:

* :mod:`repro.core.parallel` — deterministic multiprocessing fan-out
  for dataset synthesis (parallel == serial, per-program seeding);
* :mod:`repro.core.artifacts` — :class:`TrainConfig` plus the
  content-addressed on-disk cache of fitted advisor state, so repeated
  ``Clara.train()`` calls load in sub-second time.  All advisors share
  the :class:`~repro.core.advisor.Advisor` protocol (``fit`` /
  ``advise`` / ``state_dict`` / ``load_state_dict``).
"""

from repro.errors import (
    ArtifactCacheMiss,
    ArtifactError,
    ClaraError,
    InvalidWorkloadError,
    NotTrainedError,
    UnknownElementError,
)
from repro.core.advisor import Advisor
from repro.core.artifacts import (
    ArtifactCache,
    TrainConfig,
    train_cache_key,
)
from repro.core.insights import (
    INSIGHT_REPORT_SCHEMA,
    Insight,
    InsightReport,
)
from repro.core.parallel import parallel_map
from repro.core.prepare import PreparedNF, prepare_element, prepare_module
from repro.core.predictor import InstructionPredictor, PredictorDataset
from repro.core.algorithms import AlgorithmIdentifier, build_algorithm_corpus
from repro.core.scaleout import ScaleoutAdvisor
from repro.core.placement import PlacementAdvisor, PlacementProblem
from repro.core.coalescing import CoalescingAdvisor
from repro.core.colocation import ColocationAdvisor, ranking_to_dict
from repro.core.partition import Partition, PartitionAdvisor
from repro.core.explain import (
    gbdt_feature_importance,
    render_explanations,
    svm_top_patterns,
)
from repro.core.pipeline import AnalysisResult, Clara

__all__ = [
    "Advisor",
    "AnalysisResult",
    "ArtifactCache",
    "ArtifactCacheMiss",
    "ArtifactError",
    "ClaraError",
    "InvalidWorkloadError",
    "NotTrainedError",
    "UnknownElementError",
    "TrainConfig",
    "train_cache_key",
    "parallel_map",
    "INSIGHT_REPORT_SCHEMA",
    "Insight",
    "InsightReport",
    "ranking_to_dict",
    "PreparedNF",
    "prepare_element",
    "prepare_module",
    "InstructionPredictor",
    "PredictorDataset",
    "AlgorithmIdentifier",
    "build_algorithm_corpus",
    "ScaleoutAdvisor",
    "PlacementAdvisor",
    "PlacementProblem",
    "CoalescingAdvisor",
    "ColocationAdvisor",
    "Partition",
    "PartitionAdvisor",
    "gbdt_feature_importance",
    "render_explanations",
    "svm_top_patterns",
    "Clara",
]
