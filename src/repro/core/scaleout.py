"""Multicore scale-out factor analysis (paper Section 4.2).

TVM-style: synthesize training programs covering a range of arithmetic
intensities, measure them on the (simulated) NIC at every core count
under different workloads, and train a GBDT cost model that predicts
the optimal core count for a new (NF, workload) pair from statically
predictable features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.click.elements import all_elements
from repro.click.interp import ExecutionProfile
from repro.core.prepare import PreparedNF
from repro.errors import NotTrainedError
from repro.ml.gbdt import GBDTRegressor
from repro.nic.compiler import compile_module
from repro.nic.machine import NICModel, WorkloadCharacter
from repro.nic.port import PortConfig
from repro.synthesis.stats import extract_stats
from repro.workload import STANDARD_WORKLOADS
from repro.workload.spec import WorkloadSpec


def scaleout_features(
    prepared: PreparedNF,
    block_compute: Mapping[str, float],
    profile: ExecutionProfile,
    workload: WorkloadCharacter,
    nic: Optional[NICModel] = None,
) -> np.ndarray:
    """Feature vector for the cost model.

    Built only from what Clara has *before* porting: per-block compute
    counts (LSTM-predicted for a new NF, measured for training
    programs), host-profiled block frequencies, counted stateful
    accesses, and the workload character.  The estimates are grounded
    in ``nic``'s target constants (clock, threads, line rate, memory
    latencies), so NFP and DPU models see different feature scales.
    """
    packets = max(profile.packets, 1)
    compute_per_pkt = 0.0
    stateful_per_pkt = 0.0
    packet_mem_per_pkt = 0.0
    for block in prepared.blocks:
        freq = profile.block_counts.get(block.name, 0) / packets
        compute_per_pkt += freq * float(block_compute.get(block.name, 0.0))
        stateful_per_pkt += freq * block.n_mem_stateful
        packet_mem_per_pkt += freq * block.n_mem_packet
    api_per_pkt = sum(profile.api_counts.values()) / packets

    # API costs come from the reverse-ported profiles (Section 3.3):
    # this is what makes software checksums (2000+ cycles behind a
    # single call instruction) visible to the cost model.
    from repro.nic.libnfp import api_cost, sw_checksum_cycles

    api_issue = 0.0
    api_accesses = 0.0
    for api, count in profile.api_counts.items():
        per_pkt = count / packets
        if api.startswith("checksum_update"):
            api_issue += per_pkt * sw_checksum_cycles(workload.packet_bytes)
            continue
        cost = api_cost(api)
        api_issue += per_pkt * cost.cycles
        api_accesses += per_pkt * sum(c for _k, _s, c in cost.accesses)

    nic = nic or NICModel()
    from repro.nic.regions import REGION_EMEM, REGION_EMEM_CACHE

    intensity = compute_per_pkt / max(stateful_per_pkt + api_accesses, 0.25)
    hit = workload.emem_cache_hit_rate
    emem_latency = (
        hit * float(nic.hierarchy.latency(REGION_EMEM_CACHE))
        + (1.0 - hit) * float(nic.hierarchy.latency(REGION_EMEM))
    )
    issue_est = (
        nic.target.ingress_cycles + nic.target.egress_cycles
        + compute_per_pkt + packet_mem_per_pkt + api_issue
    )
    mem_est = (
        (stateful_per_pkt + api_accesses) * emem_latency
        + nic.target.host_dma_cycles
    )
    # Little's-law knee estimates: cores for the concurrency bound to
    # reach line rate, and for the single-issue compute bound to do so.
    line_rate_pps = nic.line_rate_gbps * 1e9 / 8.0 / (workload.packet_bytes + 20.0)
    n_concurrency = line_rate_pps * (issue_est + mem_est) / (
        float(nic.threads_per_core) * nic.freq_hz
    )
    n_compute = line_rate_pps * issue_est / nic.freq_hz
    est_cores = max(n_concurrency, n_compute)
    return np.array(
        [
            compute_per_pkt,
            stateful_per_pkt + api_accesses,
            packet_mem_per_pkt,
            api_per_pkt,
            intensity,
            workload.emem_cache_hit_rate,
            float(workload.packet_bytes),
            issue_est,
            mem_est,
            est_cores,
        ]
    )


@dataclass
class ScaleoutSample:
    features: np.ndarray
    optimal_cores: int
    program_name: str
    workload_name: str


class ScaleoutAdvisor:
    """GBDT regression from NF/workload features to the best core count."""

    def __init__(
        self,
        nic: Optional[NICModel] = None,
        seed: int = 0,
        model: Optional[object] = None,
    ) -> None:
        self.nic = nic or NICModel()
        self.seed = seed
        self.model = model or GBDTRegressor(
            n_rounds=120, max_depth=4, learning_rate=0.1, seed=seed
        )
        self.samples: List[ScaleoutSample] = []

    # -- training-set construction -------------------------------------
    def measure_optimal(
        self,
        prepared: PreparedNF,
        profile: ExecutionProfile,
        workload: WorkloadCharacter,
        config: Optional[PortConfig] = None,
    ) -> int:
        """Ground truth: exhaustive core sweep on the NIC."""
        program = compile_module(
            prepared.module, config or PortConfig(), target=self.nic.target
        )
        packets = max(profile.packets, 1)
        freq = {b: c / packets for b, c in profile.block_counts.items()}
        sweep = self.nic.sweep_cores(program, freq, workload)
        return self.nic.optimal_cores(sweep)

    def build_training_set(
        self,
        n_programs: int = 40,
        workloads: Sequence[WorkloadSpec] = STANDARD_WORKLOADS,
        trace_packets: int = 400,
        seed: Optional[int] = None,
        workers: int = 1,
    ) -> List[ScaleoutSample]:
        """Synthesize programs spanning arithmetic intensities, deploy
        each on the simulated NIC under each workload, and record the
        measured optimum (the paper's automated training pipeline).

        Per-program work — generation, compilation, trace profiling,
        the exhaustive core sweep — fans out over ``workers``
        processes; per-program child seeding keeps the sample list
        identical for every worker count.
        """
        from repro.core.parallel import build_scaleout_samples

        seed = self.seed if seed is None else seed
        stats = extract_stats(all_elements())
        self.samples = build_scaleout_samples(
            stats,
            self.nic,
            n_programs=n_programs,
            workloads=workloads,
            trace_packets=trace_packets,
            seed=seed,
            workers=workers,
        )
        return self.samples

    def fit(self, samples: Optional[List[ScaleoutSample]] = None) -> "ScaleoutAdvisor":
        samples = samples if samples is not None else self.samples
        if not samples:
            raise NotTrainedError(
                "no training samples; call build_training_set"
            )
        X = np.stack([s.features for s in samples])
        y = np.array([float(s.optimal_cores) for s in samples])
        self.model.fit(X, y)
        return self

    def predict_cores(
        self,
        prepared: PreparedNF,
        block_compute: Mapping[str, float],
        profile: ExecutionProfile,
        workload: WorkloadCharacter,
        max_cores: Optional[int] = None,
    ) -> int:
        if max_cores is None:
            max_cores = self.nic.n_cores
        features = scaleout_features(
            prepared, block_compute, profile, workload, nic=self.nic
        )
        raw = float(self.model.predict(features[None, :])[0])
        return int(np.clip(round(raw), 1, max_cores))

    # -- uniform advisor protocol --------------------------------------
    def advise(
        self,
        prepared: PreparedNF,
        profile: ExecutionProfile,
        workload: WorkloadCharacter,
        block_compute: Optional[Mapping[str, float]] = None,
        max_cores: Optional[int] = None,
    ) -> int:
        """Uniform advisor entry point.  ``block_compute`` is the
        LSTM-predicted per-block compute for an unported NF; when
        omitted, ground truth is taken from a compile of the module
        (the training-program path)."""
        if block_compute is None:
            program = compile_module(
                prepared.module, PortConfig(), target=self.nic.target
            )
            block_compute = {
                b.name: float(b.n_compute) for b in program.handler.blocks
            }
        return self.predict_cores(prepared, block_compute, profile, workload,
                                  max_cores=max_cores)

    def state_dict(self) -> dict:
        return {
            "seed": self.seed,
            "model": self.model,
            "samples": self.samples,
        }

    def load_state_dict(self, state: dict) -> "ScaleoutAdvisor":
        self.seed = int(state["seed"])
        self.model = state["model"]
        self.samples = list(state.get("samples", ()))
        return self
