"""Deterministic multiprocessing fan-out for the one-time learning phases.

Clara's dataset synthesis is embarrassingly parallel *per generated
program*: ClickGen generation, NIC compilation for ground-truth
instruction counts, and per-program trace profiling share nothing with
each other.  The sticking point is determinism — a single RNG threaded
through a serial loop cannot be split across workers without changing
the stream.  So each program is generated from a **child seed** derived
from ``(run seed, program index)`` (:meth:`ClickGen.for_program`),
which makes the dataset a pure function of ``(seed, n_programs)``:
``workers=N`` and ``workers=1`` return byte-identical results, and the
artifact cache in :mod:`repro.core.artifacts` can key on the training
config alone without recording how many workers produced it.

Workers are plain top-level functions over picklable argument tuples,
so both the ``fork`` and ``spawn`` start methods work.  Heavy IR
objects never cross the process boundary — workers return plain rows
(token lists, floats, feature vectors).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs import get_logger, get_metrics, span
from repro.obs.metrics import DEFAULT_BUCKETS, observe_latency

log = get_logger(__name__)

__all__ = [
    "child_seed",
    "parallel_map",
    "resolve_workers",
    "synthesize_predictor_rows",
    "build_scaleout_samples",
]


def child_seed(seed: int, index: int) -> int:
    """The deterministic per-program seed: independent of worker count
    and of every other program's generation."""
    from repro.synthesis.generator import program_seed

    return program_seed(seed, index)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` argument: ``None``/``0`` means "use all
    cores"; anything else is taken literally (minimum 1)."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    return max(1, int(workers))


def parallel_map(
    fn: Callable[[Any], Any],
    jobs: Sequence[Any],
    workers: Optional[int] = 1,
) -> List[Any]:
    """``[fn(j) for j in jobs]``, fanned out over ``workers`` processes.

    Results come back in job order regardless of completion order, so
    callers see identical output for any worker count.  ``workers<=1``
    (or a single job) runs inline with no pool overhead — this is also
    the reference stream the determinism tests compare against.
    """
    workers = resolve_workers(workers)
    name = getattr(fn, "__name__", repr(fn))
    with span("parallel_map", fn=name, jobs=len(jobs)) as sp, \
            observe_latency("parallel_dispatch_latency_seconds",
                            buckets=DEFAULT_BUCKETS, fn=name):
        get_metrics().counter("parallel_map_jobs").inc(len(jobs))
        if workers <= 1 or len(jobs) <= 1:
            sp.set("mode", "inline")
            return [fn(job) for job in jobs]
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        n_procs = min(workers, len(jobs))
        sp.set("workers", n_procs)
        try:
            with ctx.Pool(processes=n_procs) as pool:
                sp.set("mode", "pool")
                return pool.map(fn, jobs, chunksize=1)
        except (OSError, PermissionError) as exc:
            # Restricted environments (no /dev/shm, seccomp'd clone):
            # degrade to the serial reference stream rather than failing.
            log.warning(
                "process pool unavailable (%s); running %d jobs serially",
                exc, len(jobs),
            )
            sp.set("mode", "serial_fallback")
            return [fn(job) for job in jobs]


# ---------------------------------------------------------------------------
# Predictor dataset synthesis (Section 3.2).
# ---------------------------------------------------------------------------

def _predictor_program_job(
    args: Tuple[Any, int, int, str, str]
) -> List[Tuple[List[str], float, str]]:
    """Generate + compile the ``index``-th synthesized program and
    return its (token sequence, compute count, group) rows.  ``target``
    travels as a registry name (plain string, picklable) so each worker
    compiles against the right backend's register budget and engines."""
    stats, seed, index, prefix, target = args
    # Imports stay inside the worker: they keep this module import-light
    # and break the predictor <-> parallel import cycle.
    from repro.core.predictor import iter_block_samples
    from repro.core.prepare import prepare_element
    from repro.nic.compiler import compile_module
    from repro.nic.port import PortConfig
    from repro.synthesis.generator import ClickGen

    gen = ClickGen.for_program(stats, seed=seed, index=index)
    element = gen.element(f"{prefix}_{index}")
    prepared = prepare_element(element)
    program = compile_module(prepared.module, PortConfig(), target=target)
    return [
        (list(tokens), count, group)
        for tokens, count, group in iter_block_samples(prepared, program)
    ]


def synthesize_predictor_rows(
    stats: Any,
    n_programs: int,
    seed: int,
    workers: Optional[int] = 1,
    prefix: str = "synth",
    target: Optional[str] = None,
) -> List[Tuple[List[str], float, str]]:
    """All (sequence, target, group) rows for ``n_programs`` synthesized
    programs, in program order, compiled for registry target ``target``
    (``None`` means the default NFP)."""
    jobs = [
        (stats, seed, index, prefix, target) for index in range(n_programs)
    ]
    rows: List[Tuple[List[str], float, str]] = []
    for program_rows in parallel_map(_predictor_program_job, jobs, workers):
        rows.extend(program_rows)
    return rows


# ---------------------------------------------------------------------------
# Scale-out training-set construction (Section 4.2).
# ---------------------------------------------------------------------------

def _scaleout_program_job(args: Tuple[Any, ...]) -> List[Any]:
    """One synthesized program deployed on the simulated NIC under every
    training workload; returns its :class:`ScaleoutSample` rows."""
    stats, nic, seed, index, specs, trace_packets, prefix = args
    from dataclasses import replace

    from repro.click.interp import Interpreter
    from repro.core.prepare import prepare_element
    from repro.core.scaleout import ScaleoutSample, scaleout_features
    from repro.nic.compiler import compile_module
    from repro.nic.port import PortConfig
    from repro.synthesis.generator import ClickGen
    from repro.workload import characterize, generate_trace

    gen = ClickGen.for_program(stats, seed=seed, index=index)
    element = gen.element(f"{prefix}_{index}")
    prepared = prepare_element(element)
    program = compile_module(prepared.module, PortConfig(), target=nic.target)
    # Ground-truth per-block compute from the compiled program
    # (training programs ARE deployed, Section 4.2).
    block_compute = {
        b.name: float(b.n_compute) for b in program.handler.blocks
    }
    samples: List[ScaleoutSample] = []
    for spec in specs:
        spec_small = replace(spec, n_packets=trace_packets)
        interp = Interpreter(prepared.module, seed=seed)
        profile = interp.run_trace(generate_trace(spec_small, seed=seed))
        workload = characterize(spec_small, hierarchy=nic.hierarchy)
        features = scaleout_features(
            prepared, block_compute, profile, workload, nic=nic
        )
        packets = max(profile.packets, 1)
        freq = {b: c / packets for b, c in profile.block_counts.items()}
        sweep = nic.sweep_cores(program, freq, workload)
        optimal = nic.optimal_cores(sweep)
        samples.append(
            ScaleoutSample(features, optimal, element.name, spec.name)
        )
    return samples


def build_scaleout_samples(
    stats: Any,
    nic: Any,
    n_programs: int,
    workloads: Sequence[Any],
    trace_packets: int,
    seed: int,
    workers: Optional[int] = 1,
    prefix: str = "scale",
) -> List[Any]:
    """Flattened scale-out samples for ``n_programs`` programs, in
    (program, workload) order."""
    jobs = [
        (stats, nic, seed, index, tuple(workloads), trace_packets, prefix)
        for index in range(n_programs)
    ]
    samples: List[Any] = []
    for program_samples in parallel_map(_scaleout_program_job, jobs, workers):
        samples.extend(program_samples)
    return samples
