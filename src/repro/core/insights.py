"""Offloading insights: the structured output of Clara's analyses
(the ``Insights`` collection of the paper's Figure 3 algorithm)."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.nfir.analysis import Diagnostic

#: version of the ``to_dict()``/``to_json()`` layout emitted by
#: :class:`Insight` and :class:`InsightReport` (documented in
#: docs/API.md; bump on incompatible changes).  Schema 2 adds the
#: ``diagnostics`` list (offload-lint findings); schema-1 payloads are
#: still accepted by :meth:`InsightReport.from_dict` and read back with
#: an empty diagnostics list.
INSIGHT_REPORT_SCHEMA = 2

INSIGHT_TYPES = (
    "compute",      # predicted compute instructions for a block
    "memory",       # counted memory accesses for a block
    "api",          # reverse-ported API cost profile
    "accelerator",  # accelerator opportunity (CRC/LPM)
    "scaleout",     # suggested core count
    "placement",    # state -> memory region assignment
    "coalescing",   # variable packs + access sizes
    "colocation",   # pairwise friendliness ranking
)


@dataclass
class Insight:
    """One insight entry.

    ``subject`` names what the insight is about (a block, an API, a
    global, an NF pair); ``value`` is type-specific payload.
    """

    type: str
    subject: str
    value: Any
    detail: str = ""

    def __post_init__(self) -> None:
        if self.type not in INSIGHT_TYPES:
            raise ValueError(f"unknown insight type {self.type!r}")

    def to_dict(self) -> Dict[str, Any]:
        value = self.value
        if isinstance(value, (set, frozenset, tuple)):
            value = list(value)
        return {
            "type": self.type,
            "subject": self.subject,
            "value": value,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Insight":
        return cls(
            type=str(data["type"]),
            subject=str(data["subject"]),
            value=data.get("value"),
            detail=str(data.get("detail", "")),
        )


@dataclass
class InsightReport:
    """All insights Clara generated for one NF (+ workload)."""

    nf_name: str
    workload_name: str = ""
    insights: List[Insight] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, type: str, subject: str, value: Any, detail: str = "") -> Insight:
        insight = Insight(type, subject, value, detail)
        self.insights.append(insight)
        return insight

    def of_type(self, type: str) -> List[Insight]:
        return [i for i in self.insights if i.type == type]

    @property
    def predicted_compute(self) -> Dict[str, float]:
        """block name -> predicted NIC compute instructions."""
        return {i.subject: float(i.value) for i in self.of_type("compute")}

    @property
    def counted_memory(self) -> Dict[str, int]:
        """block name -> counted stateful memory accesses."""
        return {i.subject: int(i.value) for i in self.of_type("memory")}

    @property
    def suggested_cores(self) -> Optional[int]:
        found = self.of_type("scaleout")
        return int(found[0].value) if found else None

    @property
    def placement(self) -> Dict[str, str]:
        return {i.subject: str(i.value) for i in self.of_type("placement")}

    @property
    def lint_errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def lint_warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    # -- stable serialization (schema versioned, documented) -----------
    def to_dict(self) -> Dict[str, Any]:
        """The stable JSON layout: ``{"schema": 2, "kind":
        "insight_report", "nf_name", "workload_name", "insights",
        "diagnostics"}``."""
        return {
            "schema": INSIGHT_REPORT_SCHEMA,
            "kind": "insight_report",
            "nf_name": self.nf_name,
            "workload_name": self.workload_name,
            "insights": [insight.to_dict() for insight in self.insights],
            "diagnostics": [diag.to_dict() for diag in self.diagnostics],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "InsightReport":
        schema = data.get("schema")
        if schema not in (1, INSIGHT_REPORT_SCHEMA):
            raise ValueError(
                f"unsupported insight-report schema {schema!r}"
                f" (expected {INSIGHT_REPORT_SCHEMA})"
            )
        report = cls(
            nf_name=str(data.get("nf_name", "")),
            workload_name=str(data.get("workload_name", "")),
        )
        for entry in data.get("insights", []):
            report.insights.append(Insight.from_dict(entry))
        for entry in data.get("diagnostics", []):
            report.diagnostics.append(Diagnostic.from_dict(entry))
        return report

    @classmethod
    def from_json(cls, text: str) -> "InsightReport":
        return cls.from_dict(json.loads(text))

    def render(self) -> str:
        """Human-readable report."""
        lines = [f"Clara offloading insights for NF '{self.nf_name}'"]
        if self.workload_name:
            lines.append(f"Workload: {self.workload_name}")
        lines.append("=" * 60)
        by_type: Dict[str, List[Insight]] = {}
        for insight in self.insights:
            by_type.setdefault(insight.type, []).append(insight)
        for type_ in INSIGHT_TYPES:
            if type_ not in by_type:
                continue
            lines.append(f"\n[{type_}]")
            for insight in by_type[type_]:
                suffix = f"  ({insight.detail})" if insight.detail else ""
                lines.append(f"  {insight.subject}: {insight.value}{suffix}")
        if self.diagnostics:
            lines.append("\n[diagnostics]")
            for diag in self.diagnostics:
                lines.append(f"  {diag.render()}")
        return "\n".join(lines) + "\n"
