"""Offloading insights: the structured output of Clara's analyses
(the ``Insights`` collection of the paper's Figure 3 algorithm)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

INSIGHT_TYPES = (
    "compute",      # predicted compute instructions for a block
    "memory",       # counted memory accesses for a block
    "api",          # reverse-ported API cost profile
    "accelerator",  # accelerator opportunity (CRC/LPM)
    "scaleout",     # suggested core count
    "placement",    # state -> memory region assignment
    "coalescing",   # variable packs + access sizes
    "colocation",   # pairwise friendliness ranking
)


@dataclass
class Insight:
    """One insight entry.

    ``subject`` names what the insight is about (a block, an API, a
    global, an NF pair); ``value`` is type-specific payload.
    """

    type: str
    subject: str
    value: Any
    detail: str = ""

    def __post_init__(self) -> None:
        if self.type not in INSIGHT_TYPES:
            raise ValueError(f"unknown insight type {self.type!r}")


@dataclass
class InsightReport:
    """All insights Clara generated for one NF (+ workload)."""

    nf_name: str
    workload_name: str = ""
    insights: List[Insight] = field(default_factory=list)

    def add(self, type: str, subject: str, value: Any, detail: str = "") -> Insight:
        insight = Insight(type, subject, value, detail)
        self.insights.append(insight)
        return insight

    def of_type(self, type: str) -> List[Insight]:
        return [i for i in self.insights if i.type == type]

    @property
    def predicted_compute(self) -> Dict[str, float]:
        """block name -> predicted NIC compute instructions."""
        return {i.subject: float(i.value) for i in self.of_type("compute")}

    @property
    def counted_memory(self) -> Dict[str, int]:
        """block name -> counted stateful memory accesses."""
        return {i.subject: int(i.value) for i in self.of_type("memory")}

    @property
    def suggested_cores(self) -> Optional[int]:
        found = self.of_type("scaleout")
        return int(found[0].value) if found else None

    @property
    def placement(self) -> Dict[str, str]:
        return {i.subject: str(i.value) for i in self.of_type("placement")}

    def render(self) -> str:
        """Human-readable report."""
        lines = [f"Clara offloading insights for NF '{self.nf_name}'"]
        if self.workload_name:
            lines.append(f"Workload: {self.workload_name}")
        lines.append("=" * 60)
        by_type: Dict[str, List[Insight]] = {}
        for insight in self.insights:
            by_type.setdefault(insight.type, []).append(insight)
        for type_ in INSIGHT_TYPES:
            if type_ not in by_type:
                continue
            lines.append(f"\n[{type_}]")
            for insight in by_type[type_]:
                suffix = f"  ({insight.detail})" if insight.detail else ""
                lines.append(f"  {insight.subject}: {insight.value}{suffix}")
        return "\n".join(lines) + "\n"
