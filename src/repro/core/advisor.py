"""The uniform advisor protocol.

Every trainable analysis in Clara — instruction prediction, algorithm
identification, scale-out, placement, coalescing, colocation — exposes
the same four entry points, so :mod:`repro.core.artifacts` can
serialize them generically and :class:`repro.core.pipeline.Clara` can
treat them as one family:

* ``fit(...)`` — run the learning phase (a no-op returning ``self``
  for the advisors that solve rather than learn);
* ``advise(prepared, profile, workload)`` — produce the insight for
  one prepared NF, its host execution profile, and the workload
  character (advisors ignore the inputs they do not need);
* ``state_dict()`` — the advisor's learned state as a picklable dict;
* ``load_state_dict(state)`` — restore in place from ``state_dict()``
  output; the round trip reproduces bit-identical advice.

Pre-existing method names (``analyze``, ``identify``,
``predict_cores``, ...) remain as the advisor-specific spellings; the
protocol adds the uniform face on top rather than replacing them.
"""

from __future__ import annotations

from typing import Any, Dict, Protocol, runtime_checkable

__all__ = ["Advisor"]


@runtime_checkable
class Advisor(Protocol):
    """Structural interface shared by Clara's advisors."""

    def fit(self, *args: Any, **kwargs: Any) -> "Advisor":
        """Run the advisor's learning phase (or no-op) and return self."""
        ...

    def advise(self, prepared: Any, profile: Any = None,
               workload: Any = None, **kwargs: Any) -> Any:
        """The advisor's insight for one (NF, profile, workload)."""
        ...

    def state_dict(self) -> Dict[str, Any]:
        """Learned state as a picklable dict."""
        ...

    def load_state_dict(self, state: Dict[str, Any]) -> "Advisor":
        """Restore from :meth:`state_dict` output; returns self."""
        ...
