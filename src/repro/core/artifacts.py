"""Trained-model artifacts: the config, the cache, and (de)serialization.

Clara's learning phases are a pure function of the training
configuration, the seed, and the simulated NIC's constants — so their
output can be **content-addressed**: the cache key is a SHA-256 over
exactly those inputs plus a code-version tag, and a second
``Clara.train()`` with the same :class:`TrainConfig` becomes a
sub-second load from ``~/.cache/repro-clara/`` instead of minutes of
synthesis and fitting.

Three pieces live here:

* :class:`TrainConfig` — the one typed description of a training run
  (the loose ``n_predictor_programs/.../quick`` kwargs it replaced
  were removed after their deprecation cycle);
* :func:`save_state` / :func:`load_state` — pickle an advisor
  ``state_dict()`` tree to disk with format/version validation;
* :class:`ArtifactCache` — the content-addressed store.  Corrupt or
  stale entries are evicted and reported as misses, so callers always
  fall back to retraining.

Cache busting: bump :data:`ARTIFACT_VERSION` whenever training code or
learned-state layout changes meaning; delete the cache directory (or
point ``REPRO_CLARA_CACHE`` elsewhere) to force cold retrains by hand.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from repro.errors import ArtifactCacheMiss, ArtifactError
from repro.obs import get_logger, get_metrics, span

log = get_logger(__name__)

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "ArtifactCache",
    "ArtifactCacheMiss",
    "ArtifactError",
    "PredictionCache",
    "TrainConfig",
    "default_cache_dir",
    "load_state",
    "save_state",
    "sequence_key",
    "train_cache_key",
]

#: On-disk container layout (the outer dict written by ``save_state``).
ARTIFACT_FORMAT = 1

#: Code-relevant version tag.  Part of every cache key: bump it when
#: the synthesis pipeline, model architectures, or state_dict layouts
#: change in a way that invalidates previously trained weights.
ARTIFACT_VERSION = "clara-artifacts-2"

#: Environment variable overriding the default cache directory.
ENV_CACHE_DIR = "REPRO_CLARA_CACHE"


# ArtifactError / ArtifactCacheMiss moved to repro.errors (the typed
# exception hierarchy); imported above and re-exported here for
# backwards compatibility.


@dataclass(frozen=True)
class TrainConfig:
    """Everything ``Clara.train()`` learns from, in one hashable value.

    The only way to size a training run (the loose
    ``n_predictor_programs / n_scaleout_programs / predictor_epochs /
    quick`` kwargs completed their deprecation cycle and were
    removed).  Two equal configs trained at the same seed on the same
    NIC produce identical models — which is what makes the artifact
    cache sound.
    """

    #: synthesized programs for the instruction predictor (Section 3.2).
    n_predictor_programs: int = 120
    #: synthesized programs for the scale-out cost model (Section 4.2).
    n_scaleout_programs: int = 60
    #: LSTM training epochs.
    predictor_epochs: int = 35
    #: negative examples in the algorithm-identification corpus (4.1).
    n_negatives: int = 40
    #: host-profiled trace length per scale-out training deployment.
    scaleout_trace_packets: int = 400

    @classmethod
    def quick(cls) -> "TrainConfig":
        """Shrunken config for tests and CLI smoke runs
        (minutes -> seconds, at some accuracy cost)."""
        return cls(
            n_predictor_programs=12,
            n_scaleout_programs=6,
            predictor_epochs=8,
            n_negatives=10,
            scaleout_trace_packets=150,
        )

    def key_dict(self) -> Dict[str, Any]:
        return asdict(self)


def default_cache_dir() -> Path:
    """``$REPRO_CLARA_CACHE`` if set, else ``~/.cache/repro-clara``."""
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-clara"


def _nic_fingerprint(nic: Any) -> Dict[str, Any]:
    """The NIC constants the learned models depend on.

    Includes the full target description (register budget, accelerator
    latency table, host-DMA hop, ...) — models trained for ``nfp-4000``
    and ``dpu-offpath`` must never share a cache key — plus the
    model-level topology/hierarchy fields, which callers can override
    independently of the target for ablations.
    """
    if nic is None:
        return {}
    target = getattr(nic, "target", None)
    target_payload: Dict[str, Any] = {}
    if target is not None:
        from repro.nic.targets import target_fingerprint

        target_payload = target_fingerprint(target)
    hierarchy = getattr(nic, "hierarchy", None)
    regions = []
    if hierarchy is not None:
        for name in sorted(hierarchy.regions):
            region = hierarchy.regions[name]
            regions.append(
                [
                    region.name,
                    int(region.capacity_bytes),
                    int(region.latency_cycles),
                    float(region.bandwidth_ops),
                ]
            )
    return {
        "target": target_payload,
        "n_cores": getattr(nic, "n_cores", None),
        "threads_per_core": getattr(nic, "threads_per_core", None),
        "freq_hz": getattr(nic, "freq_hz", None),
        "line_rate_gbps": getattr(nic, "line_rate_gbps", None),
        "regions": regions,
    }


def train_cache_key(
    config: TrainConfig, seed: int = 0, nic: Any = None
) -> str:
    """Content address of a training run: hash of (version tag, config,
    seed, NIC constants).  Worker count is deliberately absent —
    parallel and serial synthesis produce identical datasets."""
    payload = json.dumps(
        {
            "version": ARTIFACT_VERSION,
            "config": config.key_dict(),
            "seed": int(seed),
            "nic": _nic_fingerprint(nic),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


# ---------------------------------------------------------------------------
# (De)serialization of state_dict trees.
# ---------------------------------------------------------------------------

def save_state(state: Dict[str, Any], path: "os.PathLike | str") -> Path:
    """Atomically write a ``state_dict()`` tree to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    container = {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "state": state,
    }
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            pickle.dump(container, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on write failure
            tmp.unlink()
    return path


def load_state(path: "os.PathLike | str") -> Dict[str, Any]:
    """Read a ``state_dict()`` tree written by :func:`save_state`.

    Raises :class:`ArtifactError` on any corruption or version skew —
    callers that want graceful degradation (the cache) catch it.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            container = pickle.load(handle)
    except FileNotFoundError:
        raise
    except Exception as exc:  # noqa: BLE001 - any unpickling failure
        raise ArtifactError(f"unreadable artifact {path}: {exc}") from exc
    if not isinstance(container, dict) or "state" not in container:
        raise ArtifactError(f"{path} is not a Clara artifact")
    if container.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"{path}: unsupported artifact format {container.get('format')!r}"
        )
    if container.get("version") != ARTIFACT_VERSION:
        raise ArtifactError(
            f"{path}: artifact version {container.get('version')!r} does not"
            f" match code version {ARTIFACT_VERSION!r}"
        )
    return container["state"]


def sequence_key(tokens: Any) -> str:
    """Content address of one block token sequence (prediction-cache
    row key).  JSON framing keeps distinct sequences distinct even when
    tokens contain each other's separators."""
    payload = json.dumps(list(tokens), separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


class PredictionCache:
    """Content-addressed per-block prediction memo.

    Maps ``sequence_key(block tokens)`` to the predicted instruction
    count, valid only within one ``namespace`` — a hash of the model
    fingerprint, the predictor mode, and the target fingerprint (see
    ``InstructionPredictor.prediction_namespace``), so predictions
    never leak across retrained weights, modes, or NIC targets.

    Lookups and inserts hit an in-memory dict; pass ``store`` (an
    :class:`ArtifactCache`) to additionally page the map in from disk
    at construction and persist it on :meth:`flush`.  Cached values are
    the exact doubles the model produced, so cached and uncached
    predictions are bit-identical.
    """

    def __init__(
        self,
        namespace: str,
        store: Optional["ArtifactCache"] = None,
    ) -> None:
        self.namespace = namespace
        self.hits = 0
        self.misses = 0
        self._store = store
        self._mem: Dict[str, float] = {}
        self._dirty = False
        if store is not None:
            state = store.load(self._store_key())
            if state is not None:
                self._mem.update(state.get("predictions", {}))

    def __len__(self) -> int:
        return len(self._mem)

    def _store_key(self) -> str:
        return f"pred-{self.namespace}"

    def lookup(self, keys: "list[str]") -> "list[Optional[float]]":
        """Cached prediction per key (``None`` on miss), counting
        hits/misses in the obs registry and journaling one
        ``cache_hit``/``cache_miss`` event per lookup (stamped with the
        ambient request id, so a request's cache behaviour is visible
        in ``GET /v1/events``)."""
        from repro.obs.events import emit

        out: "list[Optional[float]]" = []
        hits = misses = 0
        for key in keys:
            value = self._mem.get(key)
            if value is None:
                misses += 1
            else:
                hits += 1
            out.append(value)
        self.hits += hits
        self.misses += misses
        metrics = get_metrics()
        if hits:
            metrics.counter(
                "prediction_cache_requests", result="hit"
            ).inc(hits)
            emit("cache_hit", n_keys=hits, cache="prediction")
        if misses:
            metrics.counter(
                "prediction_cache_requests", result="miss"
            ).inc(misses)
            emit("cache_miss", n_keys=misses, cache="prediction")
        return out

    def insert(self, keys: "list[str]", values: "list[float]") -> None:
        for key, value in zip(keys, values):
            self._mem[key] = float(value)
        if keys:
            self._dirty = True

    def flush(self) -> Optional[Path]:
        """Persist the map through the backing store, if any (no-op for
        purely in-memory caches or when nothing changed)."""
        if self._store is None or not self._dirty:
            return None
        path = self._store.store(
            self._store_key(), {"predictions": dict(self._mem)}
        )
        self._dirty = False
        return path


class ArtifactCache:
    """Content-addressed store of trained states under one directory."""

    def __init__(self, root: "os.PathLike | str | None" = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        return self.root / f"clara-{key}.pkl"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored state for ``key``, or ``None`` on miss.  Corrupt
        and version-skewed entries are evicted and count as misses."""
        path = self.path_for(key)
        with span("artifact_cache.load", key=key) as sp:
            try:
                state = load_state(path)
            except FileNotFoundError:
                result = "miss"
                state = None
            except ArtifactError as exc:
                log.warning("evicting bad cache entry %s: %s", path, exc)
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - concurrent eviction
                    pass
                result = "evicted"
                state = None
            else:
                result = "hit"
            sp.set("result", result)
        get_metrics().counter("artifact_cache_requests", result=result).inc()
        log.info("artifact cache %s for key %s", result, key)
        return state

    def store(self, key: str, state: Dict[str, Any]) -> Path:
        with span("artifact_cache.store", key=key):
            path = save_state(state, self.path_for(key))
        get_metrics().counter("artifact_cache_stores").inc()
        log.info("artifact stored at %s", path)
        return path
