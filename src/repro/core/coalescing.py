"""Memory access coalescing (paper Section 4.4).

Clusters stateful scalars by their normalized per-block access vectors
(K-means), packs each cluster adjacently, and sets the coalesced access
size to the pack footprint.  The Section 5.8 "expert" sweeps relative
positions of the hottest variables instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.click.interp import ExecutionProfile
from repro.ml.kmeans import choose_k_by_cutoff
from repro.nfir.function import Module
from repro.nic.port import CoalescePack
from repro.obs.metrics import get_metrics, observe_latency

#: Largest coalesced access the NIC's DMA engines issue in one command.
MAX_PACK_BYTES = 64

#: Cluster-tightness cutoff on normalized access vectors (Section 5.8
#: mentions Clara's reliance on "some cutoff threshold"): members must
#: lie within this L2 distance of their cluster center.
CLUSTER_CUTOFF = 0.45


@dataclass
class CoalescingPlan:
    packs: List[CoalescePack]
    #: variable -> cluster id, for inspection/tests.
    clusters: Dict[str, int]

    @property
    def n_clusters(self) -> int:
        return len(self.packs)


class CoalescingAdvisor:
    """Clara's variable packing and access-size suggestions."""

    def __init__(self, max_clusters: int = 6, seed: int = 0) -> None:
        self.max_clusters = max_clusters
        self.seed = seed

    @staticmethod
    def _packable_globals(module: Module) -> List[str]:
        """Scalars are packable; aggregates have their own layout."""
        return [
            name
            for name, g in module.globals.items()
            if g.kind == "scalar"
        ]

    def access_vectors(
        self, module: Module, profile: ExecutionProfile
    ) -> Tuple[List[str], np.ndarray]:
        """Per-variable normalized block-access vectors (Section 4.4's
        ``[p_1..p_k]`` encoding)."""
        block_order = sorted(
            {block for (_g, block) in profile.global_block_access}
        )
        names = [
            name
            for name in self._packable_globals(module)
            if profile.access_frequency(name) > 0.0
        ]
        vectors = np.stack(
            [profile.access_vector(name, block_order) for name in names]
        ) if names else np.zeros((0, max(len(block_order), 1)))
        return names, vectors

    # -- uniform advisor protocol --------------------------------------
    def fit(self, *args, **kwargs) -> "CoalescingAdvisor":
        """Coalescing clusters per NF; there is nothing to learn."""
        return self

    def state_dict(self) -> Dict[str, object]:
        return {"max_clusters": self.max_clusters, "seed": self.seed}

    def load_state_dict(self, state: Dict[str, object]) -> "CoalescingAdvisor":
        self.max_clusters = int(state["max_clusters"])
        self.seed = int(state["seed"])
        return self

    def advise(self, prepared, profile: ExecutionProfile,
               workload=None) -> CoalescingPlan:
        """Uniform advisor entry point.  ``prepared`` may be a
        :class:`~repro.core.prepare.PreparedNF` or a bare lowered
        module (the historical calling convention)."""
        module: Module = getattr(prepared, "module", prepared)
        names, vectors = self.access_vectors(module, profile)
        if len(names) < 2:
            return CoalescingPlan(packs=[], clusters={})
        with observe_latency("kmeans_fit_latency_seconds"):
            _k, model = choose_k_by_cutoff(
                vectors, k_max=self.max_clusters, cutoff=CLUSTER_CUTOFF,
                seed=self.seed,
            )
        get_metrics().histogram(
            "kmeans_iterations",
            buckets=(1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0),
        ).observe(float(model.n_iter_))
        labels = model.labels_
        clusters: Dict[str, int] = {n: int(l) for n, l in zip(names, labels)}
        packs: List[CoalescePack] = []
        for cluster_id in sorted(set(labels)):
            members = [n for n in names if clusters[n] == cluster_id]
            if len(members) < 2:
                continue  # singleton clusters gain nothing from packing
            size = sum(module.globals[m].size_bytes for m in members)
            if size > MAX_PACK_BYTES:
                # Split oversized clusters by access frequency order.
                members.sort(key=lambda m: -profile.access_frequency(m))
                current: List[str] = []
                current_size = 0
                for member in members:
                    member_size = module.globals[member].size_bytes
                    if current and current_size + member_size > MAX_PACK_BYTES:
                        if len(current) >= 2:
                            packs.append(
                                CoalescePack(tuple(current), current_size)
                            )
                        current, current_size = [], 0
                    current.append(member)
                    current_size += member_size
                if len(current) >= 2:
                    packs.append(CoalescePack(tuple(current), current_size))
            else:
                packs.append(CoalescePack(tuple(members), size))
        return CoalescingPlan(packs=packs, clusters=clusters)

    # -- expert emulation (Section 5.8) ---------------------------------
    @staticmethod
    def expert_search(
        module: Module,
        profile: ExecutionProfile,
        evaluate: Callable[[List[CoalescePack]], float],
        top_n: int = 6,
        max_partitions: int = 600,
    ) -> Tuple[List[CoalescePack], float]:
        """Sweep groupings of the most frequently accessed variables
        ("we identify variables that are used in the top-3 most
        frequently triggered code blocks, pack such variables together,
        and try all possible positions").  ``evaluate`` is minimized.
        """
        names = [
            name
            for name, g in module.globals.items()
            if g.kind == "scalar" and profile.access_frequency(name) > 0.0
        ]
        names.sort(key=lambda n: -profile.access_frequency(n))
        names = names[:top_n]
        best: Tuple[List[CoalescePack], float] = ([], evaluate([]))
        tried = 0
        for partition in _partitions(names):
            tried += 1
            if tried > max_partitions:
                break
            packs = []
            feasible = True
            for group in partition:
                if len(group) < 2:
                    continue
                size = sum(module.globals[m].size_bytes for m in group)
                if size > MAX_PACK_BYTES:
                    feasible = False
                    break
                packs.append(CoalescePack(tuple(group), size))
            if not feasible or not packs:
                continue
            score = evaluate(packs)
            if score < best[1]:
                best = (packs, score)
        return best


def _partitions(items: Sequence[str]):
    """All set partitions of ``items`` (Bell-number growth; callers
    bound the item count)."""
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _partitions(rest):
        # Put `first` in its own group...
        yield [[first]] + partition
        # ...or into each existing group.
        for i in range(len(partition)):
            yield partition[:i] + [[first] + partition[i]] + partition[i + 1 :]
