"""Model interpretability reports (paper Section 6: "more interpretable
models may enable new NF tuning and optimization opportunities, as the
developers can easily digest the prediction results").

Two kinds of explanations:

* **tree-ensemble feature importances** — split-frequency x gain-proxy
  counts over the GBDT used by the scale-out advisor and the
  LambdaMART ranker;
* **SVM pattern weights** — the highest-weighted SPE subsequences of an
  accelerator classifier, i.e. *which instruction idioms made Clara
  call this code CRC/LPM* (Section 5.3's observation that the features
  "intuitively reflect a human understanding" of the algorithms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.algorithms import AlgorithmIdentifier
from repro.errors import NotTrainedError
from repro.ml.gbdt import GBDTRegressor


def _walk_tree(node, counts: Dict[int, float]) -> None:
    if node is None or node.is_leaf:
        return
    counts[node.feature] = counts.get(node.feature, 0.0) + 1.0
    _walk_tree(node.left, counts)
    _walk_tree(node.right, counts)


def gbdt_feature_importance(
    model: GBDTRegressor, feature_names: Optional[Sequence[str]] = None
) -> List[Tuple[str, float]]:
    """Split-count feature importances, normalized to sum to 1."""
    counts: Dict[int, float] = {}
    for tree in model.trees:
        _walk_tree(tree.root, counts)
    total = sum(counts.values()) or 1.0
    items = sorted(counts.items(), key=lambda kv: -kv[1])
    out = []
    for feature, count in items:
        name = (
            feature_names[feature]
            if feature_names is not None and feature < len(feature_names)
            else f"feature[{feature}]"
        )
        out.append((name, count / total))
    return out


SCALEOUT_FEATURE_NAMES = (
    "compute/pkt",
    "stateful-mem/pkt",
    "packet-mem/pkt",
    "api-calls/pkt",
    "arithmetic-intensity",
    "emem-cache-hit-rate",
    "packet-bytes",
    "est-issue-cycles",
    "est-mem-cycles",
    "est-cores",
)

COLOCATION_FEATURE_NAMES = (
    "min-intensity",
    "max-intensity",
    "min-compute/pkt",
    "max-compute/pkt",
    "min-state-mem/pkt",
    "max-state-mem/pkt",
    "intensity-ratio",
    "min-mem-rate",
    "max-mem-rate",
    "joint-mem-rate",
)


@dataclass
class SvmPatternWeight:
    pattern: Tuple[str, ...]
    weight: float
    support: float
    confidence: float


def svm_top_patterns(
    identifier: AlgorithmIdentifier, accel: str, top: int = 10
) -> List[SvmPatternWeight]:
    """The SPE subsequences with the largest positive SVM weight for an
    accelerator class — the idioms that vote "this is {accel}"."""
    svm = identifier.svms[accel]
    extractor = identifier.extractors[accel]
    if svm.w is None:
        raise NotTrainedError("identifier is not fitted")
    n_patterns = len(extractor.patterns_)
    weights = svm.w[:n_patterns]
    order = np.argsort(-weights)[:top]
    out = []
    for index in order:
        pattern = extractor.patterns_[int(index)]
        out.append(
            SvmPatternWeight(
                pattern=pattern.tokens,
                weight=float(weights[int(index)]),
                support=pattern.support,
                confidence=pattern.confidence,
            )
        )
    return out


def render_explanations(
    scaleout_model: Optional[GBDTRegressor] = None,
    identifier: Optional[AlgorithmIdentifier] = None,
) -> str:
    """A human-readable interpretability report."""
    lines: List[str] = ["Clara model explanations", "=" * 40]
    if scaleout_model is not None and scaleout_model.trees:
        lines.append("\nScale-out cost model: feature importances")
        for name, share in gbdt_feature_importance(
            scaleout_model, SCALEOUT_FEATURE_NAMES
        ):
            lines.append(f"  {name:22s} {share:6.1%}")
    if identifier is not None and identifier.svms:
        for accel in identifier.svms:
            lines.append(f"\n{accel.upper()} classifier: top positive idioms")
            for entry in svm_top_patterns(identifier, accel, top=6):
                lines.append(
                    f"  w={entry.weight:+7.2f} conf={entry.confidence:.2f}"
                    f"  {' | '.join(entry.pattern)}"
                )
    return "\n".join(lines) + "\n"
