"""Program preparation (paper Section 3.1, Figure 3 lines 2-5).

``llir <- LLVMBYTECODE(prog); cfg <- GETCFG(llir); api_set <- GETAPI;
nf_blocks <- GETCODEBLOCK(cfg)`` — lower the unported element to NFIR,
extract the CFG, collect the framework API set, and annotate every
block's instructions by category.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


from repro.click.ast import ElementDef
from repro.click.frontend import lower_element
from repro.nfir.annotate import AnnotatedBlock, ModuleAnnotation, annotate_module
from repro.nfir.cfg import build_cfg
from repro.nfir.function import Module
from repro.ml.encoding import block_tokens


@dataclass
class PreparedNF:
    """Everything downstream analyses need about one unported NF."""

    element: Optional[ElementDef]
    module: Module
    cfg: "nx.DiGraph"
    annotation: ModuleAnnotation
    #: per-block abstracted token sequences (vocabulary-compacted).
    tokens: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.module.name

    @property
    def api_set(self) -> List[str]:
        return self.annotation.api_set

    @property
    def blocks(self) -> List[AnnotatedBlock]:
        return self.annotation.blocks

    def block_token_sequences(self) -> List[List[str]]:
        return [self.tokens[b.name] for b in self.blocks]


def prepare_module(module: Module, element: Optional[ElementDef] = None) -> PreparedNF:
    """Prepare an already-lowered module."""
    annotation = annotate_module(module)
    handler = module.handler
    cfg = build_cfg(handler)
    tokens = {
        block.name: block_tokens(block, compact=True)
        for block in handler.blocks
    }
    return PreparedNF(
        element=element,
        module=module,
        cfg=cfg,
        annotation=annotation,
        tokens=tokens,
    )


def prepare_element(element: ElementDef) -> PreparedNF:
    """Lower an unported ClickScript element and prepare it."""
    module = lower_element(element, inline=True)
    return prepare_module(module, element)
