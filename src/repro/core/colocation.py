"""NF colocation analysis (paper Section 4.5).

Pairwise LambdaMART ranking of colocation candidates.  Features follow
the paper: "a) arithmetic intensity of each NF, b) the number of
compute instructions for each NF, and c) the ratio between colocated
NFs' arithmetic intensities."  Four training objectives are supported
(total/average x throughput/latency loss); the paper finds total
throughput loss works best (Figure 14a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.click.elements import all_elements
from repro.click.interp import Interpreter
from repro.core.prepare import PreparedNF, prepare_element
from repro.ml.ranking import LambdaRanker
from repro.nic.colocation import ColocationResult, simulate_colocation
from repro.nic.compiler import compile_module
from repro.nic.isa import NICProgram
from repro.nic.machine import NICModel, WorkloadCharacter
from repro.nic.port import PortConfig
from repro.synthesis.generator import ClickGen
from repro.synthesis.stats import extract_stats
from repro.workload import characterize, generate_trace
from repro.workload.spec import WorkloadSpec

OBJECTIVES = (
    "total_throughput_loss",
    "average_throughput_loss",
    "total_latency_loss",
    "average_latency_loss",
)

#: version of :func:`ranking_to_dict`'s layout (documented in
#: docs/API.md; bump on incompatible changes).
COLOCATION_RANKING_SCHEMA = 1


def ranking_to_dict(
    pairs: Sequence[Tuple["NFCandidate", "NFCandidate"]],
) -> Dict[str, object]:
    """The stable JSON layout for a friendliest-first colocation
    ranking (the output of :meth:`Clara.rank_colocations`)."""
    return {
        "schema": COLOCATION_RANKING_SCHEMA,
        "kind": "colocation_ranking",
        "pairs": [
            {"rank": rank, "a": a.to_dict(), "b": b.to_dict()}
            for rank, (a, b) in enumerate(pairs)
        ],
    }


@dataclass
class NFCandidate:
    """One NF ready for colocation analysis.

    ``memory_per_pkt`` counts accesses to *shared state* regions (the
    contended DRAM path); packet-buffer (CTM) traffic is tracked
    separately because its bandwidth headroom is far larger.
    """

    name: str
    program: NICProgram
    block_freq: Dict[str, float]
    compute_per_pkt: float
    memory_per_pkt: float
    ctm_per_pkt: float = 0.0

    @property
    def arithmetic_intensity(self) -> float:
        return self.compute_per_pkt / max(self.memory_per_pkt, 0.25)

    def est_solo_pps(self, cores: int = 30, packet_bytes: int = 256) -> float:
        """First-order solo throughput: line rate vs. compute bound."""
        line = 40e9 / 8.0 / (packet_bytes + 20.0)
        compute_bound = cores * 1.2e9 / max(self.compute_per_pkt, 1.0)
        return min(line, compute_bound)

    def est_state_rate(self, cores: int = 30) -> float:
        """Offered load on the shared state memory (accesses/sec) —
        the quantity whose pairwise sum drives interference."""
        return self.est_solo_pps(cores) * self.memory_per_pkt

    def to_dict(self) -> Dict[str, object]:
        """Stable JSON summary (the compiled program is omitted)."""
        return {
            "name": self.name,
            "compute_per_pkt": round(self.compute_per_pkt, 6),
            "memory_per_pkt": round(self.memory_per_pkt, 6),
            "ctm_per_pkt": round(self.ctm_per_pkt, 6),
            "arithmetic_intensity": round(self.arithmetic_intensity, 6),
        }


def make_candidate(
    prepared: PreparedNF,
    profile,
    config: Optional[PortConfig] = None,
) -> NFCandidate:
    program = compile_module(prepared.module, config or PortConfig())
    packets = max(profile.packets, 1)
    freq = {b: c / packets for b, c in profile.block_counts.items()}
    compute = 0.0
    memory = 0.0
    ctm = 0.0
    block_asm = {b.name: b for b in program.handler.blocks}
    for name, f in freq.items():
        asm = block_asm.get(name)
        if asm is None:
            continue
        compute += f * asm.n_compute
        for instr in asm.memory_accesses():
            region = instr.region or ""
            if region.startswith("state:"):
                memory += f
            else:
                ctm += f
    # Framework APIs hide most of a stateful NF's memory traffic behind
    # single call instructions; price them via the reverse-ported
    # profiles (the same fix the scale-out features need).
    from repro.nic.libnfp import api_cost, sw_checksum_cycles

    for api, count in profile.api_counts.items():
        per_pkt = count / packets
        if api.startswith("checksum_update"):
            compute += per_pkt * sw_checksum_cycles(256)
            continue
        cost = api_cost(api)
        compute += per_pkt * cost.cycles
        for kind, _size, c in cost.accesses:
            if kind == "state":
                memory += per_pkt * c
            else:
                ctm += per_pkt * c
    return NFCandidate(prepared.name, program, freq, compute, memory, ctm)


def pair_features(a: NFCandidate, b: NFCandidate) -> np.ndarray:
    """Section 4.5's feature set, symmetrized.

    Beyond the paper's three (per-NF arithmetic intensity, compute
    counts, intensity ratio) we add each NF's *memory rate* — memory
    accesses per compute cycle, the offered load a compute-bound NF
    actually puts on the shared memory subsystem — whose pairwise sum
    is the direct physical driver of interference.
    """
    ai_a, ai_b = a.arithmetic_intensity, b.arithmetic_intensity
    lo, hi = min(ai_a, ai_b), max(ai_a, ai_b)
    rate_a = a.est_state_rate() / 1e6
    rate_b = b.est_state_rate() / 1e6
    return np.array(
        [
            lo,
            hi,
            min(a.compute_per_pkt, b.compute_per_pkt),
            max(a.compute_per_pkt, b.compute_per_pkt),
            min(a.memory_per_pkt, b.memory_per_pkt),
            max(a.memory_per_pkt, b.memory_per_pkt),
            lo / max(hi, 1e-6),  # intensity ratio
            min(rate_a, rate_b),
            max(rate_a, rate_b),
            rate_a + rate_b,  # joint offered state-memory load (M/s)
        ]
    )


class ColocationAdvisor:
    def __init__(
        self,
        nic: Optional[NICModel] = None,
        objective: str = "total_throughput_loss",
        seed: int = 0,
    ) -> None:
        if objective not in OBJECTIVES:
            raise ValueError(f"unknown objective {objective!r}")
        self.nic = nic or NICModel()
        self.objective = objective
        self.seed = seed
        self.ranker = LambdaRanker(n_rounds=50, max_depth=3, seed=seed)

    # -- measurement ------------------------------------------------------
    def measure_pair(
        self,
        a: NFCandidate,
        b: NFCandidate,
        workload: WorkloadCharacter,
    ) -> ColocationResult:
        return simulate_colocation(
            self.nic, a.program, a.block_freq, b.program, b.block_freq, workload
        )

    def pair_loss(self, result: ColocationResult) -> float:
        return float(getattr(result, self.objective))

    # -- training ----------------------------------------------------------
    @staticmethod
    def _grid_element(name: str, compute_reps: int, mem_reps: int,
                      ctm_reps: int = 0):
        """A parametric NF with independently dialed compute weight
        (software checksum passes + arithmetic) and stateful-memory
        weight (counter-array updates).  The grid decorrelates compute
        from memory so the ranker learns the *rate* interaction rather
        than a pool-specific proxy."""
        from repro.click import ast as C
        from repro.click.ast import ElementDef
        from repro.click.elements._dsl import (
            array_state,
            assign,
            decl,
            fcall,
            fld,
            idx,
            pkt,
            v,
        )

        handler = [
            decl("ip", "ip_hdr*", pkt("ip_header")),
            decl("acc", "u32", fld(v("ip"), "src_addr")),
        ]
        for c in range(compute_reps):
            handler.append(fcall("checksum_update_ip", v("ip")).as_stmt())
            handler.append(
                assign(v("acc"), (v("acc") * 0x9E3779B1) ^ (v("acc") >> (c + 3)))
            )
        state = []
        for m in range(mem_reps):
            state.append(array_state(f"ctr{m}", "u32", 4096))
            handler.append(
                assign(
                    idx(v(f"ctr{m}"), v("acc") % 4096),
                    idx(v(f"ctr{m}"), v("acc") % 4096) + 1,
                )
            )
        for c in range(ctm_reps):
            # Payload-buffer traffic (CTM), dnsproxy-style parsing.
            handler.append(
                assign(
                    v("acc"),
                    v("acc")
                    ^ C.CallExpr(
                        "payload_byte", [C.IntLit(c)], receiver=v("pkt")
                    ),
                )
            )
        handler.append(pkt("send", 0).as_stmt())
        return ElementDef(name=name, state=state, handler=handler)

    def build_candidate_pool(
        self,
        n_programs: int = 24,
        spec: Optional[WorkloadSpec] = None,
        seed: Optional[int] = None,
    ) -> Tuple[List[NFCandidate], WorkloadCharacter]:
        """Synthesize a pool of NFs with host profiles (the paper
        randomly selects training NFs to colocate).

        The default workload is cache-hostile (many short flows):
        colocation interference "primarily stems from contention at the
        memory subsystems", so a pool that never touches DRAM would
        make every pair trivially friendly.  Candidates are generated
        in excess and subsampled to span the arithmetic-intensity
        range.
        """
        seed = self.seed if seed is None else seed
        spec = spec or WorkloadSpec(
            name="coloc_train",
            n_flows=300_000,
            zipf_alpha=0.4,
            n_packets=300,
        )
        stats = extract_stats(all_elements())
        gen = ClickGen(stats, seed=seed)
        trace = generate_trace(spec, seed=seed)
        raw: List[NFCandidate] = []
        for element in gen.elements(n_programs * 2, prefix="coloc"):
            prepared = prepare_element(element)
            interp = Interpreter(prepared.module, seed=seed)
            profile = interp.run_trace(trace)
            raw.append(make_candidate(prepared, profile))
        # Keep a memory-per-packet spread: the heaviest half plus an
        # even subsample of the rest.
        raw.sort(key=lambda c: -c.memory_per_pkt)
        heavy = raw[: n_programs // 2]
        rest = raw[n_programs // 2 :]
        step = max(1, len(rest) // max(n_programs - len(heavy), 1))
        pool = heavy + rest[::step][: n_programs - len(heavy)]
        # Parametric compute x memory x packet-buffer grid
        # (decorrelated coverage over the interference drivers).
        for compute_reps in (0, 1, 3):
            for mem_reps in (0, 2, 6, 12):
                for ctm_reps in (0, 24):
                    element = self._grid_element(
                        f"grid_c{compute_reps}m{mem_reps}p{ctm_reps}",
                        compute_reps, mem_reps, ctm_reps,
                    )
                    prepared = prepare_element(element)
                    interp = Interpreter(prepared.module, seed=seed)
                    profile = interp.run_trace(trace)
                    pool.append(make_candidate(prepared, profile))
        return pool, characterize(spec)

    def fit(
        self,
        pool: Sequence[NFCandidate],
        workload: WorkloadCharacter,
        n_groups: int = 40,
        group_size: int = 5,
        seed: Optional[int] = None,
    ) -> "ColocationAdvisor":
        """Sample groups of candidate pairs and learn to rank them by
        measured colocation friendliness."""
        seed = self.seed if seed is None else seed
        rng = np.random.default_rng(seed)
        X: List[np.ndarray] = []
        relevance: List[float] = []
        query_ids: List[int] = []
        for query in range(n_groups):
            losses: List[float] = []
            feats: List[np.ndarray] = []
            for _ in range(group_size):
                i, j = rng.choice(len(pool), size=2, replace=False)
                result = self.measure_pair(pool[i], pool[j], workload)
                losses.append(self.pair_loss(result))
                feats.append(pair_features(pool[i], pool[j]))
            # Lower loss -> higher relevance (dense ranks).
            order = np.argsort(np.argsort(losses))
            rel = (len(losses) - 1 - order).astype(float)
            X.extend(feats)
            relevance.extend(rel.tolist())
            query_ids.extend([query] * len(feats))
        self.ranker.fit(np.stack(X), np.asarray(relevance), np.asarray(query_ids))
        return self

    # -- uniform advisor protocol ---------------------------------------
    def advise(
        self,
        prepared: PreparedNF,
        profile,
        workload: Optional[WorkloadCharacter] = None,
    ) -> NFCandidate:
        """Uniform advisor entry point: the per-NF colocation profile
        (an :class:`NFCandidate`) ready for :meth:`rank_pairs`."""
        return make_candidate(prepared, profile)

    def state_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "objective": self.objective,
            "ranker": self.ranker,
        }

    def load_state_dict(self, state: Dict[str, object]) -> "ColocationAdvisor":
        objective = str(state["objective"])
        if objective not in OBJECTIVES:
            raise ValueError(f"unknown objective {objective!r}")
        self.seed = int(state["seed"])
        self.objective = objective
        self.ranker = state["ranker"]
        return self

    # -- inference -----------------------------------------------------------
    def rank_pairs(
        self, pairs: Sequence[Tuple[NFCandidate, NFCandidate]]
    ) -> List[int]:
        """Indices of ``pairs`` ordered friendliest-first."""
        X = np.stack([pair_features(a, b) for a, b in pairs])
        return list(self.ranker.rank(X))

    def score_pairs(
        self, pairs: Sequence[Tuple[NFCandidate, NFCandidate]]
    ) -> np.ndarray:
        X = np.stack([pair_features(a, b) for a, b in pairs])
        return self.ranker.score(X)


def ranking_accuracy(
    losses_per_query: Sequence[Sequence[float]],
    rankings: Sequence[Sequence[int]],
    k: int,
    tolerance: float = 0.01,
) -> float:
    """Tie-aware top-k accuracy: a query counts as a hit when any of
    the predicted top-k pairs has a measured loss within ``tolerance``
    of that query's minimum.  (Many candidate pairs are exactly
    equally friendly — e.g. zero loss — and suggesting any of them is
    suggesting "the best strategy".)"""
    hits = 0
    total = 0
    for losses, ranking in zip(losses_per_query, rankings):
        losses = list(losses)
        best = min(losses)
        total += 1
        if min(losses[i] for i in list(ranking)[:k]) <= best + tolerance:
            hits += 1
    return hits / total if total else 0.0
