"""Cross-target comparison: "which NIC should this NF be offloaded to?"

With pluggable backends (:mod:`repro.nic.targets`) Clara can do more
than predict how an NF behaves on one device — it can run the full
insight pipeline against *every* registered target and rank the
devices.  For each target the comparison:

1. analyses the element with that target's trained Clara (per-target
   predictor/scale-out models — the compilers differ, so the learned
   mappings differ);
2. applies the insights (``Clara.port_config``) and compiles the NF
   for the target;
3. simulates the ported NF on the target's machine model at the
   suggested core count.

Targets are ranked by predicted throughput (descending), latency
(ascending) as the tie-break — the same objective ordering the paper's
scale-out analysis uses.  Lint totals ride along so a reader can see
*why* a device loses (e.g. state pinned to DRAM on a scratch-starved
DPU).

The result is a schema-versioned payload (``cross_target_comparison``)
emitted by ``clara analyze <element> --target all``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.click.ast import ElementDef
from repro.core.pipeline import AnalysisResult, Clara
from repro.nic.compiler import compile_module
from repro.obs import get_logger, span
from repro.workload.spec import WorkloadSpec

log = get_logger(__name__)

__all__ = [
    "CROSS_TARGET_SCHEMA",
    "CrossTargetComparison",
    "TargetOutcome",
    "compare_targets",
]

#: version of the ``cross_target_comparison`` payload layout.
CROSS_TARGET_SCHEMA = 1


@dataclass
class TargetOutcome:
    """One target's predicted end-to-end result for the NF."""

    target: str
    display_name: str
    throughput_mpps: float
    latency_us: float
    per_packet_cycles: float
    bound: str
    cores: int
    n_lint_errors: int
    n_lint_warnings: int
    analysis: Optional[AnalysisResult] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "display_name": self.display_name,
            "throughput_mpps": round(self.throughput_mpps, 6),
            "latency_us": round(self.latency_us, 6),
            "per_packet_cycles": round(self.per_packet_cycles, 3),
            "bound": self.bound,
            "cores": int(self.cores),
            "lint": {
                "n_errors": int(self.n_lint_errors),
                "n_warnings": int(self.n_lint_warnings),
            },
        }


@dataclass
class CrossTargetComparison:
    """Every target's outcome plus the ranking over them."""

    element: str
    workload: str
    outcomes: List[TargetOutcome] = field(default_factory=list)

    @property
    def ranking(self) -> List[TargetOutcome]:
        """Outcomes best-first: throughput down, latency as tie-break."""
        return sorted(
            self.outcomes,
            key=lambda o: (-o.throughput_mpps, o.latency_us),
        )

    @property
    def best(self) -> TargetOutcome:
        if not self.outcomes:
            raise ValueError("comparison has no outcomes")
        return self.ranking[0]

    def _reason(self) -> str:
        ranked = self.ranking
        best = ranked[0]
        if len(ranked) == 1:
            return f"only one target compared ({best.target})"
        runner = ranked[1]
        if runner.throughput_mpps > 0:
            gain = best.throughput_mpps / runner.throughput_mpps
            clause = f"{gain:.2f}x the throughput of {runner.target}"
        else:
            clause = f"{runner.target} predicts no throughput"
        detail = f"predicted {best.throughput_mpps:.2f} Mpps ({best.bound}-bound)"
        if best.n_lint_errors:
            detail += f", but with {best.n_lint_errors} lint error(s)"
        return f"{clause}; {detail}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": CROSS_TARGET_SCHEMA,
            "kind": "cross_target_comparison",
            "element": self.element,
            "workload": self.workload,
            "ranking": [
                {**outcome.to_dict(), "rank": rank}
                for rank, outcome in enumerate(self.ranking, start=1)
            ],
            "recommendation": {
                "target": self.best.target,
                "reason": self._reason(),
            },
        }


def evaluate_on_target(
    clara: Clara,
    element: Union[ElementDef, str],
    spec: WorkloadSpec,
    trace_seed: int = 0,
) -> TargetOutcome:
    """Analyse + port + simulate one element on one trained Clara's
    target, at the suggested core count."""
    analysis = clara.analyze(element, spec, trace_seed=trace_seed)
    config = clara.port_config(analysis)
    program = compile_module(
        analysis.prepared.module, config, target=clara.nic.target
    )
    perf = clara.nic.simulate(
        program, analysis.block_freq, analysis.workload, cores=config.cores
    )
    report = analysis.report
    n_errors = sum(1 for d in report.diagnostics if d.severity == "error")
    n_warnings = sum(1 for d in report.diagnostics if d.severity == "warning")
    return TargetOutcome(
        target=clara.nic.target.name,
        display_name=clara.nic.target.display_name,
        throughput_mpps=perf.throughput_mpps,
        latency_us=perf.latency_us,
        per_packet_cycles=perf.per_packet_cycles,
        bound=perf.bound,
        cores=config.cores,
        n_lint_errors=n_errors,
        n_lint_warnings=n_warnings,
        analysis=analysis,
    )


def compare_targets(
    claras: Mapping[str, Clara],
    element: Union[ElementDef, str],
    spec: WorkloadSpec,
    trace_seed: int = 0,
) -> CrossTargetComparison:
    """Rank ``claras``' targets for one (element, workload) pair.

    ``claras`` maps registry target names to Claras trained *for that
    target* (a model trained against the NFP compiler knows nothing
    about the DPU's).  Needs at least two entries to be a comparison.
    """
    if len(claras) < 2:
        raise ValueError(
            "compare_targets needs trained Claras for at least two targets"
        )
    element_name = element if isinstance(element, str) else element.name
    comparison = CrossTargetComparison(element=element_name, workload=spec.name)
    with span("compare_targets", element=element_name, n=len(claras)):
        for name in sorted(claras):
            with span("evaluate_target", target=name):
                outcome = evaluate_on_target(
                    claras[name], element, spec, trace_seed=trace_seed
                )
            comparison.outcomes.append(outcome)
            log.info(
                "compare: %s on %s -> %.2f Mpps / %.2f us",
                element_name, name,
                outcome.throughput_mpps, outcome.latency_us,
            )
    return comparison
