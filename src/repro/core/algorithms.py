"""Algorithm identification for accelerator offloading (Section 4.1).

Clara "uses learning to perform pattern matches against well-known
accelerator algorithms": SPE subsequence features (+ a few handcrafted
ones, e.g. the pointer-chasing signature of LPM loops) feed one binary
SVM per accelerator class.  The curated corpus deliberately spans
implementation diversity — bitwise vs. table-driven CRCs, different
polynomials and widths, loop vs. unrolled forms; linear-scan vs. trie
LPMs — because "the same functionality can be implemented differently
by different developers".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.click import ast as C
from repro.click.ast import ElementDef, Stmt
from repro.click.elements._dsl import (
    array_state,
    assign,
    brk,
    decl,
    eq,
    fld,
    for_,
    idx,
    if_,
    lit,
    lt,
    ne,
    pkt,
    scalar_state,
    v,
    while_,
)
from repro.core.prepare import PreparedNF, prepare_element
from repro.ml.spe import SequentialPatternExtractor
from repro.ml.svm import LinearSVM
from repro.synthesis.generator import ClickGen
from repro.synthesis.stats import extract_stats

#: Accelerator classes with engines on the simulated NIC.  The paper's
#: Section 5.3: "On Netronome, there are acceleration engines for LPM
#: (longest-prefix match), CRC, and other crypto algorithms (e.g., AES,
#: MD5), although typical NFs do not involve cryptographic algorithms."
ACCEL_CLASSES = ("crc", "lpm", "crypto")


# ---------------------------------------------------------------------------
# Corpus construction: diverse implementations of accelerator algorithms.
# ---------------------------------------------------------------------------

def _crc_bitwise_element(
    name: str, poly: int, width: int, reflected: bool, rounds: int,
    data_source: str = "xor2",
) -> ElementDef:
    """Bitwise CRC over one header word, parameterized like real-world
    implementations differ: polynomial, width, bit order, unrolling,
    and how the input word is assembled (``data_source``)."""
    mask = (1 << width) - 1
    top_bit = 1 << (width - 1)
    if reflected:
        step = [
            decl("lsb", "u32", v("crc") & 1),
            assign(v("crc"), v("crc") >> 1),
            if_(v("lsb"), [assign(v("crc"), v("crc") ^ (poly & mask))]),
        ]
    else:
        step = [
            decl("msb", "u32", v("crc") & top_bit),
            assign(v("crc"), (v("crc") << 1) & mask),
            if_(v("msb"), [assign(v("crc"), v("crc") ^ (poly & mask))]),
        ]
    if data_source == "single":
        data = fld(v("ip"), "src_addr")
    elif data_source == "sum":
        data = fld(v("ip"), "src_addr") + fld(v("ip"), "ip_id")
    else:
        data = fld(v("ip"), "src_addr") ^ fld(v("ip"), "dst_addr")
    body: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("data", "u32", data),
        decl("crc", "u32", lit(mask)),
        assign(v("crc"), v("crc") ^ v("data")),
        for_("bit", 0, rounds, step),
        assign(v("crc"), v("crc") ^ mask),
        assign(v("checksum_out"), v("crc")),
        pkt("send", 0).as_stmt(),
    ]
    return ElementDef(
        name=name,
        state=[scalar_state("checksum_out", "u32")],
        handler=body,
        description=f"CRC{width} bitwise, poly={poly:#x}, reflected={reflected}",
    )


def _crc_table_element(name: str, width: int) -> ElementDef:
    """Table-driven CRC (byte-at-a-time lookup + xor/shift fold)."""
    mask = (1 << width) - 1
    body: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("data", "u32", fld(v("ip"), "src_addr")),
        decl("crc", "u32", lit(mask)),
        for_(
            "byte_i",
            0,
            4,
            [
                decl("b", "u32", (v("data") >> (v("byte_i") << 3)) & 0xFF),
                decl("tbl_idx", "u32", (v("crc") ^ v("b")) & 0xFF),
                assign(
                    v("crc"),
                    (v("crc") >> 8) ^ idx(v("crc_table"), v("tbl_idx")),
                ),
            ],
        ),
        assign(v("checksum_out"), v("crc") ^ mask),
        pkt("send", 0).as_stmt(),
    ]
    return ElementDef(
        name=name,
        state=[
            array_state("crc_table", "u32", 256),
            scalar_state("checksum_out", "u32"),
        ],
        handler=body,
        description=f"CRC{width} table-driven",
    )


def _lpm_linear_element(
    name: str, n_rules: int, style: str = "break_first",
    epilogue: str = "send_port",
) -> ElementDef:
    """Linear-scan LPM over (prefix, masklen) arrays.

    ``style`` and ``epilogue`` vary the implementation the way real
    developers do (first-match-on-sorted-rules vs. track-best-match;
    direct send vs. result-store vs. TTL handling) so the learned
    features capture the *match loop*, not the surrounding shell.
    """
    if style == "break_first":
        loop_body: List[Stmt] = [
            decl("mlen", "u32", idx(v("masklens"), v("i"))),
            decl("m", "u32", lit(0xFFFFFFFF) << (32 - v("mlen"))),
            if_(
                eq(v("dst") & v("m"), idx(v("prefixes"), v("i"))),
                [assign(v("port"), idx(v("ports"), v("i"))), brk()],
            ),
            assign(v("i"), v("i") + 1),
        ]
    else:  # scan_best: examine every rule, keep the longest match.
        loop_body = [
            decl("mlen", "u32", idx(v("masklens"), v("i"))),
            decl("m", "u32", lit(0xFFFFFFFF) << (32 - v("mlen"))),
            if_(
                eq(v("dst") & v("m"), idx(v("prefixes"), v("i"))),
                [
                    if_(
                        C.CmpExpr(">", v("mlen"), v("best")),
                        [
                            assign(v("best"), v("mlen")),
                            assign(v("port"), idx(v("ports"), v("i"))),
                        ],
                    )
                ],
            ),
            assign(v("i"), v("i") + 1),
        ]
    body: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("dst", "u32", fld(v("ip"), "dst_addr")),
        decl("port", "u32", lit(0)),
        decl("best", "u32", lit(0)),
        decl("i", "u32", lit(0)),
        while_(lt(v("i"), lit(n_rules)), loop_body, max_trips=4096),
    ]
    if epilogue == "send_port":
        body.append(pkt("send", v("port")).as_stmt())
    elif epilogue == "store_send":
        body.append(assign(v("route_out"), v("port")))
        body.append(pkt("send", 0).as_stmt())
    else:  # ttl_check
        body.extend(
            [
                assign(fld(v("ip"), "ip_ttl"), fld(v("ip"), "ip_ttl") - 1),
                if_(
                    eq(fld(v("ip"), "ip_ttl"), 0),
                    [pkt("drop").as_stmt()],
                    [pkt("send", v("port")).as_stmt()],
                ),
            ]
        )
    return ElementDef(
        name=name,
        state=[
            array_state("prefixes", "u32", n_rules),
            array_state("masklens", "u32", n_rules),
            array_state("ports", "u32", n_rules),
            scalar_state("route_out", "u32"),
        ],
        handler=body,
        description=f"LPM linear scan ({style}/{epilogue}) over {n_rules} rules",
    )


def _lpm_trie_element(name: str, depth: int) -> ElementDef:
    """Multi-bit trie walk: node index chases child pointers held in a
    node array — the paper's hand-noted LPM feature ("distinct pointer
    chasing behaviors, moving from one address to a child address in a
    bounded loop")."""
    body: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("dst", "u32", fld(v("ip"), "dst_addr")),
        decl("node", "u32", lit(0)),
        decl("best", "u32", lit(0)),
        for_(
            "level",
            0,
            depth,
            [
                decl("nibble", "u32", (v("dst") >> (28 - (v("level") << 2))) & 0xF),
                decl("slot", "u32", (v("node") << 4) | v("nibble")),
                decl("entry", "u32", idx(v("trie_nodes"), v("slot") % 4096)),
                if_(
                    ne(v("entry") & 0x80000000, 0),
                    [assign(v("best"), v("entry") & 0xFFFF)],
                ),
                decl("child", "u32", v("entry") & 0xFFF),
                if_(eq(v("child"), 0), [brk()]),
                assign(v("node"), v("child")),
            ],
        ),
        pkt("send", v("best")).as_stmt(),
    ]
    return ElementDef(
        name=name,
        state=[array_state("trie_nodes", "u32", 4096)],
        handler=body,
        description=f"LPM {depth}-level trie walk",
    )


def _loop_negative_element(name: str, flavor: str) -> ElementDef:
    """Shell-matched negatives: same prologue (header read), same
    epilogue (store result + send), same loop scaffolding as the CRC
    positives — but folding loops that are *not* CRC.  These force the
    SPE miner to key on the algorithm body, not on the handler shell.
    """
    body: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("data", "u32", fld(v("ip"), "src_addr")),
        decl("acc", "u32", lit(0)),
    ]
    if flavor == "checksum_fold":
        body.append(
            for_(
                "i",
                0,
                8,
                [
                    assign(v("acc"), v("acc") + ((v("data") >> (v("i") << 2)) & 0xF)),
                    if_(
                        ne(v("acc") & 0x10000, 0),
                        [assign(v("acc"), (v("acc") & 0xFFFF) + 1)],
                    ),
                ],
            )
        )
    elif flavor == "byte_sum":
        body.append(
            for_(
                "i",
                0,
                4,
                [
                    decl("b", "u32", (v("data") >> (v("i") << 3)) & 0xFF),
                    assign(v("acc"), v("acc") + v("b") + (v("b") >> 4)),
                ],
            )
        )
    elif flavor == "rotate_mix":
        body.append(
            for_(
                "i",
                0,
                8,
                [
                    assign(v("acc"), (v("acc") << 3) | (v("acc") >> 29)),
                    assign(v("acc"), v("acc") + (v("data") & 0xFF)),
                    assign(v("data"), v("data") >> 4),
                ],
            )
        )
    else:  # flag_test: the load-local-then-branch idiom, sans CRC.
        body.append(
            for_(
                "i",
                0,
                8,
                [
                    decl("b", "u32", (v("data") >> v("i")) & 0xFF),
                    decl("flag", "u32", v("b") & 1),
                    if_(v("flag"), [assign(v("acc"), v("acc") + v("b"))]),
                    assign(v("data"), v("data") >> 1),
                ],
            )
        )
    body.extend(
        [
            assign(v("checksum_out"), v("acc")),
            pkt("send", 0).as_stmt(),
        ]
    )
    return ElementDef(
        name=name,
        state=[scalar_state("checksum_out", "u32")],
        handler=body,
        description=f"{flavor} fold loop (shell-matched negative)",
    )


def _array_walk_negative(name: str, flavor: str, entries: int = 64) -> ElementDef:
    """Array-walking negatives: loops over state arrays that are *not*
    longest-prefix matches (counters, table sums, sliding maxima) —
    they share LPM's variable-indexed loads without its masked-compare
    semantics."""
    body: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("dst", "u32", fld(v("ip"), "dst_addr")),
        decl("acc", "u32", lit(0)),
        decl("i", "u32", lit(0)),
    ]
    if flavor == "table_sum":
        loop = [
            assign(v("acc"), v("acc") + idx(v("table"), v("i"))),
            assign(v("i"), v("i") + 1),
        ]
    elif flavor == "sliding_max":
        loop = [
            decl("cell", "u32", idx(v("table"), v("i"))),
            if_(
                C.CmpExpr(">", v("cell"), v("acc")),
                [assign(v("acc"), v("cell"))],
            ),
            assign(v("i"), v("i") + 1),
        ]
    else:  # bucket_update: hash-indexed counter touches
        loop = [
            decl("slot", "u32", ((v("dst") >> v("i")) ^ v("i")) % entries),
            assign(idx(v("table"), v("slot")), idx(v("table"), v("slot")) + 1),
            assign(v("i"), v("i") + 1),
        ]
    body.append(while_(lt(v("i"), lit(8)), loop, max_trips=64))
    body.extend(
        [
            assign(v("checksum_out"), v("acc")),
            pkt("send", 0).as_stmt(),
        ]
    )
    return ElementDef(
        name=name,
        state=[
            array_state("table", "u32", entries),
            scalar_state("checksum_out", "u32"),
        ],
        handler=body,
        description=f"{flavor} array walk (LPM-shaped negative)",
    )


def _md5_round_element(name: str, rounds: int = 16) -> ElementDef:
    """MD5-style compression rounds: the nonlinear F function,
    per-round additive constants, and data-dependent rotations — the
    crypto idiom the NIC's MD5 engine accelerates."""
    body: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("a", "u32", lit(0x67452301)),
        decl("b", "u32", lit(0xEFCDAB89)),
        decl("c", "u32", lit(0x98BADCFE)),
        decl("d", "u32", lit(0x10325476)),
        decl("m", "u32", fld(v("ip"), "src_addr")),
        for_(
            "r",
            0,
            rounds,
            [
                # F(b,c,d) = (b & c) | (~b & d)
                decl("f", "u32", (v("b") & v("c")) | ((v("b") ^ 0xFFFFFFFF) & v("d"))),
                decl("tmp", "u32", v("d")),
                assign(v("d"), v("c")),
                assign(v("c"), v("b")),
                decl(
                    "sum",
                    "u32",
                    (v("a") + v("f") + 0x5A827999 + v("m")) & 0xFFFFFFFF,
                ),
                # Rotate left by a round-dependent amount.
                decl("rot", "u32", (v("r") & 3) * 5 + 7),
                assign(
                    v("b"),
                    (v("b") + ((v("sum") << v("rot")) | (v("sum") >> (32 - v("rot")))))
                    & 0xFFFFFFFF,
                ),
                assign(v("a"), v("tmp")),
                assign(v("m"), (v("m") * 0x41C64E6D + 0x3039) & 0xFFFFFFFF),
            ],
        ),
        assign(v("digest_out"), v("a") ^ v("b") ^ v("c") ^ v("d")),
        pkt("send", 0).as_stmt(),
    ]
    return ElementDef(
        name=name,
        state=[scalar_state("digest_out", "u32")],
        handler=body,
        description=f"MD5-style compression, {rounds} rounds",
    )


def _aes_sub_element(name: str, rounds: int = 4) -> ElementDef:
    """AES-style substitution-permutation rounds: S-box lookups from a
    256-entry table, byte shuffles, and round-key xors."""
    body: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("state0", "u32", fld(v("ip"), "src_addr")),
        decl("rk", "u32", fld(v("ip"), "dst_addr")),
        for_(
            "r",
            0,
            rounds,
            [
                # SubBytes via table lookups, byte at a time.
                decl("b0", "u32", idx(v("sbox_tab"), v("state0") & 0xFF)),
                decl("b1", "u32", idx(v("sbox_tab"), (v("state0") >> 8) & 0xFF)),
                decl("b2", "u32", idx(v("sbox_tab"), (v("state0") >> 16) & 0xFF)),
                decl("b3", "u32", idx(v("sbox_tab"), (v("state0") >> 24) & 0xFF)),
                # ShiftRows-ish byte permutation + AddRoundKey.
                assign(
                    v("state0"),
                    (v("b1") | (v("b2") << 8) | (v("b3") << 16) | (v("b0") << 24))
                    ^ v("rk"),
                ),
                # Next round key (toy key schedule).
                assign(v("rk"), ((v("rk") << 1) | (v("rk") >> 31)) ^ 0x1B),
            ],
        ),
        assign(v("cipher_out"), v("state0")),
        pkt("send", 0).as_stmt(),
    ]
    return ElementDef(
        name=name,
        state=[
            array_state("sbox_tab", "u32", 256),
            scalar_state("cipher_out", "u32"),
        ],
        handler=body,
        description=f"AES-style SPN, {rounds} rounds",
    )


def _hash_negative_element(name: str, flavor: str) -> ElementDef:
    """Hard negatives: bit-twiddling hash functions that are NOT CRC
    (no conditional-xor-by-polynomial loop)."""
    ip = v("ip")
    if flavor == "fnv":
        body = [
            decl("ip", "ip_hdr*", pkt("ip_header")),
            decl("h", "u32", lit(0x811C9DC5)),
            for_(
                "i",
                0,
                4,
                [
                    decl("b", "u32", (fld(ip, "src_addr") >> (v("i") << 3)) & 0xFF),
                    assign(v("h"), v("h") ^ v("b")),
                    assign(v("h"), (v("h") * 0x01000193) & 0xFFFFFFFF),
                ],
            ),
            assign(v("hash_out"), v("h")),
            pkt("send", 0).as_stmt(),
        ]
    else:  # jenkins-style avalanche
        body = [
            decl("ip", "ip_hdr*", pkt("ip_header")),
            decl("h", "u32", fld(ip, "src_addr") ^ fld(ip, "dst_addr")),
            assign(v("h"), (v("h") + 0x7ED55D16 + (v("h") << 12)) & 0xFFFFFFFF),
            assign(v("h"), (v("h") ^ 0xC761C23C) ^ (v("h") >> 19)),
            assign(v("h"), (v("h") + 0x165667B1 + (v("h") << 5)) & 0xFFFFFFFF),
            assign(v("h"), ((v("h") + 0xD3A2646C) ^ (v("h") << 9)) & 0xFFFFFFFF),
            assign(v("h"), (v("h") + 0xFD7046C5 + (v("h") << 3)) & 0xFFFFFFFF),
            assign(v("h"), (v("h") ^ 0xB55A4F09) ^ (v("h") >> 16)),
            assign(v("hash_out"), v("h")),
            pkt("send", 0).as_stmt(),
        ]
    return ElementDef(
        name=name,
        state=[scalar_state("hash_out", "u32")],
        handler=body,
        description=f"{flavor} hash (negative example)",
    )


@dataclass
class AlgorithmCorpus:
    """Labelled training corpus: token sequences + one label each."""

    sequences: List[List[str]] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)  # "crc" | "lpm" | "none"
    names: List[str] = field(default_factory=list)

    def add(self, element: ElementDef, label: str) -> None:
        """Add the whole-program sample plus one sample per natural
        loop (the granularity the identifier classifies at inference
        time).  For algorithm elements the loop *is* the algorithm, so
        loop samples inherit the element label."""
        prepared = prepare_element(element)
        tokens: List[str] = []
        for block in prepared.module.handler.blocks:
            tokens.extend(prepared.tokens[block.name])
        self.sequences.append(tokens)
        self.labels.append(label)
        self.names.append(element.name)
        from repro.core.algorithms import AlgorithmIdentifier

        for region, blocks in AlgorithmIdentifier.regions(prepared).items():
            if not region.startswith("loop:"):
                continue
            loop_tokens: List[str] = []
            for name in blocks:
                loop_tokens.extend(prepared.tokens[name])
            if len(loop_tokens) < 6:
                continue
            self.sequences.append(loop_tokens)
            self.labels.append(label)
            self.names.append(f"{element.name}:{region}")

    def binary_labels(self, positive: str) -> List[int]:
        return [1 if label == positive else 0 for label in self.labels]


def build_algorithm_corpus(
    seed: int = 0, n_negatives: int = 40
) -> AlgorithmCorpus:
    """Curate the training corpus (the paper's 600+ Click elements and
    9000+ crawled programs, scaled to laptop size)."""
    corpus = AlgorithmCorpus()
    polys32 = (0xEDB88320, 0x04C11DB7, 0x82F63B78, 0x973AFB51)
    polys16 = (0xA001, 0x8005, 0x1021)
    i = 0
    data_sources = ("xor2", "single", "sum")
    for poly in polys32:
        for reflected in (True, False):
            for rounds in (8, 16, 32):
                corpus.add(
                    _crc_bitwise_element(
                        f"crc32_{i}", poly, 32, reflected, rounds,
                        data_source=data_sources[i % 3],
                    ),
                    "crc",
                )
                i += 1
    for poly in polys16:
        for reflected in (True, False):
            corpus.add(
                _crc_bitwise_element(f"crc16_{i}", poly, 16, reflected, 8), "crc"
            )
            i += 1
    for width in (16, 32):
        for j in range(3):
            corpus.add(_crc_table_element(f"crctab_{width}_{j}", width), "crc")
    styles = ("break_first", "scan_best")
    epilogues = ("send_port", "store_send", "ttl_check")
    for n_rules in (8, 32, 128, 512):
        for style in styles:
            for epilogue in epilogues:
                corpus.add(
                    _lpm_linear_element(
                        f"lpmlin_{n_rules}_{style}_{epilogue}",
                        n_rules,
                        style=style,
                        epilogue=epilogue,
                    ),
                    "lpm",
                )
    for depth in (2, 4, 8):
        for j in range(3):
            corpus.add(_lpm_trie_element(f"lpmtrie_{depth}_{j}", depth), "lpm")
    # Crypto engines (AES/MD5-style): present on the NIC "although
    # typical NFs do not involve cryptographic algorithms".
    for rounds in (8, 16, 32):
        for j in range(2):
            corpus.add(_md5_round_element(f"md5_{rounds}_{j}", rounds), "crypto")
    for rounds in (2, 4, 8):
        for j in range(2):
            corpus.add(_aes_sub_element(f"aes_{rounds}_{j}", rounds), "crypto")
    # Negatives: hash functions, shell-matched fold loops, and generic
    # synthesized elements.
    for j in range(6):
        corpus.add(_hash_negative_element(f"fnv_{j}", "fnv"), "none")
        corpus.add(_hash_negative_element(f"jenkins_{j}", "jenkins"), "none")
    for j in range(4):
        for flavor in ("checksum_fold", "byte_sum", "rotate_mix", "flag_test"):
            corpus.add(
                _loop_negative_element(f"{flavor}_{j}", flavor), "none"
            )
        for flavor in ("table_sum", "sliding_max", "bucket_update"):
            corpus.add(
                _array_walk_negative(f"{flavor}_{j}", flavor, entries=32 * (j + 1)),
                "none",
            )
    from repro.click.elements import all_elements

    stats = extract_stats(all_elements())
    gen = ClickGen(stats, seed=seed)
    for element in gen.elements(n_negatives, prefix="neg"):
        corpus.add(element, "none")
    return corpus


# ---------------------------------------------------------------------------
# Handcrafted features (Section 4.1: "We also augment this with
# manually extracted features").
# ---------------------------------------------------------------------------

def _window_count(tokens: Sequence[str], predicates, window: int = 6) -> int:
    """Count sliding windows in which every predicate matches some
    token (order-insensitive within the window)."""
    tokens = list(tokens)
    count = 0
    for start in range(max(len(tokens) - window + 1, 1)):
        chunk = tokens[start : start + window]
        if all(any(p(t) for t in chunk) for p in predicates):
            count += 1
    return count


def handcrafted_features(tokens: Sequence[str]) -> np.ndarray:
    n = max(len(tokens), 1)
    bitops = sum(
        1 for t in tokens if t.split()[0] in ("xor", "and", "or")
    )
    shifts = sum(1 for t in tokens if t.split()[0] in ("shl", "lshr", "ashr"))
    loads = sum(1 for t in tokens if t.startswith("load"))
    stores = sum(1 for t in tokens if t.startswith("store"))
    cmps = sum(1 for t in tokens if t.startswith("icmp"))
    branches = sum(1 for t in tokens if t.startswith("br"))
    geps = sum(1 for t in tokens if t.startswith("getelementptr"))
    muls = sum(1 for t in tokens if t.split()[0] == "mul")
    # Pointer chasing proxy: variable-indexed GEPs feeding loads.
    var_geps = sum(
        1 for t in tokens if t.startswith("getelementptr") and "VAR" in t
    )
    # CRC signature: a conditional branch followed closely by an
    # xor-with-constant (the poly fold) inside a shifting window.
    conditional_xor = _window_count(
        tokens,
        [
            lambda t: t == "br_cond",
            lambda t: t.startswith("xor") and " INT" in t,
            lambda t: t.split()[0] in ("lshr", "shl"),
        ],
        window=6,
    )
    # LPM signature (Section 4.1's manual feature): "distinct pointer
    # chasing behaviors, moving from one address to a child address in
    # a bounded loop" — stateful table loads compared for equality
    # under a mask/shift, steering a branch.
    masked_match = _window_count(
        tokens,
        [
            lambda t: t.startswith("load") and "mem_stateful" in t,
            lambda t: t.startswith("icmp eq"),
            lambda t: t.split()[0] in ("and", "shl", "lshr"),
            lambda t: t == "br_cond",
        ],
        window=8,
    )
    return np.array(
        [
            bitops / n,
            shifts / n,
            loads / n,
            stores / n,
            cmps / n,
            branches / n,
            geps / n,
            muls / n,
            var_geps / n,
            float(np.log1p(len(tokens))),
            conditional_xor / n,
            masked_match / n,
        ]
    )


class AlgorithmIdentifier:
    """SPE + SVM accelerator classifiers (one per accelerator)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.extractors: Dict[str, SequentialPatternExtractor] = {}
        self.svms: Dict[str, LinearSVM] = {}
        #: calibrated decision thresholds per accelerator.
        self.thresholds: Dict[str, float] = {}

    @staticmethod
    def _calibrate_threshold(scores: np.ndarray, labels: np.ndarray) -> float:
        """Pick the decision threshold maximizing training F0.5 — the
        raw SVM bias drifts with sampling noise, and the paper's
        operating point weighs precision over recall (96.6% vs 83.3%):
        a false accelerator suggestion costs a porting detour, a miss
        only costs an optimization."""
        beta2 = 0.5**2
        candidates = np.unique(scores)
        best_t, best_score = 0.0, -1.0
        for t in candidates:
            pred = scores > t
            tp = float(np.sum(pred & (labels == 1)))
            fp = float(np.sum(pred & (labels == 0)))
            fn = float(np.sum(~pred & (labels == 1)))
            precision = tp / (tp + fp) if tp + fp else 0.0
            recall = tp / (tp + fn) if tp + fn else 0.0
            if precision + recall == 0.0:
                continue
            fbeta = (
                (1 + beta2) * precision * recall
                / (beta2 * precision + recall)
            )
            if fbeta > best_score:
                best_t, best_score = float(t), fbeta
        return best_t

    def fit(self, corpus: AlgorithmCorpus) -> "AlgorithmIdentifier":
        for accel in ACCEL_CLASSES:
            labels = np.asarray(corpus.binary_labels(accel))
            # High support AND high confidence, per Section 4.1: "an
            # identifying feature should occur in many programs with
            # accelerator usage opportunities ... [and] almost never
            # appear in non-accelerator programs".
            extractor = SequentialPatternExtractor(
                min_len=2, max_len=3, min_support=0.4, min_confidence=0.9,
                max_patterns=48,
            )
            spe_features = extractor.fit_transform(
                corpus.sequences, labels.tolist()
            )
            features = self._combine(spe_features, corpus.sequences)
            svm = LinearSVM(lam=1e-3, epochs=30, seed=self.seed)
            svm.fit(features, labels)
            self.extractors[accel] = extractor
            self.svms[accel] = svm
            scores = svm.decision_function(features)
            self.thresholds[accel] = self._calibrate_threshold(scores, labels)
        return self

    @staticmethod
    def _combine(spe_features: np.ndarray, sequences) -> np.ndarray:
        """SPE occurrence counts are normalized to densities per 100
        tokens so a once-inlined helper scores like its multi-copy or
        whole-program counterparts (scale invariance)."""
        lengths = np.array(
            [max(len(list(s)), 1) for s in sequences], dtype=float
        )
        spe_density = spe_features / lengths[:, None] * 100.0
        manual = np.stack([handcrafted_features(s) for s in sequences])
        return np.concatenate([spe_density, manual], axis=1)

    def features(self, accel: str, sequences: Sequence[Sequence[str]]) -> np.ndarray:
        spe_features = self.extractors[accel].transform(sequences)
        return self._combine(spe_features, sequences)

    def classify_sequence(self, tokens: Sequence[str]) -> str:
        """Label one code region: an accelerator class or 'none'."""
        best_label, best_excess = "none", 0.0
        for accel in ACCEL_CLASSES:
            score = float(
                self.svms[accel].decision_function(
                    self.features(accel, [list(tokens)])
                )[0]
            )
            excess = score - self.thresholds.get(accel, 0.0)
            if excess > best_excess:
                best_label, best_excess = accel, excess
        return best_label

    def predict(self, sequences: Sequence[Sequence[str]]) -> List[str]:
        return [self.classify_sequence(s) for s in sequences]

    # -- applying to a prepared NF -------------------------------------
    @staticmethod
    def regions(prepared: PreparedNF) -> Dict[str, List[str]]:
        """Candidate code regions of an NF: each inlined helper's block
        group, the residual main body, and every natural loop of the
        main body (the paper classifies per code block; loops are the
        natural unit accelerator rewrites apply to)."""
        from repro.nfir.cfg import natural_loops

        regions: Dict[str, List[str]] = {}
        for block in prepared.module.handler.blocks:
            name = block.name
            if name.startswith("inl."):
                helper_name = name.split(".")[1]
                regions.setdefault(f"helper:{helper_name}", []).append(name)
            else:
                regions.setdefault("main", []).append(name)
        main_blocks = set(regions.get("main", ()))
        handler = prepared.module.handler
        layout = [b.name for b in handler.blocks]
        for header, body in natural_loops(handler).items():
            if header not in main_blocks:
                continue  # helper-internal loops live in their region
            loop_in_layout = [n for n in layout if n in body]
            regions[f"loop:{header}"] = loop_in_layout
        return regions

    def identify(self, prepared: PreparedNF) -> Dict[str, Tuple[str, List[str]]]:
        """Region name -> (accelerator label, block names) for regions
        classified as accelerator opportunities."""
        found: Dict[str, Tuple[str, List[str]]] = {}
        for region, block_names in self.regions(prepared).items():
            tokens: List[str] = []
            for name in block_names:
                tokens.extend(prepared.tokens[name])
            if len(tokens) < 6:
                continue
            label = self.classify_sequence(tokens)
            if label != "none":
                found[region] = (label, block_names)
        return found

    # -- uniform advisor protocol --------------------------------------
    def advise(
        self, prepared: PreparedNF, profile=None, workload=None
    ) -> Dict[str, Tuple[str, List[str]]]:
        """Uniform advisor entry point; identification is static, so
        the profile and workload are unused."""
        return self.identify(prepared)

    def state_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "extractors": self.extractors,
            "svms": self.svms,
            "thresholds": dict(self.thresholds),
        }

    def load_state_dict(self, state: Dict[str, object]) -> "AlgorithmIdentifier":
        self.seed = int(state["seed"])
        self.extractors = dict(state["extractors"])
        self.svms = dict(state["svms"])
        self.thresholds = dict(state["thresholds"])
        return self
