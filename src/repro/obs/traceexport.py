"""Chrome trace-event export of a recorded span forest.

Converts a :class:`~repro.obs.Tracer`'s spans into the Trace Event
Format consumed by Perfetto (https://ui.perfetto.dev) and the legacy
``chrome://tracing`` viewer: a ``{"traceEvents": [...]}`` JSON object
whose events are ``B``/``E`` (duration begin/end) pairs with
microsecond ``ts`` values.

Timestamps come from :attr:`~repro.obs.Span.start_ts` — the absolute
wall-clock instant the span opened — so events from different
invocations of the same process line up on a real timeline, and
:attr:`~repro.obs.Span.tid` keys each span to the thread that opened
it (the viewers render one track per ``tid``).

The CLI exposes this as ``--trace-out PATH`` on every subcommand::

    clara analyze aggcounter --trace-out trace.json
    # then load trace.json in https://ui.perfetto.dev
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from repro.obs.trace import Span

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
]


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    return str(value)


def _emit(
    span: Span,
    pid: int,
    events: List[Dict[str, Any]],
    lo_us: float = float("-inf"),
    hi_us: float = float("inf"),
) -> None:
    # Clamp into the parent's window: start_ts is wall-clock while
    # durations are perf_counter deltas, so a child's computed end can
    # overhang its parent by clock skew; viewers need strict nesting.
    begin_us = min(max(span.start_ts * 1e6, lo_us), hi_us)
    end_us = min(max((span.start_ts + span.duration_s) * 1e6, begin_us), hi_us)
    begin: Dict[str, Any] = {
        "name": span.name,
        "cat": "clara",
        "ph": "B",
        "ts": round(begin_us, 3),
        "pid": pid,
        "tid": span.tid,
    }
    if span.attrs:
        begin["args"] = _json_safe(span.attrs)
    events.append(begin)
    for child in span.children:
        _emit(child, pid, events, begin_us, end_us)
    events.append({
        "name": span.name,
        "cat": "clara",
        "ph": "E",
        "ts": round(end_us, 3),
        "pid": pid,
        "tid": span.tid,
    })


def chrome_trace_events(tracer: Any) -> List[Dict[str, Any]]:
    """The flat, ``ts``-ordered event list for a tracer's span forest.

    Events are generated in nesting order (parent ``B``, children,
    parent ``E``) and then stable-sorted by ``ts``, which keeps
    ``B``-before-``E`` ordering on timestamp ties — the invariant the
    viewers need to reconstruct the stack per thread.
    """
    events: List[Dict[str, Any]] = []
    pid = os.getpid()
    for root in getattr(tracer, "roots", ()):
        _emit(root, pid, events)
    events.sort(key=lambda event: event["ts"])
    return events


def to_chrome_trace(tracer: Any) -> Dict[str, Any]:
    """The full JSON-object form of the Trace Event Format."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"tool": "clara", "format": "chrome-trace-event"},
    }


def write_chrome_trace(tracer: Any, path: str) -> str:
    """Write the tracer's forest to ``path`` as trace-event JSON;
    returns the path for log messages."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(tracer), handle, indent=1)
        handle.write("\n")
    return path
