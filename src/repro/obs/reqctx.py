"""Request-scoped correlation context.

One :class:`RequestContext` follows a single request through the
serving machinery: the HTTP handler opens it (accepting a client-sent
``X-Clara-Request-Id`` or minting one), and everything that runs under
it — pipeline spans, prediction-cache lookups, journal events, log
records — can read the ambient request id without any parameter
threading.  The CLI opens one per invocation when ``--request-id`` is
given, so CLI runs correlate the same way daemon requests do.

The context lives in a :class:`contextvars.ContextVar`, which is
*per-thread* (each thread starts from a copy of the creating context
only when using ``contextvars`` propagation explicitly; a plain
``threading.Thread`` starts empty).  That isolation is exactly right
for the daemon — every request is handled on its own thread — but it
also means background threads (the predict-broker batcher) do not see
the submitting request's context automatically; the broker carries
request ids on its jobs and re-establishes a context around the batch
instead (see :mod:`repro.serve.broker`).
"""

from __future__ import annotations

import contextvars
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "RequestContext",
    "current_request",
    "current_request_id",
    "new_request_id",
    "use_request",
]

#: maximum accepted length of a client-supplied request id; longer
#: values are truncated rather than rejected (ids are correlation
#: hints, not protocol fields).
MAX_REQUEST_ID_LEN = 128


def new_request_id() -> str:
    """A fresh request id (UUID4 hex, 32 chars)."""
    return uuid.uuid4().hex


def sanitize_request_id(value: Optional[str]) -> str:
    """A usable request id from a client-supplied header value:
    strips whitespace, truncates to :data:`MAX_REQUEST_ID_LEN`, drops
    control characters, and mints a fresh id when nothing usable
    remains."""
    if value is None:
        return new_request_id()
    cleaned = "".join(
        ch for ch in str(value).strip() if ch.isprintable()
    )[:MAX_REQUEST_ID_LEN]
    return cleaned or new_request_id()


@dataclass
class RequestContext:
    """Correlation facts for one in-flight request."""

    request_id: str = field(default_factory=new_request_id)
    #: the endpoint (or CLI command) serving the request, for display.
    endpoint: str = ""

    def __post_init__(self) -> None:
        self.request_id = sanitize_request_id(self.request_id)


_current: contextvars.ContextVar[Optional[RequestContext]] = \
    contextvars.ContextVar("repro_request_context", default=None)


def current_request() -> Optional[RequestContext]:
    """The ambient :class:`RequestContext`, or ``None`` outside one."""
    return _current.get()


def current_request_id() -> Optional[str]:
    """The ambient request id, or ``None`` outside a request."""
    ctx = _current.get()
    return None if ctx is None else ctx.request_id


@contextmanager
def use_request(ctx: RequestContext) -> Iterator[RequestContext]:
    """Install ``ctx`` as the ambient request context for the scope::

        with use_request(RequestContext(request_id=rid, endpoint=path)):
            handle()

    Nesting restores the outer context on exit; each thread sees only
    the contexts it installed.
    """
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)
