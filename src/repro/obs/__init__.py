"""Observability: stage tracing, metrics, run reports, log config.

The paper's evaluation is entirely about *measured* per-stage behavior
(prediction error, stage costs, placement latency); this package gives
the reproduction the same visibility over itself:

* :mod:`repro.obs.trace` — nested :func:`span` context managers over
  every pipeline stage, recording wall time, call counts, and
  arbitrary attributes.  Disabled by default via a no-op tracer, so
  instrumentation stays permanently in library code at negligible
  cost; enable with :func:`set_tracer`/:func:`use_tracer`.
* :mod:`repro.obs.metrics` — a process-local
  :class:`MetricsRegistry` (counters, gauges, histograms) with
  ``to_dict()`` and Prometheus-text export; :func:`get_metrics` is the
  default registry the library updates (artifact-cache hits/misses,
  training and analysis run counts).
* :mod:`repro.obs.report` — :class:`RunReport`, the versioned
  JSON-serializable record of one traced invocation (stage timings,
  span attributes, metric snapshot).  The CLI's ``--profile`` and
  ``--json-report`` render it.
* :mod:`repro.obs.logconfig` — :func:`configure` wires ``repro.*``
  loggers to stderr at a verbosity; :func:`get_logger` is what library
  modules use.  ``fmt="json"`` switches to structured JSON lines with
  request/span ids stamped on every record.
* :mod:`repro.obs.reqctx` — :class:`RequestContext`, the
  contextvars-based request-correlation context: one id follows a
  request through spans, events, logs, cache lookups, and broker
  batches (:func:`use_request` / :func:`current_request_id`).
* :mod:`repro.obs.events` — :class:`EventJournal`, the bounded
  ring-buffer journal of typed, schema-versioned serving events
  (request start/finish, cache hit/miss, broker batch, lazy trains,
  slow-request captures); ``GET /v1/events`` and ``clara events``
  read it.
* :mod:`repro.obs.slo` — :class:`SloTracker`, sliding-window
  p50/p95/p99 + error rate per endpoint, the ``/healthz`` ok/degraded
  verdict and the ``slo_*`` gauges on ``/metrics``.
* :mod:`repro.obs.traceexport` — :func:`write_chrome_trace` turns a
  recorded span forest into Chrome trace-event JSON for Perfetto /
  ``chrome://tracing`` (the CLI's ``--trace-out``).
* :mod:`repro.obs.sampling` — :class:`SamplingProfiler`, a
  signal-based sampling profiler emitting flamegraph-ready collapsed
  stacks.
* :mod:`repro.obs.bench` — the continuous-benchmarking harness behind
  ``clara bench``: :func:`run_suite` times the declared pipeline
  workloads (median-of-N + MAD) into a schema-versioned
  :class:`BenchRun`, and :func:`compare_runs` grades regressions
  against a baseline artifact.

Typical enablement::

    from repro import obs

    with obs.use_tracer(obs.Tracer()) as tracer:
        clara.train(TrainConfig.quick(), cache="auto")
    report = obs.RunReport.collect("train", tracer, obs.get_metrics())
    print(report.render_profile())
"""

from repro.obs.bench import (
    BENCH_SCHEMA,
    BenchRun,
    compare_runs,
    run_suite,
)
from repro.obs.events import (
    EVENT_SCHEMA,
    Event,
    EventJournal,
    get_journal,
    set_journal,
)
from repro.obs.logconfig import JsonFormatter, configure, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    get_metrics,
    observe_latency,
    set_metrics,
    track_inflight,
    validate_exposition,
)
from repro.obs.report import RUN_REPORT_SCHEMA, RunReport
from repro.obs.reqctx import (
    RequestContext,
    current_request,
    current_request_id,
    new_request_id,
    use_request,
)
from repro.obs.sampling import SamplingProfiler
from repro.obs.slo import SloTracker, get_slo_tracker, set_slo_tracker
from repro.obs.trace import (
    NullTracer,
    Span,
    Tracer,
    current_span_id,
    get_tracer,
    set_tracer,
    span,
    use_scoped_tracer,
    use_tracer,
)
from repro.obs.traceexport import (
    chrome_trace_events,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchRun",
    "Counter",
    "EVENT_SCHEMA",
    "Event",
    "EventJournal",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NullTracer",
    "RUN_REPORT_SCHEMA",
    "RequestContext",
    "RunReport",
    "SamplingProfiler",
    "SloTracker",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "compare_runs",
    "configure",
    "current_request",
    "current_request_id",
    "current_span_id",
    "get_journal",
    "get_logger",
    "get_metrics",
    "get_slo_tracker",
    "get_tracer",
    "new_request_id",
    "observe_latency",
    "run_suite",
    "set_journal",
    "set_metrics",
    "set_slo_tracker",
    "set_tracer",
    "span",
    "to_chrome_trace",
    "track_inflight",
    "use_request",
    "use_scoped_tracer",
    "use_tracer",
    "validate_exposition",
    "write_chrome_trace",
]
