"""Observability: stage tracing, metrics, run reports, log config.

The paper's evaluation is entirely about *measured* per-stage behavior
(prediction error, stage costs, placement latency); this package gives
the reproduction the same visibility over itself:

* :mod:`repro.obs.trace` — nested :func:`span` context managers over
  every pipeline stage, recording wall time, call counts, and
  arbitrary attributes.  Disabled by default via a no-op tracer, so
  instrumentation stays permanently in library code at negligible
  cost; enable with :func:`set_tracer`/:func:`use_tracer`.
* :mod:`repro.obs.metrics` — a process-local
  :class:`MetricsRegistry` (counters, gauges, histograms) with
  ``to_dict()`` and Prometheus-text export; :func:`get_metrics` is the
  default registry the library updates (artifact-cache hits/misses,
  training and analysis run counts).
* :mod:`repro.obs.report` — :class:`RunReport`, the versioned
  JSON-serializable record of one traced invocation (stage timings,
  span attributes, metric snapshot).  The CLI's ``--profile`` and
  ``--json-report`` render it.
* :mod:`repro.obs.logconfig` — :func:`configure` wires ``repro.*``
  loggers to stderr at a verbosity; :func:`get_logger` is what library
  modules use.

Typical enablement::

    from repro import obs

    with obs.use_tracer(obs.Tracer()) as tracer:
        clara.train(TrainConfig.quick(), cache="auto")
    report = obs.RunReport.collect("train", tracer, obs.get_metrics())
    print(report.render_profile())
"""

from repro.obs.logconfig import configure, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.obs.report import RUN_REPORT_SCHEMA, RunReport
from repro.obs.trace import (
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "RUN_REPORT_SCHEMA",
    "RunReport",
    "Span",
    "Tracer",
    "configure",
    "get_logger",
    "get_metrics",
    "get_tracer",
    "set_metrics",
    "set_tracer",
    "span",
    "use_tracer",
]
