"""Process-local metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` hands out named instruments (optionally
labelled) and exports them as a plain dict (:meth:`~MetricsRegistry.to_dict`,
for :class:`~repro.obs.report.RunReport`) or in the Prometheus text
exposition format (:meth:`~MetricsRegistry.to_prometheus`, for
scraping once this grows a service endpoint).

Unlike the tracer there is no disabled variant — updating a counter is
one dict lookup and an integer add, cheap enough to leave on — but the
library only touches metrics on coarse events (cache hits, training
runs, analyses), never per packet or per block.
"""

from __future__ import annotations

import bisect
import re
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "get_metrics",
    "observe_latency",
    "set_metrics",
    "track_inflight",
    "validate_exposition",
]

#: default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: finer-grained bounds for per-call hot paths (``predictor.predict``,
#: one ILP solve, a K-means fit): these complete in micro- to
#: milliseconds, below the resolution of :data:`DEFAULT_BUCKETS`.
LATENCY_BUCKETS = (
    0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.005,
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition spec:
    backslash, double quote, and line feed must be written as ``\\\\``,
    ``\\"``, and ``\\n`` — raw, they corrupt the whole scrape (an
    error-message label with a quote would split the sample line)."""
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_str(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in key
    )
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_value(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def to_value(self) -> float:
        return self.value


class _HistogramTimer:
    """Context manager observing a wall-clock duration into a
    histogram on exit (including the exceptional path — a slow failure
    is still a latency sample)."""

    __slots__ = ("_histogram", "_start_s")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._start_s = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._histogram.observe(time.perf_counter() - self._start_s)
        return False


class Histogram:
    """Cumulative-bucket histogram of observed values."""

    kind = "histogram"

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        #: per-bucket counts; index len(bounds) is the +Inf bucket.
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def time(self) -> _HistogramTimer:
        """``with histogram.time(): ...`` records the block's duration
        in seconds as one observation."""
        return _HistogramTimer(self)

    def to_value(self) -> Dict[str, Any]:
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            running += bucket_count
            cumulative[f"le_{bound:g}"] = running
        cumulative["le_inf"] = self.count
        return {"count": self.count, "sum": self.sum, "buckets": cumulative}


class MetricsRegistry:
    """Named instruments, created on first use, exportable as a dict
    or Prometheus text."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, _LabelKey], Any] = {}

    def _get(self, factory, name: str, labels: Optional[Mapping[str, Any]]):
        key = (name, _label_key(labels or {}))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._get(lambda: Histogram(buckets), name, labels)

    def to_dict(self) -> Dict[str, Any]:
        """``{"name{label=...}": value}`` — counters/gauges as numbers,
        histograms as ``{count, sum, buckets}`` dicts."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {
            name + _label_str(label_key): metric.to_value()
            for (name, label_key), metric in items
        }

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (one sample per line,
        ``# TYPE`` headers per metric family)."""
        with self._lock:
            items = sorted(self._metrics.items())
        lines: List[str] = []
        seen_types: Dict[str, str] = {}
        for (name, label_key), metric in items:
            if name not in seen_types:
                seen_types[name] = metric.kind
                lines.append(f"# TYPE {name} {metric.kind}")
            labels = _label_str(label_key)
            if isinstance(metric, Histogram):
                running = 0
                for bound, bucket_count in zip(metric.bounds, metric.counts):
                    running += bucket_count
                    le = _label_key({"le": f"{bound:g}"})
                    lines.append(
                        f"{name}_bucket{_label_str(label_key + le)} {running}"
                    )
                inf = _label_key({"le": "+Inf"})
                lines.append(
                    f"{name}_bucket{_label_str(label_key + inf)} {metric.count}"
                )
                lines.append(f"{name}_sum{labels} {metric.sum:g}")
                lines.append(f"{name}_count{labels} {metric.count}")
            else:
                lines.append(f"{name}{labels} {metric.to_value():g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


# ---------------------------------------------------------------------------
# Exposition-format validation (tests + the CI serve-smoke scrape).
# ---------------------------------------------------------------------------

_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
#: a quoted label value: any run of non-special chars or a valid
#: escape (the only legal ones are \\, \", and \n).
_LABEL_VALUE_RE = re.compile(r'(?:[^"\\\n]|\\\\|\\"|\\n)*')
_SAMPLE_VALUE_RE = re.compile(
    r"[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf|NaN)"
)
_TYPE_KINDS = ("counter", "gauge", "histogram", "summary", "untyped")
#: suffixes a histogram family's samples may carry.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_sample_line(line: str) -> Optional[str]:
    """``None`` when ``line`` is a well-formed sample, else the error.
    Strict: exactly ``name[{labels}] value`` (no timestamps — this
    library never emits them)."""
    match = _METRIC_NAME_RE.match(line)
    if match is None:
        return "sample does not start with a metric name"
    pos = match.end()
    if pos < len(line) and line[pos] == "{":
        pos += 1
        while True:
            lmatch = _LABEL_NAME_RE.match(line, pos)
            if lmatch is None:
                return f"bad label name at column {pos}"
            pos = lmatch.end()
            if not line.startswith('="', pos):
                return f'label not followed by ="..." at column {pos}'
            pos += 2
            vmatch = _LABEL_VALUE_RE.match(line, pos)
            pos = vmatch.end()
            if pos >= len(line) or line[pos] != '"':
                return f"unterminated/illegal label value at column {pos}"
            pos += 1
            if pos < len(line) and line[pos] == ",":
                pos += 1
                continue
            break
        if pos >= len(line) or line[pos] != "}":
            return f"unterminated label set at column {pos}"
        pos += 1
    if pos >= len(line) or line[pos] != " ":
        return "metric name/labels not followed by a value"
    value = line[pos + 1:]
    if _SAMPLE_VALUE_RE.fullmatch(value) is None:
        return f"unparseable sample value {value!r}"
    return None


def validate_exposition(text: str) -> List[str]:
    """Line-level validation of a Prometheus text-format payload.

    Returns a list of ``"line N: problem"`` strings (empty = valid).
    Checks that every ``# TYPE`` header is well formed, every sample
    line parses (names, label syntax, escaped label values, float
    value), and every sample belongs to a declared family — with
    histogram samples allowed only their ``_bucket``/``_sum``/
    ``_count`` suffixes.  Used by the metrics test suite and the CI
    serve-smoke scrape, so an escaping bug fails the build rather than
    a scraper at 3am.
    """
    errors: List[str] = []
    families: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _TYPE_KINDS:
                    errors.append(f"line {lineno}: malformed TYPE header")
                elif _METRIC_NAME_RE.fullmatch(parts[2]) is None:
                    errors.append(f"line {lineno}: bad family name"
                                  f" {parts[2]!r}")
                elif parts[2] in families:
                    errors.append(f"line {lineno}: duplicate TYPE for"
                                  f" {parts[2]!r}")
                else:
                    families[parts[2]] = parts[3]
            # other comments (# HELP, free text) are legal and skipped
            continue
        problem = _parse_sample_line(line)
        if problem is not None:
            errors.append(f"line {lineno}: {problem}")
            continue
        name = _METRIC_NAME_RE.match(line).group(0)
        family = families.get(name)
        if family is None:
            for suffix in _HISTOGRAM_SUFFIXES:
                base = name[: -len(suffix)] if name.endswith(suffix) else None
                if base and families.get(base) in ("histogram", "summary"):
                    family = families[base]
                    break
        if family is None:
            errors.append(
                f"line {lineno}: sample {name!r} has no TYPE header"
            )
    return errors


_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-local default registry instrumented code uses."""
    return _registry


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


class _InflightTracker:
    """Context manager holding a gauge up for the duration of a block
    (request handlers use one per endpoint so scrapes see concurrent
    load, not just completed counts)."""

    __slots__ = ("_gauge",)

    def __init__(self, gauge: Gauge) -> None:
        self._gauge = gauge

    def __enter__(self) -> "_InflightTracker":
        self._gauge.inc()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._gauge.dec()
        return False


def track_inflight(name: str, **labels: Any) -> _InflightTracker:
    """Count a block as in-flight on a gauge of the default registry::

        with track_inflight("http_inflight_requests", endpoint="/v1/analyze"):
            handle(request)

    The gauge goes up on entry and back down on every exit path, so its
    instantaneous value is the number of blocks currently executing.
    """
    return _InflightTracker(_registry.gauge(name, **labels))


def observe_latency(
    name: str,
    buckets: Tuple[float, ...] = LATENCY_BUCKETS,
    **labels: Any,
) -> _HistogramTimer:
    """Time a hot-path call into a latency histogram on the default
    registry::

        with observe_latency("predict_latency_seconds"):
            model.predict(...)

    The disabled-path cost matches the rest of the metrics layer — one
    dict lookup plus two ``perf_counter`` reads — so call sites stay
    instrumented permanently.
    """
    return _registry.histogram(name, buckets=buckets, **labels).time()
