"""Sliding-window SLO tracking: rolling latency quantiles + error rate.

Histograms answer "what is the all-time latency distribution"; an SLO
needs "what is it *right now*".  :class:`SloTracker` keeps a bounded
ring of ``(timestamp, duration, error)`` samples per endpoint and
computes p50/p95/p99 and the error rate over a sliding wall-clock
window, so ``/healthz`` can say whether tail latency is currently
degrading rather than averaging over the daemon's whole life.

Degradation policy: an endpoint is *degraded* when its windowed p99
exceeds ``p99_threshold_s`` or its windowed error rate exceeds
``error_rate_threshold`` (errors are statuses >= 500 — client errors
are the client's problem).  The tracker's overall :meth:`status` is
``"degraded"`` if any endpoint is, ``"ok"`` otherwise; the daemon
surfaces it in ``/healthz`` and as gauges in ``/metrics`` without
changing the readiness status code (a slow daemon is still *up* —
load balancers read readiness, operators read degradation).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_ERROR_RATE_THRESHOLD",
    "DEFAULT_P99_THRESHOLD_S",
    "DEFAULT_WINDOW_S",
    "SloTracker",
    "get_slo_tracker",
    "set_slo_tracker",
]

#: sliding window width, seconds.
DEFAULT_WINDOW_S = 300.0
#: windowed p99 above this marks an endpoint degraded.
DEFAULT_P99_THRESHOLD_S = 2.0
#: windowed 5xx error rate above this marks an endpoint degraded.
DEFAULT_ERROR_RATE_THRESHOLD = 0.05
#: per-endpoint sample ring size (bounds memory under heavy traffic;
#: with a full ring the effective window is the newest samples only).
MAX_SAMPLES_PER_ENDPOINT = 4096

_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def _quantile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank quantile over an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class SloTracker:
    """Per-endpoint sliding-window latency/error tracker."""

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        p99_threshold_s: float = DEFAULT_P99_THRESHOLD_S,
        error_rate_threshold: float = DEFAULT_ERROR_RATE_THRESHOLD,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        self.window_s = float(window_s)
        self.p99_threshold_s = float(p99_threshold_s)
        self.error_rate_threshold = float(error_rate_threshold)
        self._lock = threading.Lock()
        #: endpoint -> ring of (ts, duration_s, is_error).
        self._samples: Dict[str, Deque[Tuple[float, float, bool]]] = {}
        #: endpoints whose gauges the last export_gauges call set —
        #: zeroed on the next export once they age out of the window.
        self._exported_endpoints: set = set()

    def observe(
        self,
        endpoint: str,
        duration_s: float,
        status: int = 200,
        now: Optional[float] = None,
    ) -> None:
        """Record one served request.  ``status >= 500`` counts as an
        error; ``now`` is injectable for tests."""
        ts = time.time() if now is None else now
        with self._lock:
            ring = self._samples.get(endpoint)
            if ring is None:
                ring = self._samples[endpoint] = deque(
                    maxlen=MAX_SAMPLES_PER_ENDPOINT
                )
            ring.append((ts, float(duration_s), status >= 500))

    def _window(
        self, ring: Deque[Tuple[float, float, bool]], now: float
    ) -> List[Tuple[float, float, bool]]:
        horizon = now - self.window_s
        return [s for s in ring if s[0] >= horizon]

    def endpoint_stats(
        self, endpoint: str, now: Optional[float] = None
    ) -> Dict[str, Any]:
        """Windowed ``{count, p50, p95, p99, error_rate, status}`` for
        one endpoint (zeros and ``"ok"`` when the window is empty)."""
        ts = time.time() if now is None else now
        with self._lock:
            ring = self._samples.get(endpoint)
            samples = self._window(ring, ts) if ring else []
        durations = sorted(s[1] for s in samples)
        n_errors = sum(1 for s in samples if s[2])
        stats: Dict[str, Any] = {"count": len(samples)}
        for name, q in _QUANTILES:
            stats[name + "_s"] = round(_quantile(durations, q), 6)
        stats["error_rate"] = (
            round(n_errors / len(samples), 6) if samples else 0.0
        )
        degraded = bool(samples) and (
            stats["p99_s"] > self.p99_threshold_s
            or stats["error_rate"] > self.error_rate_threshold
        )
        stats["status"] = "degraded" if degraded else "ok"
        return stats

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """``{status, window_s, thresholds, endpoints: {...}}`` over
        every endpoint seen in the window."""
        with self._lock:
            endpoints = sorted(self._samples)
        per_endpoint = {
            endpoint: self.endpoint_stats(endpoint, now=now)
            for endpoint in endpoints
        }
        # Endpoints whose samples all aged out stay listed with zeros;
        # drop them so the snapshot reflects the live window.
        per_endpoint = {
            endpoint: stats
            for endpoint, stats in per_endpoint.items()
            if stats["count"]
        }
        degraded = any(
            stats["status"] == "degraded" for stats in per_endpoint.values()
        )
        return {
            "status": "degraded" if degraded else "ok",
            "window_s": self.window_s,
            "thresholds": {
                "p99_s": self.p99_threshold_s,
                "error_rate": self.error_rate_threshold,
            },
            "endpoints": per_endpoint,
        }

    def status(self, now: Optional[float] = None) -> str:
        return self.snapshot(now=now)["status"]

    def export_gauges(self, registry, now: Optional[float] = None) -> None:
        """Project the windowed stats onto gauges of ``registry`` (a
        :class:`~repro.obs.metrics.MetricsRegistry`) so ``/metrics``
        scrapes see them: ``slo_latency_seconds{endpoint,quantile}``,
        ``slo_error_rate{endpoint}``, ``slo_window_requests{endpoint}``,
        and ``slo_degraded`` (0/1 overall).

        Endpoints that were exported previously but have since aged
        out of the window get their gauges zeroed (once), so an idle
        endpoint's last computed values do not linger forever and
        alerts on the ``slo_*`` gauges can clear."""
        snap = self.snapshot(now=now)
        live = set(snap["endpoints"])
        with self._lock:
            stale = self._exported_endpoints - live
            self._exported_endpoints = live
        for endpoint in sorted(stale):
            for name, _q in _QUANTILES:
                registry.gauge(
                    "slo_latency_seconds",
                    endpoint=endpoint, quantile=name,
                ).set(0.0)
            registry.gauge("slo_error_rate", endpoint=endpoint).set(0.0)
            registry.gauge("slo_window_requests", endpoint=endpoint).set(0)
        for endpoint, stats in snap["endpoints"].items():
            for name, _q in _QUANTILES:
                registry.gauge(
                    "slo_latency_seconds",
                    endpoint=endpoint, quantile=name,
                ).set(stats[name + "_s"])
            registry.gauge(
                "slo_error_rate", endpoint=endpoint
            ).set(stats["error_rate"])
            registry.gauge(
                "slo_window_requests", endpoint=endpoint
            ).set(stats["count"])
        registry.gauge("slo_degraded").set(
            1 if snap["status"] == "degraded" else 0
        )

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()


_tracker = SloTracker()


def get_slo_tracker() -> SloTracker:
    """The process-default tracker the serving path observes into."""
    return _tracker


def set_slo_tracker(tracker: SloTracker) -> SloTracker:
    """Swap the default tracker (tests, per-daemon config); returns
    the previous one."""
    global _tracker
    previous = _tracker
    _tracker = tracker
    return previous
