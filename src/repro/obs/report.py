"""Structured per-invocation run reports.

A :class:`RunReport` is the JSON-serializable record of one traced
invocation — ``clara analyze --json-report out.json``, a
``Clara.train()`` call under :func:`repro.obs.use_tracer`, a benchmark
run.  It captures:

* per-stage wall-clock totals and call counts (from the tracer);
* the full nested span tree with attributes (cache hit/miss, dataset
  sizes, model scores — whatever the stages recorded);
* a snapshot of the metrics registry;
* command name, status, and total duration.

``to_dict()`` emits a versioned schema (``"schema": 1``) and
``from_dict()``/``from_json()`` round-trip it, so reports can be
archived and diffed across code versions.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

__all__ = ["RUN_REPORT_SCHEMA", "RunReport"]

#: bump when the report layout changes incompatibly.
RUN_REPORT_SCHEMA = 1


def _json_safe(value: Any) -> Any:
    """Best-effort conversion of span/metric payloads to JSON types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    return str(value)


@dataclass
class RunReport:
    """One invocation's observability record (see module docstring)."""

    command: str
    status: str = "ok"
    duration_s: float = 0.0
    started_at: float = 0.0
    stages: Dict[str, Dict[str, float]] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    attributes: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        command: str,
        tracer: Any,
        metrics: Any = None,
        status: str = "ok",
        **attributes: Any,
    ) -> "RunReport":
        """Assemble a report from a finished :class:`~repro.obs.Tracer`
        (and optionally a :class:`~repro.obs.MetricsRegistry`)."""
        spans = [span.to_dict() for span in getattr(tracer, "roots", ())]
        duration = sum(span.get("duration_s", 0.0) for span in spans)
        return cls(
            command=command,
            status=status,
            duration_s=round(duration, 6),
            started_at=time.time(),
            stages=tracer.stage_totals(),
            spans=spans,
            metrics=metrics.to_dict() if metrics is not None else {},
            attributes=dict(attributes),
        )

    # -- (de)serialization ----------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": RUN_REPORT_SCHEMA,
            "kind": "run_report",
            "command": self.command,
            "status": self.status,
            "duration_s": self.duration_s,
            "started_at": self.started_at,
            "stages": _json_safe(self.stages),
            "spans": _json_safe(self.spans),
            "metrics": _json_safe(self.metrics),
            "attributes": _json_safe(self.attributes),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunReport":
        schema = data.get("schema")
        if schema != RUN_REPORT_SCHEMA:
            raise ValueError(
                f"unsupported run-report schema {schema!r}"
                f" (expected {RUN_REPORT_SCHEMA})"
            )
        return cls(
            command=str(data.get("command", "")),
            status=str(data.get("status", "ok")),
            duration_s=float(data.get("duration_s", 0.0)),
            started_at=float(data.get("started_at", 0.0)),
            stages={k: dict(v) for k, v in dict(data.get("stages", {})).items()},
            spans=list(data.get("spans", [])),
            metrics=dict(data.get("metrics", {})),
            attributes=dict(data.get("attributes", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    # -- human rendering -------------------------------------------------
    def render_profile(self) -> str:
        """The ``--profile`` table: stages by total wall time."""
        lines = [
            f"Run profile: {self.command}"
            f" ({self.status}, {self.duration_s:.3f} s total)",
            f"{'stage':28s} {'calls':>6s} {'total(s)':>10s} {'share':>7s}",
        ]
        total = max(self.duration_s, 1e-12)
        ordered = sorted(
            self.stages.items(), key=lambda kv: -kv[1]["total_s"]
        )
        for name, stat in ordered:
            share = 100.0 * stat["total_s"] / total
            lines.append(
                f"{name:28s} {int(stat['calls']):6d}"
                f" {stat['total_s']:10.4f} {share:6.1f}%"
            )
        if self.metrics:
            lines.append("")
            lines.append("Metrics:")
            for name, value in sorted(self.metrics.items()):
                if isinstance(value, dict):
                    value = f"count={value.get('count')} sum={value.get('sum')}"
                lines.append(f"  {name} = {value}")
        return "\n".join(lines) + "\n"
