"""The event journal: a bounded ring buffer of typed serving events.

Metrics aggregate; spans profile one invocation; *events* narrate.
The journal records discrete, schema-versioned facts as they happen —
a request started, a prediction-cache lookup hit, the broker flushed a
batch, a lazy per-target train ran, a request blew its latency budget
— each stamped with a monotonic sequence number, a wall-clock
timestamp, and the ambient request id (see :mod:`repro.obs.reqctx`).
The daemon exposes the journal over ``GET /v1/events`` and the CLI
reads it with ``clara events``; ROADMAP item 4's online re-advisor
will publish its re-ranking decisions here as ``decision_change``
events.

The buffer is bounded (:class:`collections.deque` with ``maxlen``), so
emitting is O(1), memory is capped, and old events fall off the end —
``n_dropped`` counts them so readers know the window slid.  Emission
is thread-safe and cheap enough to leave on permanently; like metrics
there is no disabled variant.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.obs.reqctx import current_request_id

__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA",
    "Event",
    "EventJournal",
    "emit",
    "get_journal",
    "set_journal",
]

#: version of the event dict layout (bump on incompatible changes).
EVENT_SCHEMA = 1

#: the typed event vocabulary.  ``decision_change`` is reserved for
#: the traffic-drift re-advisor (ROADMAP item 4): emitted whenever an
#: online advisor revises a previously served recommendation.
EVENT_KINDS = (
    "request_start",     # endpoint, request id
    "request_finish",    # + status, duration_s
    "cache_hit",         # prediction-cache lookup satisfied n keys
    "cache_miss",        # prediction-cache lookup missed n keys
    "broker_batch",      # batch flush: jobs, sequences, wait, ids
    "target_train",      # lazy per-target Clara train (serve)
    "colocation_train",  # lazy colocation-ranker train (serve)
    "slow_request",      # request over the latency threshold (+ spans)
    "decision_change",   # reserved: online re-advisor revised a call
)


class Event:
    """One journal entry (immutable once emitted)."""

    __slots__ = ("seq", "ts", "kind", "request_id", "data")

    def __init__(
        self,
        seq: int,
        ts: float,
        kind: str,
        request_id: Optional[str],
        data: Dict[str, Any],
    ) -> None:
        self.seq = seq
        self.ts = ts
        self.kind = kind
        self.request_id = request_id
        self.data = data

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": EVENT_SCHEMA,
            "seq": self.seq,
            "ts": round(self.ts, 6),
            "kind": self.kind,
            "request_id": self.request_id,
            "data": self.data,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(#{self.seq} {self.kind} rid={self.request_id})"


class EventJournal:
    """Bounded, thread-safe, in-memory event stream.

    ``capacity`` bounds retained events; ``emit`` assigns sequence
    numbers from a monotonic counter that never resets, so a reader
    polling ``since_seq`` can detect gaps (events dropped between
    polls) by comparing sequence numbers.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("journal capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._events: Deque[Event] = deque(maxlen=self.capacity)
        self._next_seq = 0
        #: totals since construction.
        self.n_emitted = 0

    @property
    def n_dropped(self) -> int:
        """Events that fell off the ring (emitted minus retained)."""
        with self._lock:
            return self.n_emitted - len(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def emit(
        self,
        kind: str,
        request_id: Optional[str] = None,
        **data: Any,
    ) -> Event:
        """Append one event.  ``request_id=None`` adopts the ambient
        request context's id (or stays ``None`` outside a request);
        ``data`` must be JSON-serializable."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r} (known: {', '.join(EVENT_KINDS)})"
            )
        if request_id is None:
            request_id = current_request_id()
        with self._lock:
            event = Event(self._next_seq, time.time(), kind,
                          request_id, data)
            self._next_seq += 1
            self.n_emitted += 1
            self._events.append(event)
        return event

    def snapshot(
        self,
        kind: Optional[str] = None,
        request_id: Optional[str] = None,
        since_seq: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[Event]:
        """Retained events oldest-first, optionally filtered by
        ``kind``, ``request_id``, or ``since_seq`` (exclusive), with
        ``limit`` keeping the *newest* matches."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        if request_id is not None:
            events = [e for e in events if e.request_id == request_id]
        if since_seq is not None:
            events = [e for e in events if e.seq > since_seq]
        if limit is not None and limit >= 0:
            # events[-0:] would be the whole list, not none of it.
            events = events[-limit:] if limit > 0 else []
        return events

    def to_dicts(self, **filters: Any) -> List[Dict[str, Any]]:
        return [e.to_dict() for e in self.snapshot(**filters)]

    def write_jsonl(self, path: str, **filters: Any) -> int:
        """Export the (filtered) journal as JSON lines; returns the
        number of events written."""
        events = self.to_dicts(**filters)
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)

    def clear(self) -> None:
        """Drop retained events (sequence numbers keep counting)."""
        with self._lock:
            self._events.clear()


_journal = EventJournal()


def get_journal() -> EventJournal:
    """The process-default journal instrumented code emits to."""
    return _journal


def set_journal(journal: EventJournal) -> EventJournal:
    """Swap the default journal (tests, embedding); returns the
    previous one."""
    global _journal
    previous = _journal
    _journal = journal
    return previous


def emit(kind: str, request_id: Optional[str] = None, **data: Any) -> Event:
    """Emit on the process-default journal (the common call site)."""
    return _journal.emit(kind, request_id=request_id, **data)
