"""``logging`` wiring for the whole package.

All repro modules log through children of the ``repro`` logger
(:func:`get_logger`).  Nothing is emitted until :func:`configure`
installs a handler — importing the library never touches global
logging state, and the root ``repro`` logger carries a
``NullHandler`` so unconfigured use stays silent.

Two output formats:

* ``text`` (the default) — the classic ``LEVEL name: message`` lines,
  suffixed with ``[rid=...]`` when a request context is ambient;
* ``json`` — one JSON object per line (``ts``, ``level``, ``logger``,
  ``message``, plus ``request_id``/``span_id`` when a request context
  or recorded span is ambient), for log pipelines that want to join
  daemon logs with the event journal and span trees by request id.

Both formats read the correlation ids *at emit time* from
:mod:`repro.obs.reqctx` / :func:`repro.obs.trace.current_span_id`, so
library code never threads ids into log calls.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Optional, TextIO

__all__ = ["JsonFormatter", "configure", "get_logger"]

ROOT_LOGGER = "repro"

#: verbosity -> level: -1 errors only, 0 warnings, 1 info, 2+ debug.
_LEVELS = {-1: logging.ERROR, 0: logging.WARNING, 1: logging.INFO}

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy.  Pass ``__name__`` from
    library modules; already-qualified ``repro.*`` names pass through."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if not name.startswith(ROOT_LOGGER):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def _correlation_ids() -> "tuple[Optional[str], str]":
    """``(request_id, span_id)`` from the ambient context (lazy import
    so logging set-up never drags the tracer in)."""
    from repro.obs.reqctx import current_request_id
    from repro.obs.trace import current_span_id

    return current_request_id(), current_span_id()


class JsonFormatter(logging.Formatter):
    """One JSON object per record, request/span ids stamped on."""

    def format(self, record: logging.LogRecord) -> str:
        request_id, span_id = _correlation_ids()
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if request_id is not None:
            payload["request_id"] = request_id
        if span_id:
            payload["span_id"] = span_id
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)

    def formatTime(self, record, datefmt=None):  # pragma: no cover
        return time.strftime("%Y-%m-%dT%H:%M:%S",
                             time.gmtime(record.created))


class _TextFormatter(logging.Formatter):
    """The classic text line, with a ``[rid=...]`` suffix inside a
    request context so interactive ``-v`` output stays correlatable."""

    def format(self, record: logging.LogRecord) -> str:
        line = (f"{record.levelname} {record.name}:"
                f" {record.getMessage()}")
        request_id, _span_id = _correlation_ids()
        if request_id is not None:
            line += f" [rid={request_id}]"
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def configure(
    verbosity: int = 0,
    stream: Optional[TextIO] = None,
    fmt: str = "text",
) -> logging.Logger:
    """Route ``repro.*`` logs to ``stream`` (default stderr) at a level
    chosen by ``verbosity`` (-1 quiet, 0 warnings, 1 ``-v`` info,
    2 ``-vv`` debug), formatted as ``fmt`` (``"text"`` or ``"json"``).
    Idempotent: reconfiguring replaces the handler installed by the
    previous call instead of stacking another."""
    if fmt not in ("text", "json"):
        raise ValueError(f"log format must be 'text' or 'json', got {fmt!r}")
    # Clamp below at -1 (quieter stays ERROR); anything above the
    # mapped range (2+, i.e. -vv) falls through to DEBUG.
    level = _LEVELS.get(max(int(verbosity), -1), logging.DEBUG)
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler._repro_obs = True  # type: ignore[attr-defined]
    handler.setFormatter(
        JsonFormatter() if fmt == "json" else _TextFormatter()
    )
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger
