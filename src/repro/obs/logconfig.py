"""``logging`` wiring for the whole package.

All repro modules log through children of the ``repro`` logger
(:func:`get_logger`).  Nothing is emitted until :func:`configure`
installs a handler — importing the library never touches global
logging state, and the root ``repro`` logger carries a
``NullHandler`` so unconfigured use stays silent.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

__all__ = ["configure", "get_logger"]

ROOT_LOGGER = "repro"

#: verbosity -> level: -1 errors only, 0 warnings, 1 info, 2+ debug.
_LEVELS = {-1: logging.ERROR, 0: logging.WARNING, 1: logging.INFO}

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy.  Pass ``__name__`` from
    library modules; already-qualified ``repro.*`` names pass through."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if not name.startswith(ROOT_LOGGER):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def configure(
    verbosity: int = 0, stream: Optional[TextIO] = None
) -> logging.Logger:
    """Route ``repro.*`` logs to ``stream`` (default stderr) at a level
    chosen by ``verbosity`` (-1 quiet, 0 warnings, 1 ``-v`` info,
    2 ``-vv`` debug).  Idempotent: reconfiguring replaces the handler
    installed by the previous call instead of stacking another."""
    level = _LEVELS.get(min(int(verbosity), 1), logging.DEBUG)
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler._repro_obs = True  # type: ignore[attr-defined]
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger
