"""Continuous benchmarking of Clara's own hot paths (``clara bench``).

Clara's pitch is that offloading decisions must rest on *measured*
performance, not intuition — this module holds the repo to the same
standard.  A declared suite of pipeline workloads (dataset synthesis,
predictor train/infer, algorithm identification, scale-out GBDT,
placement ILP, coalescing K-means, colocation ranking, corpus lint,
warm-daemon analyze over HTTP)
is timed as **median-of-N with MAD dispersion** and written to a
schema-versioned ``BENCH_<git-sha>.json`` trajectory artifact, so PR N
can be compared against PR N-1::

    clara bench --quick --out BENCH_now.json
    clara bench --quick --compare results/BENCH_baseline.json

:func:`compare_runs` grades each case: a slowdown is a regression
when it exceeds ``max(rel_threshold * baseline_median, mad_k * MAD)``
— the MAD guard keeps pure timing noise from tripping the relative
threshold on microsecond-scale cases.  Warn-grade regressions exceed
the threshold; error-grade exceed twice it.  The CLI exits
:data:`repro.errors.BENCH_EXIT_WARNING` / ``BENCH_EXIT_ERROR``
accordingly, mirroring the lint gate's 8/9 split, so CI can tolerate
warnings and fail hard on errors.

Cases share untimed setup through a :class:`BenchContext` (a memo of
prepared elements, profiles, fitted models), and each case's timed
thunk runs under a ``bench.<name>`` span — ``clara bench --trace-out``
shows the whole suite on a Perfetto timeline, and ``--flame-out``
wraps it in the :mod:`repro.obs.sampling` profiler.

Heavy imports stay inside case setups so importing :mod:`repro.obs`
stays light.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import (
    BENCH_EXIT_ERROR,
    BENCH_EXIT_WARNING,
    ClaraError,
)
from repro.obs.trace import span

__all__ = [
    "BENCH_SCHEMA",
    "BenchCase",
    "BenchCaseResult",
    "BenchComparison",
    "BenchRun",
    "CaseComparison",
    "DEFAULT_MAD_K",
    "DEFAULT_REL_THRESHOLD",
    "compare_runs",
    "default_case_names",
    "register_case",
    "run_suite",
]

#: bump when the BENCH_*.json layout changes incompatibly.
BENCH_SCHEMA = 1

#: relative slowdown that counts as a regression (fraction of the
#: baseline median).
DEFAULT_REL_THRESHOLD = 0.25

#: noise guard: the slowdown must also exceed ``mad_k`` times the
#: larger of the two runs' MADs.
DEFAULT_MAD_K = 4.0


# ---------------------------------------------------------------------------
# Suite declaration.
# ---------------------------------------------------------------------------

class BenchContext:
    """Shared, memoized, *untimed* setup state for one suite run.

    ``target`` is the registered NIC backend the suite models
    (``None`` = the registry default); cases that compile or simulate
    read it, and per-target fixtures key their memo entries on it so
    a mixed-target suite never shares a trained model across backends.
    """

    def __init__(self, quick: bool = False, seed: int = 0,
                 target: Optional[str] = None) -> None:
        self.quick = quick
        self.seed = seed
        self.target = target
        self._memo: Dict[str, Any] = {}

    def memo(self, key: str, factory: Callable[[], Any]) -> Any:
        """``factory()`` once per suite run, cached under ``key``."""
        if key not in self._memo:
            self._memo[key] = factory()
        return self._memo[key]

    # -- shared fixtures used by several cases --------------------------
    def prepared(self, name: str):
        """A prepared library element."""
        def build():
            from repro.click.elements import build_element
            from repro.core.prepare import prepare_element

            return prepare_element(build_element(name))
        return self.memo(f"prepared:{name}", build)

    def host_profile(self, name: str, n_packets: int = 120):
        """(profile, workload) of ``name`` under a small bench trace."""
        def build():
            from repro.click.elements import (
                build_element,
                initial_state,
                install_state,
            )
            from repro.click.interp import Interpreter
            from repro.workload import characterize, generate_trace
            from repro.workload.spec import WorkloadSpec

            spec = WorkloadSpec(
                name="bench", n_flows=4096, n_packets=n_packets
            )
            interp = Interpreter(self.prepared(name).module, seed=self.seed)
            install_state(interp, initial_state(build_element(name)))
            profile = interp.run_trace(generate_trace(spec, seed=self.seed))
            return profile, characterize(spec)
        return self.memo(f"profile:{name}:{n_packets}", build)

    def predictor_dataset(self):
        """A synthesized predictor dataset sized for the mode."""
        def build():
            from repro.core.predictor import PredictorDataset

            return PredictorDataset.synthesize(
                n_programs=6 if self.quick else 16, seed=self.seed
            )
        return self.memo("predictor_dataset", build)

    def fitted_predictor(self):
        """An :class:`InstructionPredictor` fitted on the bench dataset."""
        def build():
            from repro.core.predictor import InstructionPredictor

            predictor = InstructionPredictor(
                epochs=4 if self.quick else 10, seed=self.seed
            )
            return predictor.fit(self.predictor_dataset())
        return self.memo("fitted_predictor", build)

    def trained_clara(self, target: Optional[str] = None):
        """A fully trained Clara sized for the mode (no cache: bench
        measures this process, not the artifact store).  ``target``
        overrides the suite-level target for cross-target cases."""
        target = target or self.target

        def build():
            from repro.core import Clara, TrainConfig

            config = TrainConfig(
                n_predictor_programs=6,
                n_scaleout_programs=3,
                predictor_epochs=4,
                n_negatives=6,
                scaleout_trace_packets=80,
            ) if self.quick else TrainConfig.quick()
            return Clara(seed=self.seed, target=target).train(config)
        return self.memo(f"trained_clara:{target or 'default'}", build)

    def warm_server(self):
        """An in-process ``clara serve`` daemon on an ephemeral port.

        The straggler window is zeroed so sequential bench requests
        measure the request path, not the batching wait.  The server
        thread is daemonic and lives for the rest of the process.
        """
        def build():
            from repro.serve import ServeConfig, build_server

            server = build_server(
                self.trained_clara(),
                ServeConfig(port=0, batch_window_ms=0.0),
            )
            return server.start()
        return self.memo("warm_server", build)


@dataclass(frozen=True)
class BenchCase:
    """One declared workload: ``prepare(ctx)`` does the untimed setup
    and returns the zero-argument thunk that gets timed."""

    name: str
    description: str
    prepare: Callable[[BenchContext], Callable[[], Any]]


#: the declared suite, in registration (= report) order.
_CASES: Dict[str, BenchCase] = {}


def register_case(name: str, description: str):
    """Decorator declaring a bench case (also the extension point for
    out-of-tree suites and tests)."""
    def wrap(prepare: Callable[[BenchContext], Callable[[], Any]]):
        _CASES[name] = BenchCase(name, description, prepare)
        return prepare
    return wrap


def default_case_names() -> List[str]:
    return list(_CASES)


def get_case(name: str) -> BenchCase:
    try:
        return _CASES[name]
    except KeyError:
        raise ClaraError(
            f"unknown bench case {name!r}"
            f" (known: {', '.join(_CASES)})"
        ) from None


# ---------------------------------------------------------------------------
# The built-in suite (pipeline stage per case; quick mode shrinks sizes).
# ---------------------------------------------------------------------------

@register_case("synthesis", "ClickGen dataset synthesis + NIC compilation")
def _case_synthesis(ctx: BenchContext) -> Callable[[], Any]:
    from repro.core.predictor import PredictorDataset

    n_programs = 3 if ctx.quick else 10

    def run():
        return PredictorDataset.synthesize(
            n_programs=n_programs, seed=ctx.seed
        )
    return run


@register_case("predictor_train", "LSTM instruction-predictor fit")
def _case_predictor_train(ctx: BenchContext) -> Callable[[], Any]:
    from repro.core.predictor import InstructionPredictor

    dataset = ctx.predictor_dataset()
    epochs = 4 if ctx.quick else 10

    def run():
        return InstructionPredictor(epochs=epochs, seed=ctx.seed).fit(dataset)
    return run


@register_case("predictor_infer", "per-NF instruction prediction (hot path)")
def _case_predictor_infer(ctx: BenchContext) -> Callable[[], Any]:
    predictor = ctx.fitted_predictor()
    sequences = ctx.prepared("aggcounter").block_token_sequences()

    def run():
        return predictor.predict_sequences(sequences)
    return run


@register_case("predictor_infer_cached",
               "per-NF prediction served from the prediction cache")
def _case_predictor_infer_cached(ctx: BenchContext) -> Callable[[], Any]:
    from repro.core.predictor import InstructionPredictor

    base = ctx.fitted_predictor()
    # Clone through the state dict so the cache attaches to a private
    # predictor — the shared fixture must stay cache-free for the
    # uncached predictor_infer case.
    predictor = InstructionPredictor().load_state_dict(base.state_dict())
    predictor.attach_prediction_cache()
    sequences = ctx.prepared("aggcounter").block_token_sequences()
    # Populate during setup; every timed repeat is then a pure
    # content-addressed hit (bit-identical to the uncached result).
    predictor.predict_direct(sequences)

    def run():
        return predictor.predict_sequences(sequences)
    return run


@register_case("algorithm_id", "algorithm identification over a profiled NF")
def _case_algorithm_id(ctx: BenchContext) -> Callable[[], Any]:
    from repro.core.algorithms import AlgorithmIdentifier, build_algorithm_corpus

    identifier = ctx.memo(
        "fitted_identifier",
        lambda: AlgorithmIdentifier(seed=ctx.seed).fit(
            build_algorithm_corpus(
                seed=ctx.seed, n_negatives=6 if ctx.quick else 20
            )
        ),
    )
    prepared = ctx.prepared("aggcounter")
    profile, workload = ctx.host_profile("aggcounter")

    def run():
        return identifier.advise(prepared, profile, workload)
    return run


@register_case("scaleout_gbdt", "scale-out GBDT cost-model fit")
def _case_scaleout_gbdt(ctx: BenchContext) -> Callable[[], Any]:
    from repro.core.scaleout import ScaleoutAdvisor
    from repro.nic.machine import NICModel

    advisor = ScaleoutAdvisor(nic=NICModel(target=ctx.target), seed=ctx.seed)
    advisor.build_training_set(
        n_programs=2 if ctx.quick else 6,
        trace_packets=60 if ctx.quick else 150,
    )

    def run():
        return advisor.fit()
    return run


@register_case("placement_ilp", "state-placement ILP solve")
def _case_placement_ilp(ctx: BenchContext) -> Callable[[], Any]:
    import numpy as np

    from repro.core.placement import PlacementProblem, solve_ilp

    k = 10 if ctx.quick else 16
    rng = np.random.default_rng(ctx.seed)
    problem = PlacementProblem(
        names=[f"state_{i}" for i in range(k)],
        sizes=[int(v) for v in rng.integers(8, 4096, size=k)],
        frequencies=[float(v) for v in rng.random(k)],
    )

    def run():
        return solve_ilp(problem)
    return run


@register_case("coalescing_kmeans", "coalescing K-means cluster selection")
def _case_coalescing_kmeans(ctx: BenchContext) -> Callable[[], Any]:
    import numpy as np

    from repro.ml.kmeans import choose_k_by_cutoff

    n, dims = (40, 8) if ctx.quick else (120, 12)
    rng = np.random.default_rng(ctx.seed)
    centers = rng.random((4, dims))
    vectors = np.concatenate(
        [center + 0.05 * rng.standard_normal((n // 4, dims))
         for center in centers]
    )

    def run():
        return choose_k_by_cutoff(vectors, k_max=6, cutoff=0.45,
                                  seed=ctx.seed)
    return run


@register_case("colocation_rank", "colocation learning-to-rank fit")
def _case_colocation_rank(ctx: BenchContext) -> Callable[[], Any]:
    from repro.click.elements import (
        build_element,
        initial_state,
        install_state,
    )
    from repro.click.interp import Interpreter
    from repro.core.colocation import ColocationAdvisor, make_candidate
    from repro.workload import characterize, generate_trace
    from repro.workload.spec import WorkloadSpec

    spec = WorkloadSpec(
        name="coloc_bench", n_flows=50_000, zipf_alpha=0.4, n_packets=100
    )
    trace = generate_trace(spec, seed=ctx.seed)
    workload = characterize(spec)
    pool = []
    for name in ("aggcounter", "udpcount", "mininat", "ratelimiter",
                 "mazunat"):
        element = build_element(name)
        prepared_nf = ctx.prepared(name)
        interp = Interpreter(prepared_nf.module, seed=ctx.seed)
        install_state(interp, initial_state(element))
        pool.append(make_candidate(prepared_nf, interp.run_trace(trace)))
    n_groups = 2 if ctx.quick else 6

    def run():
        return ColocationAdvisor(seed=ctx.seed).fit(
            pool, workload, n_groups=n_groups, group_size=3
        )
    return run


@register_case("serve_analyze", "warm-daemon analyze request over HTTP")
def _case_serve_analyze(ctx: BenchContext) -> Callable[[], Any]:
    import urllib.request

    server = ctx.warm_server()
    url = server.url("/v1/analyze")
    body = json.dumps({
        "element": "aggcounter",
        "workload": {"name": "bench", "n_flows": 4096, "n_packets": 60},
    }).encode("utf-8")

    def run():
        request = urllib.request.Request(
            url, data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=120) as resp:
            if resp.status != 200:
                raise ClaraError(
                    f"serve_analyze got HTTP {resp.status}"
                )
            return resp.read()
    return run


@register_case("corpus_lint", "offload lint over library elements")
def _case_corpus_lint(ctx: BenchContext) -> Callable[[], Any]:
    from repro.click.elements import ELEMENT_BUILDERS
    from repro.nfir.analysis import default_registry
    from repro.nic.targets import resolve_target

    registry = default_registry()
    target = resolve_target(ctx.target)
    names = sorted(ELEMENT_BUILDERS)
    if ctx.quick:
        names = names[:4]
    modules = [ctx.prepared(name).module for name in names]

    def run():
        return [registry.run(module, target=target) for module in modules]
    return run


@register_case("lint_absint",
               "interval + footprint abstract interpretation")
def _case_lint_absint(ctx: BenchContext) -> Callable[[], Any]:
    from repro.click.elements import ELEMENT_BUILDERS
    from repro.nfir.analysis import (
        IntervalAnalysis,
        loop_trip_bounds,
        module_footprints,
    )

    names = sorted(ELEMENT_BUILDERS)
    if ctx.quick:
        names = names[:4]
    modules = [ctx.prepared(name).module for name in names]

    def run():
        out = []
        for module in modules:
            analyses = {}
            for function in module.functions.values():
                analysis = IntervalAnalysis(function)
                analyses[function.name] = analysis
                out.append(loop_trip_bounds(function, analysis))
            out.append(module_footprints(module, analyses=analyses))
        return out
    return run


@register_case("dpu_analyze",
               "end-to-end analyze on the dpu-offpath target")
def _case_dpu_analyze(ctx: BenchContext) -> Callable[[], Any]:
    from repro.workload.spec import WorkloadSpec

    clara = ctx.trained_clara(target="dpu-offpath")
    spec = WorkloadSpec(name="bench", n_flows=4096, n_packets=60)

    def run():
        return clara.analyze("aggcounter", spec, trace_seed=ctx.seed)
    return run


# ---------------------------------------------------------------------------
# Running and recording.
# ---------------------------------------------------------------------------

@dataclass
class BenchCaseResult:
    """Median-of-N timing of one case."""

    name: str
    repeats: int
    median_s: float
    mad_s: float
    mean_s: float
    min_s: float
    max_s: float
    samples_s: List[float] = field(default_factory=list)

    @classmethod
    def from_samples(
        cls, name: str, samples: Sequence[float]
    ) -> "BenchCaseResult":
        samples = [float(s) for s in samples]
        median = statistics.median(samples)
        mad = statistics.median(abs(s - median) for s in samples)
        return cls(
            name=name,
            repeats=len(samples),
            median_s=round(median, 9),
            mad_s=round(mad, 9),
            mean_s=round(statistics.fmean(samples), 9),
            min_s=round(min(samples), 9),
            max_s=round(max(samples), 9),
            samples_s=[round(s, 9) for s in samples],
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "repeats": self.repeats,
            "median_s": self.median_s,
            "mad_s": self.mad_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "samples_s": list(self.samples_s),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchCaseResult":
        return cls(
            name=str(data["name"]),
            repeats=int(data.get("repeats", 0)),
            median_s=float(data["median_s"]),
            mad_s=float(data.get("mad_s", 0.0)),
            mean_s=float(data.get("mean_s", data["median_s"])),
            min_s=float(data.get("min_s", data["median_s"])),
            max_s=float(data.get("max_s", data["median_s"])),
            samples_s=[float(s) for s in data.get("samples_s", [])],
        )


def _git_sha() -> str:
    """The current short git sha (``CLARA_BENCH_SHA`` overrides; falls
    back to ``unknown`` outside a checkout)."""
    override = os.environ.get("CLARA_BENCH_SHA")
    if override:
        return override
    for cwd in (Path(__file__).resolve().parent, Path.cwd()):
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=cwd, capture_output=True, text=True, timeout=10,
            )
        except (OSError, subprocess.SubprocessError):
            continue
        if proc.returncode == 0 and proc.stdout.strip():
            return proc.stdout.strip()
    return "unknown"


@dataclass
class BenchRun:
    """One suite execution: the ``BENCH_<sha>.json`` trajectory point."""

    git_sha: str
    quick: bool
    repeats: int
    seed: int
    created_unix: float
    host: Dict[str, Any]
    results: List[BenchCaseResult]
    #: registered NIC target the suite modelled (suite default when
    #: absent in an older artifact).
    target: str = "nfp-4000"

    def result(self, name: str) -> Optional[BenchCaseResult]:
        for entry in self.results:
            if entry.name == name:
                return entry
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": BENCH_SCHEMA,
            "kind": "bench_run",
            "git_sha": self.git_sha,
            "quick": self.quick,
            "repeats": self.repeats,
            "seed": self.seed,
            "target": self.target,
            "created_unix": self.created_unix,
            "host": dict(self.host),
            "results": [entry.to_dict() for entry in self.results],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchRun":
        schema = data.get("schema")
        if schema != BENCH_SCHEMA:
            raise ClaraError(
                f"unsupported bench schema {schema!r}"
                f" (expected {BENCH_SCHEMA})"
            )
        return cls(
            git_sha=str(data.get("git_sha", "unknown")),
            quick=bool(data.get("quick", False)),
            repeats=int(data.get("repeats", 0)),
            seed=int(data.get("seed", 0)),
            target=str(data.get("target", "nfp-4000")),
            created_unix=float(data.get("created_unix", 0.0)),
            host=dict(data.get("host", {})),
            results=[
                BenchCaseResult.from_dict(entry)
                for entry in data.get("results", [])
            ],
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchRun":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path) -> "BenchRun":
        try:
            return cls.from_json(Path(path).read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ClaraError(f"no bench baseline at {path}") from None
        except json.JSONDecodeError as exc:
            raise ClaraError(f"unreadable bench JSON at {path}: {exc}") \
                from None

    def default_artifact_name(self) -> str:
        return f"BENCH_{self.git_sha}.json"

    def render(self) -> str:
        """The human table (cases in suite order, µs-precision)."""
        mode = "quick" if self.quick else "full"
        lines = [
            f"Bench run @ {self.git_sha} ({mode}, target {self.target},"
            f" median of {self.repeats}):",
            f"{'case':20s} {'median(ms)':>11s} {'mad(ms)':>9s}"
            f" {'min(ms)':>9s} {'max(ms)':>9s}",
        ]
        for entry in self.results:
            lines.append(
                f"{entry.name:20s} {entry.median_s * 1e3:11.3f}"
                f" {entry.mad_s * 1e3:9.3f} {entry.min_s * 1e3:9.3f}"
                f" {entry.max_s * 1e3:9.3f}"
            )
        return "\n".join(lines) + "\n"


def run_suite(
    names: Optional[Sequence[str]] = None,
    repeats: Optional[int] = None,
    quick: bool = False,
    seed: int = 0,
    warmup: int = 1,
    target: Optional[str] = None,
) -> BenchRun:
    """Time the declared cases and return the :class:`BenchRun`.

    Setup (model fitting for inference cases, element preparation,
    trace generation) happens once per case outside the timed region;
    every timed repeat then runs the case's thunk once.  ``warmup``
    untimed calls absorb first-call effects (lazy imports, allocator
    warm-up) before sampling starts.
    """
    from repro.nic.targets import resolve_target

    selected = [get_case(name) for name in (names or default_case_names())]
    if repeats is None:
        repeats = 3 if quick else 5
    if repeats < 1:
        raise ClaraError("bench repeats must be >= 1")
    target_name = resolve_target(target).name
    ctx = BenchContext(quick=quick, seed=seed, target=target)
    results: List[BenchCaseResult] = []
    for case in selected:
        with span(f"bench.{case.name}", repeats=repeats) as sp:
            with span("bench.setup", case=case.name):
                thunk = case.prepare(ctx)
            for _ in range(warmup):
                thunk()
            samples: List[float] = []
            for _ in range(repeats):
                start = time.perf_counter()
                thunk()
                samples.append(time.perf_counter() - start)
            entry = BenchCaseResult.from_samples(case.name, samples)
            sp.set("median_s", entry.median_s)
            sp.set("mad_s", entry.mad_s)
        results.append(entry)
    return BenchRun(
        git_sha=_git_sha(),
        quick=quick,
        repeats=repeats,
        seed=seed,
        target=target_name,
        created_unix=time.time(),
        host={
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "argv0": sys.argv[0],
        },
        results=results,
    )


# ---------------------------------------------------------------------------
# Regression detection.
# ---------------------------------------------------------------------------

@dataclass
class CaseComparison:
    """One case's baseline-vs-current verdict."""

    name: str
    grade: str                    # ok | improved | warn | error | missing | new
    baseline_s: Optional[float]
    current_s: Optional[float]
    delta_s: float = 0.0
    threshold_s: float = 0.0

    @property
    def ratio(self) -> Optional[float]:
        if not self.baseline_s or self.current_s is None:
            return None
        return self.current_s / self.baseline_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "grade": self.grade,
            "baseline_s": self.baseline_s,
            "current_s": self.current_s,
            "delta_s": round(self.delta_s, 9),
            "threshold_s": round(self.threshold_s, 9),
            "ratio": None if self.ratio is None else round(self.ratio, 4),
        }


@dataclass
class BenchComparison:
    """The full regression report for ``clara bench --compare``."""

    baseline_sha: str
    current_sha: str
    rel_threshold: float
    mad_k: float
    entries: List[CaseComparison]

    @property
    def n_errors(self) -> int:
        return sum(1 for e in self.entries if e.grade == "error")

    @property
    def n_warnings(self) -> int:
        return sum(1 for e in self.entries if e.grade == "warn")

    @property
    def exit_code(self) -> int:
        """0 clean, ``BENCH_EXIT_WARNING`` on warn-grade regressions
        only, ``BENCH_EXIT_ERROR`` when any error-grade regression."""
        if self.n_errors:
            return BENCH_EXIT_ERROR
        if self.n_warnings:
            return BENCH_EXIT_WARNING
        return 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": BENCH_SCHEMA,
            "kind": "bench_comparison",
            "baseline_sha": self.baseline_sha,
            "current_sha": self.current_sha,
            "rel_threshold": self.rel_threshold,
            "mad_k": self.mad_k,
            "n_errors": self.n_errors,
            "n_warnings": self.n_warnings,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    def render(self) -> str:
        lines = [
            f"Bench compare: {self.baseline_sha} -> {self.current_sha}"
            f" (warn > {self.rel_threshold:.0%}, error > "
            f"{2 * self.rel_threshold:.0%}, noise guard"
            f" {self.mad_k:g}*MAD):",
            f"{'case':20s} {'base(ms)':>9s} {'cur(ms)':>9s}"
            f" {'ratio':>7s}  verdict",
        ]
        for entry in self.entries:
            base = "-" if entry.baseline_s is None \
                else f"{entry.baseline_s * 1e3:.3f}"
            cur = "-" if entry.current_s is None \
                else f"{entry.current_s * 1e3:.3f}"
            ratio = "-" if entry.ratio is None else f"{entry.ratio:.2f}x"
            lines.append(
                f"{entry.name:20s} {base:>9s} {cur:>9s} {ratio:>7s}"
                f"  {entry.grade}"
            )
        lines.append(
            f"{self.n_errors} error-grade, {self.n_warnings} warn-grade"
            " regression(s)"
        )
        return "\n".join(lines) + "\n"


def compare_runs(
    baseline: BenchRun,
    current: BenchRun,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    mad_k: float = DEFAULT_MAD_K,
) -> BenchComparison:
    """Grade ``current`` against ``baseline`` case by case.

    A case regresses when ``current_median - baseline_median`` exceeds
    ``max(rel_threshold * baseline_median, mad_k * max(MADs))`` —
    warn-grade above the threshold, error-grade above twice it.  A
    symmetric speed-up is reported as ``improved``.  Cases present in
    only one run surface as ``missing``/``new`` without affecting the
    exit code.
    """
    if rel_threshold <= 0:
        raise ClaraError("rel_threshold must be positive")
    entries: List[CaseComparison] = []
    for base in baseline.results:
        cur = current.result(base.name)
        if cur is None:
            entries.append(CaseComparison(
                name=base.name, grade="missing",
                baseline_s=base.median_s, current_s=None,
            ))
            continue
        delta = cur.median_s - base.median_s
        threshold = max(
            rel_threshold * base.median_s,
            mad_k * max(base.mad_s, cur.mad_s),
        )
        if delta > 2 * threshold:
            grade = "error"
        elif delta > threshold:
            grade = "warn"
        elif delta < -threshold:
            grade = "improved"
        else:
            grade = "ok"
        entries.append(CaseComparison(
            name=base.name, grade=grade,
            baseline_s=base.median_s, current_s=cur.median_s,
            delta_s=delta, threshold_s=threshold,
        ))
    baseline_names = {entry.name for entry in baseline.results}
    for cur in current.results:
        if cur.name not in baseline_names:
            entries.append(CaseComparison(
                name=cur.name, grade="new",
                baseline_s=None, current_s=cur.median_s,
            ))
    return BenchComparison(
        baseline_sha=baseline.git_sha,
        current_sha=current.git_sha,
        rel_threshold=rel_threshold,
        mad_k=mad_k,
        entries=entries,
    )
