"""Stage tracing: nested spans with wall time, counts, and attributes.

Instrumented code opens spans around pipeline stages::

    from repro.obs import span

    with span("prepare") as sp:
        prepared = prepare_element(element)
        sp.set("n_blocks", len(prepared.blocks))

``span()`` delegates to the *ambient* tracer.  By default that is the
:class:`NullTracer`, whose spans are a shared no-op singleton — the
disabled path costs one attribute lookup and an empty ``with`` block,
so instrumentation can stay on permanently in library code.  The CLI
(or a test) installs a recording :class:`Tracer` with
:func:`set_tracer`/:func:`use_tracer`, runs the workload, and reads
back the span tree and per-stage totals.

Tracers are deliberately process-local: :mod:`repro.core.parallel`
workers run in child processes and report timing through the parent's
``parallel_map`` span instead of shipping spans across the boundary.
Within a process, though, a recording :class:`Tracer` is thread-safe:
each thread nests spans on its own stack (``threading.local``), and
a span whose thread-level stack empties becomes a root of the shared
forest.  Spans also record an absolute wall-clock start
(:attr:`Span.start_ts`) and the opening thread id (:attr:`Span.tid`),
which is what lets :mod:`repro.obs.traceexport` emit Chrome
trace-event JSON with real ``ts``/``tid`` values.

Request correlation: every recorded span gets a unique
:attr:`Span.span_id`, and when it opens inside an ambient
:class:`~repro.obs.reqctx.RequestContext` the request id lands in its
attributes — so a span forest can be filtered down to one request.
The daemon installs a *scoped* tracer per request
(:func:`use_scoped_tracer`, a :class:`contextvars.ContextVar`
override of the process-global ambient tracer) so concurrent requests
record into isolated forests without touching each other, which is
what makes per-request slow-capture possible.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.reqctx import current_request_id

__all__ = [
    "NullTracer",
    "Span",
    "Tracer",
    "current_span_id",
    "get_tracer",
    "set_tracer",
    "span",
    "use_scoped_tracer",
    "use_tracer",
]

#: process-wide monotonic span-id source; rendered hex with a short
#: per-process random prefix so ids from different processes (or
#: daemon restarts) don't collide in merged logs.
_span_counter = itertools.count(1)
_SPAN_ID_PREFIX = f"{threading.get_ident() ^ int(time.time() * 1e6):012x}"[-6:]


def _next_span_id() -> str:
    return f"{_SPAN_ID_PREFIX}{next(_span_counter):010x}"


class Span:
    """One timed stage: a name, wall-clock bounds, attributes, children."""

    __slots__ = ("name", "span_id", "start_s", "end_s", "start_ts", "tid",
                 "attrs", "children")

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        #: unique id assigned when a recording tracer opens the span
        #: (empty until then); correlates spans with log lines/events.
        self.span_id: str = ""
        self.start_s: float = 0.0
        self.end_s: Optional[float] = None
        #: absolute wall-clock start (``time.time()`` epoch seconds) —
        #: ``start_s`` is a perf_counter reading, good for durations
        #: but meaningless as a timestamp.
        self.start_ts: float = 0.0
        #: identity of the thread that opened the span.
        self.tid: int = 0
        self.attrs: Dict[str, Any] = dict(attrs)
        self.children: List["Span"] = []

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return max(end - self.start_s, 0.0)

    def set(self, key: str, value: Any) -> "Span":
        """Attach an arbitrary key/value attribute (dataset sizes,
        cache results, model scores, ...)."""
        self.attrs[key] = value
        return self

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_s": round(self.duration_s, 6),
        }
        if self.span_id:
            out["span_id"] = self.span_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_s:.6f}s)"


class _SpanContext:
    """Context manager binding one :class:`Span` to its tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span_: Span) -> None:
        self._tracer = tracer
        self._span = span_

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Records a forest of nested spans plus per-stage call counts.

    Span nesting is tracked **per thread**: concurrent callers each
    stack their own spans (no cross-thread corruption), and finished
    top-level spans from every thread land in the shared ``roots``
    forest, ordered by completion.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._roots_lock = threading.Lock()
        self._local = threading.local()

    @property
    def _stack(self) -> List[Span]:
        """The calling thread's open-span stack."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        return _SpanContext(self, Span(name, **attrs))

    def _push(self, span_: Span) -> None:
        span_.span_id = _next_span_id()
        request_id = current_request_id()
        if request_id is not None and "request_id" not in span_.attrs:
            span_.attrs["request_id"] = request_id
        span_.start_s = time.perf_counter()
        span_.start_ts = time.time()
        span_.tid = threading.get_ident()
        self._stack.append(span_)

    def _pop(self, span_: Span) -> None:
        span_.end_s = time.perf_counter()
        stack = self._stack
        popped = stack.pop()
        assert popped is span_, "span stack corrupted"
        if stack:
            stack[-1].children.append(span_)
        else:
            with self._roots_lock:
                self.roots.append(span_)

    def iter_spans(self) -> Iterator[Span]:
        """Every finished span, depth-first in start order."""
        stack = list(reversed(self.roots))
        while stack:
            span_ = stack.pop()
            yield span_
            stack.extend(reversed(span_.children))

    def stage_totals(self) -> Dict[str, Dict[str, float]]:
        """Aggregated ``{stage: {"calls": n, "total_s": seconds}}``
        across the whole forest (same-named spans accumulate)."""
        totals: Dict[str, Dict[str, float]] = {}
        for span_ in self.iter_spans():
            entry = totals.setdefault(
                span_.name, {"calls": 0, "total_s": 0.0}
            )
            entry["calls"] += 1
            entry["total_s"] += span_.duration_s
        for entry in totals.values():
            entry["total_s"] = round(entry["total_s"], 6)
        return totals

    def clear(self) -> None:
        with self._roots_lock:
            self.roots = []
        self._local.stack = []


class _NullSpan:
    """Shared do-nothing span; also its own context manager."""

    __slots__ = ()
    name = ""
    span_id = ""
    attrs: Dict[str, Any] = {}
    children: List[Span] = []
    duration_s = 0.0
    start_ts = 0.0
    tid = 0

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {"name": "", "duration_s": 0.0}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every ``span()`` is the same no-op object."""

    enabled = False
    roots: List[Span] = []

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def iter_spans(self) -> Iterator[Span]:
        return iter(())

    def stage_totals(self) -> Dict[str, Dict[str, float]]:
        return {}

    def clear(self) -> None:
        pass


_current: "Tracer | NullTracer" = NullTracer()

#: context-local override of the ambient tracer (``None`` = use the
#: process-global one).  Per-thread/per-context by construction, so a
#: request handler can record its own isolated span forest while other
#: threads keep reporting to the global tracer.
_scoped: contextvars.ContextVar["Tracer | NullTracer | None"] = \
    contextvars.ContextVar("repro_scoped_tracer", default=None)


def get_tracer() -> "Tracer | NullTracer":
    """The ambient tracer instrumented code reports to (the scoped
    override when one is installed, else the process-global one)."""
    scoped = _scoped.get()
    return _current if scoped is None else scoped


def set_tracer(tracer: "Tracer | NullTracer") -> "Tracer | NullTracer":
    """Install ``tracer`` as ambient; returns the previous one so
    callers can restore it."""
    global _current
    previous = _current
    _current = tracer
    return previous


@contextmanager
def use_tracer(tracer: "Tracer | NullTracer") -> Iterator["Tracer | NullTracer"]:
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def use_scoped_tracer(
    tracer: "Tracer | NullTracer",
) -> Iterator["Tracer | NullTracer"]:
    """Install ``tracer`` as a *context-local* ambient tracer.

    Unlike :func:`use_tracer` this touches only the calling
    thread/context — the daemon wraps each request in one so every
    request records an isolated span forest regardless of what the
    other worker threads are doing.
    """
    token = _scoped.set(tracer)
    try:
        yield tracer
    finally:
        _scoped.reset(token)


def current_span_id() -> str:
    """The innermost open span's id on the calling thread's ambient
    tracer, or ``""`` outside any recorded span (what the JSON log
    formatter stamps onto records)."""
    tracer = get_tracer()
    stack = getattr(getattr(tracer, "_local", None), "stack", None)
    if stack:
        return stack[-1].span_id
    return ""


def span(name: str, **attrs: Any):
    """Open a span on the ambient tracer (no-op when tracing is off)."""
    scoped = _scoped.get()
    return (_current if scoped is None else scoped).span(name, **attrs)
