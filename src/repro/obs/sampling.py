"""Signal-based sampling profiler emitting collapsed stacks.

A :class:`SamplingProfiler` arms an interval timer
(``signal.setitimer``) and, on every tick, records the Python call
stack of the interrupted frame.  Aggregated samples come out in the
*collapsed stack* format flamegraph tooling consumes (one
``outer;inner;leaf count`` line per distinct stack — feed the file to
``flamegraph.pl`` or https://www.speedscope.app)::

    with SamplingProfiler(interval_s=0.002) as prof:
        clara.analyze("aggcounter", spec)
    print(prof.collapsed())

Two modes: ``"cpu"`` (default, ``ITIMER_PROF``/``SIGPROF``) samples
CPU time and ignores blocking waits; ``"wall"``
(``ITIMER_REAL``/``SIGALRM``) samples wall-clock time.  CPython only
delivers signals to the main thread, so the profiler sees the main
thread's stacks; started from any other thread it degrades to an
inert no-op (``active`` stays False) rather than failing the
workload.  The disabled path costs nothing: no timer is armed unless
``start()`` runs.

``clara bench --flame-out stacks.txt`` wraps the whole benchmark
suite in one profiler and writes the collapsed stacks for the hottest
stages.
"""

from __future__ import annotations

import signal
import threading
from typing import Dict, List, Tuple

__all__ = ["SamplingProfiler"]

#: mode name -> (itimer constant, signal number).
_MODES = {
    "cpu": (signal.ITIMER_PROF, signal.SIGPROF),
    "wall": (signal.ITIMER_REAL, signal.SIGALRM),
}


class SamplingProfiler:
    """Collect collapsed call stacks at a fixed sampling interval."""

    def __init__(
        self,
        interval_s: float = 0.005,
        mode: str = "cpu",
        max_depth: int = 64,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {tuple(_MODES)}")
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = interval_s
        self.mode = mode
        self.max_depth = max_depth
        #: distinct root-to-leaf stacks -> sample count.
        self.counts: Dict[Tuple[str, ...], int] = {}
        self.n_samples = 0
        self.active = False
        self._previous_handler = None
        self._previous_timer: Tuple[float, float] = (0.0, 0.0)

    # -- sampling ---------------------------------------------------------
    def _frames(self, frame) -> Tuple[str, ...]:
        """Root-to-leaf ``module:function`` names of one stack."""
        names: List[str] = []
        while frame is not None and len(names) < self.max_depth:
            module = frame.f_globals.get("__name__", "?")
            names.append(f"{module}:{frame.f_code.co_name}")
            frame = frame.f_back
        names.reverse()
        return tuple(names)

    def _handle(self, signum, frame) -> None:
        if frame is not None:
            stack = self._frames(frame)
            self.counts[stack] = self.counts.get(stack, 0) + 1
            self.n_samples += 1

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Arm the timer.  Off the main thread (where CPython cannot
        install signal handlers) this leaves the profiler inert."""
        if self.active:
            return self
        if threading.current_thread() is not threading.main_thread():
            return self
        itimer, signum = _MODES[self.mode]
        try:
            self._previous_handler = signal.signal(signum, self._handle)
            self._previous_timer = signal.setitimer(
                itimer, self.interval_s, self.interval_s
            )
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            return self
        self.active = True
        return self

    def stop(self) -> "SamplingProfiler":
        """Disarm the timer and restore the previous handler."""
        if not self.active:
            return self
        itimer, signum = _MODES[self.mode]
        signal.setitimer(itimer, *self._previous_timer)
        if self._previous_handler is not None:
            signal.signal(signum, self._previous_handler)
        self._previous_handler = None
        self.active = False
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- output -----------------------------------------------------------
    def top(self, n: int = 10) -> List[Tuple[Tuple[str, ...], int]]:
        """The ``n`` hottest stacks, most-sampled first."""
        ranked = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def collapsed(self) -> str:
        """All samples in collapsed-stack format, hottest first."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in self.top(len(self.counts))
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str) -> str:
        """Write :meth:`collapsed` output to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.collapsed())
        return path
