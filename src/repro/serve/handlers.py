"""Request execution, independent of transport.

:class:`ClaraService` owns one warm :class:`~repro.core.Clara` and
turns validated wire requests into response envelopes.  The HTTP
server calls it from its worker threads; the CLI's ``--json`` paths
call the same serializers — one implementation, two transports, so the
payloads cannot drift apart.

Thread model: analyze/lint/colocation only *read* the fitted advisors
(each call builds its own interpreter and profile), so concurrent
execution is safe.  The two mutating operations are serialized: the
lazily trained colocation ranker behind a lock, and predictor
inference behind the :class:`~repro.serve.broker.PredictBroker` (which
is exactly what makes concurrency profitable rather than just safe).
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ClaraError
from repro.obs import get_logger, span
from repro.obs.events import EVENT_KINDS, get_journal
from repro.obs.slo import get_slo_tracker
from repro.serve.broker import PredictBroker
from repro.serve.schemas import (
    REQUEST_KINDS,
    WIRE_SCHEMA,
    AnalyzeRequest,
    ColocationRequest,
    LintRequest,
    analysis_result_payload,
    envelope,
    lint_run_payload,
)

__all__ = ["ClaraService", "run_lint_reports"]

log = get_logger(__name__)


def run_lint_reports(
    elements: Optional[Sequence[str]] = None,
    only: Optional[Sequence[str]] = None,
    disable: Optional[Sequence[str]] = None,
    target: Optional[str] = None,
    cache: Any = "off",
    baseline: Any = None,
):
    """Run the offload linter over library elements and return
    ``(registry, reports, stats)`` — the one lint execution path behind
    both ``clara lint`` and ``POST /v1/lint``.  ``target`` selects the
    NIC backend whose capacity thresholds the rules check (``None``
    means the registry default).

    ``cache`` enables incremental lint: ``"auto"`` uses the default
    :class:`~repro.core.artifacts.ArtifactCache`, ``"off"``/``None``
    disables caching, anything else is used as a cache object directly.
    ``baseline`` filters accepted legacy findings: a
    :class:`~repro.nfir.analysis.baseline.LintBaseline` or a flat
    iterable of fingerprint strings (the wire form).  ``stats`` reports
    ``hits``/``misses``/``n_baselined`` for the run.
    """
    from repro.click.elements import ELEMENT_BUILDERS, build_element
    from repro.core.prepare import prepare_element
    from repro.nfir.analysis import default_registry
    from repro.nfir.analysis.lint_cache import cached_lint_run
    from repro.nic.targets import resolve_target

    registry = default_registry()
    target_desc = resolve_target(target)
    only = list(only) if only else None
    disable = list(disable) if disable else None
    try:
        registry.select(only=only, disable=disable)
    except KeyError as exc:
        raise ClaraError(
            f"{exc.args[0]} (known: {', '.join(registry.codes)})"
        ) from None
    cache_obj: Any = None
    if cache == "auto":
        from repro.core.artifacts import ArtifactCache

        cache_obj = ArtifactCache()
    elif cache not in (None, "off"):
        cache_obj = cache
    names = list(elements) if elements else sorted(ELEMENT_BUILDERS)
    reports = []
    stats = {
        "cache": "off" if cache_obj is None else "on",
        "hits": 0,
        "misses": 0,
        "n_baselined": 0,
    }
    with span("lint_corpus", n_elements=len(names),
              target=target_desc.name) as sp:
        for name in names:
            prepared = prepare_element(build_element(name))
            report, outcome = cached_lint_run(
                prepared.module, registry, cache_obj,
                only=only, disable=disable, target=target_desc,
            )
            if outcome == "hit":
                stats["hits"] += 1
            elif outcome == "miss":
                stats["misses"] += 1
            reports.append(report)
        if baseline is not None:
            from repro.nfir.analysis.baseline import (
                LintBaseline,
                apply_baseline,
            )

            if not isinstance(baseline, LintBaseline):
                # Wire form: a flat fingerprint list. Fingerprints hash
                # the module name, so sharing the set across modules
                # cannot cross-match.
                flat = {str(f) for f in baseline}
                baseline = LintBaseline(fingerprints={
                    r.module_name: flat for r in reports
                })
            reports, stats["n_baselined"] = apply_baseline(reports, baseline)
        sp.set("n_diagnostics", sum(len(r.diagnostics) for r in reports))
        sp.set("cache_hits", stats["hits"])
        sp.set("n_baselined", stats["n_baselined"])
    return registry, reports, stats


class ClaraService:
    """One warm Clara answering analyze/lint/colocation requests.

    ``batch_window_s``/``max_batch`` configure the inference broker
    (``max_batch=1`` with a zero window still serializes inference but
    effectively disables batching).  The colocation ranker is trained
    lazily — on the first ``colocation`` request — with
    ``colocation_programs``/``colocation_groups`` sized deployments,
    behind a lock so concurrent first requests train once.

    ``predict_cache`` attaches an in-memory content-addressed
    prediction cache to every served predictor (repeat analyzes answer
    from it; results are bit-identical either way) and
    ``predictor_mode`` selects the serving mode (``lstm``,
    ``distilled``, or ``auto``) — both also apply to lazily trained
    per-target Claras.
    """

    def __init__(
        self,
        clara,
        batch_window_s: float = 0.002,
        max_batch: int = 64,
        colocation_programs: int = 12,
        colocation_groups: int = 12,
        predict_cache: bool = True,
        predictor_mode: str = "lstm",
    ) -> None:
        self.clara = clara
        self.colocation_programs = int(colocation_programs)
        self.colocation_groups = int(colocation_groups)
        self.predict_cache = bool(predict_cache)
        self.predictor_mode = predictor_mode
        self._colocation_lock = threading.Lock()
        #: per-target warm Claras; the primary serves its own target.
        self._claras: Dict[str, Any] = {clara.nic.target.name: clara}
        self._target_lock = threading.Lock()
        self._configure_predictor(clara)
        self.broker = PredictBroker.for_predictor(
            clara.predictor, window_s=batch_window_s, max_batch=max_batch
        )

    def _configure_predictor(self, clara) -> None:
        """Apply the service's serving mode and (in-memory) prediction
        cache to one warm Clara — mode first, because the cache
        namespace depends on it."""
        clara.predictor.predictor_mode = self.predictor_mode
        # A cold Clara (healthz 503 until trained) has no weights to
        # fingerprint yet — the cache only attaches to fitted models.
        if self.predict_cache and clara.predictor.model is not None:
            clara.enable_prediction_cache()

    def clara_for(self, target: Optional[str]):
        """The warm Clara for ``target`` (``None`` = the primary's).

        Non-primary targets are trained lazily on first use — same
        config and seed as the primary, artifact-cache backed — behind
        a lock, like the colocation ranker.  Only the primary's
        predictor goes through the inference broker.
        """
        if target is None or target == self.clara.nic.target.name:
            return self.clara
        existing = self._claras.get(target)
        if existing is not None:
            return existing
        with self._target_lock:
            existing = self._claras.get(target)
            if existing is None:
                import time

                from repro.core.artifacts import TrainConfig
                from repro.core.pipeline import Clara

                config = self.clara.train_config or TrainConfig.quick()
                log.info(
                    "target %s cold: training a Clara for it (%s)",
                    target, config,
                )
                t0 = time.perf_counter()
                existing = Clara(seed=self.clara.seed, target=target)
                existing.train(config, cache="auto")
                self._configure_predictor(existing)
                self._claras[target] = existing
                get_journal().emit(
                    "target_train", target=target,
                    duration_s=round(time.perf_counter() - t0, 6),
                )
        return existing

    # -- endpoints ------------------------------------------------------
    def analyze(self, request: AnalyzeRequest) -> Dict[str, Any]:
        clara = self.clara_for(request.target)
        analysis = clara.analyze(
            request.element, request.workload, trace_seed=request.trace_seed
        )
        config = clara.port_config(analysis)
        return envelope(
            "analysis_result", analysis_result_payload(analysis, config)
        )

    def lint(self, request: LintRequest) -> Dict[str, Any]:
        target = request.target or self.clara.nic.target.name
        _registry, reports, stats = run_lint_reports(
            elements=request.elements,
            only=request.only,
            disable=request.disable,
            target=target,
            cache="auto",
            baseline=request.baseline or None,
        )
        return envelope(
            "lint_run",
            lint_run_payload(reports, target=target, stats=stats),
        )

    def colocation(self, request: ColocationRequest) -> Dict[str, Any]:
        from repro.core.colocation import ranking_to_dict

        self._ensure_colocation()
        candidates = self._build_candidates(
            request.elements, request.workload, request.trace_seed
        )
        pairs = list(itertools.combinations(candidates, 2))
        ranked = self.clara.rank_colocations(pairs)
        return envelope("colocation_ranking", ranking_to_dict(ranked))

    def events(
        self,
        kind: Optional[str] = None,
        request_id: Optional[str] = None,
        since_seq: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        """The ``events`` envelope for ``GET /v1/events``: the
        journal's retained events (oldest-first, optionally filtered)
        plus the counters a poller needs to detect a slid window."""
        if kind is not None and kind not in EVENT_KINDS:
            raise ClaraError(
                f"unknown event kind {kind!r}"
                f" (known: {', '.join(EVENT_KINDS)})"
            )
        journal = get_journal()
        dicts = journal.to_dicts(
            kind=kind, request_id=request_id,
            since_seq=since_seq, limit=limit,
        )
        return envelope("events", {
            "events": dicts,
            "n_returned": len(dicts),
            "n_emitted": journal.n_emitted,
            "n_dropped": journal.n_dropped,
            "capacity": journal.capacity,
            "kinds": list(EVENT_KINDS),
        })

    def health(self) -> Tuple[int, Dict[str, Any]]:
        """``(http_status, envelope)`` for the readiness probe: 200
        once the advisors are warm, 503 while they are not.  The
        ``slo`` section carries the sliding-window latency quantiles
        and the ok/degraded verdict — degradation does *not* flip the
        status code (readiness is for load balancers; degradation is
        for operators and alerting)."""
        from repro.click.elements import ELEMENT_BUILDERS
        from repro.nic.targets import list_targets

        trained = bool(getattr(self.clara, "trained", False))
        result = {
            "ready": trained,
            "trained": trained,
            "slo": get_slo_tracker().snapshot(),
            "colocation_trained": self.clara.colocation is not None,
            "n_elements": len(ELEMENT_BUILDERS),
            "wire_schema": WIRE_SCHEMA,
            "request_kinds": list(REQUEST_KINDS),
            "targets": {
                "default": self.clara.nic.target.name,
                "available": list(list_targets()),
                "warm": sorted(self._claras),
            },
            "batching": {
                "window_s": self.broker.window_s,
                "max_batch": self.broker.max_batch,
                "batches": self.broker.n_batches,
                "batched_requests": self.broker.n_jobs,
            },
            "predictor": self._predictor_health(),
        }
        return (200 if trained else 503), envelope("health", result)

    def _predictor_health(self) -> Dict[str, Any]:
        """Serving-mode and prediction-cache stats, summed over every
        warm Clara (the per-target ones share the service config)."""
        hits = misses = entries = 0
        for clara in self._claras.values():
            cache = clara.predictor.prediction_cache
            if cache is not None:
                hits += cache.hits
                misses += cache.misses
                entries += len(cache)
        return {
            "mode": self.predictor_mode,
            "cache": {
                "enabled": self.predict_cache,
                "hits": hits,
                "misses": misses,
                "entries": entries,
            },
        }

    # -- internals ------------------------------------------------------
    def _ensure_colocation(self) -> None:
        if self.clara.colocation is not None:
            return
        with self._colocation_lock:
            if self.clara.colocation is None:
                import time

                log.info(
                    "colocation ranker cold: training (%d programs,"
                    " %d groups)",
                    self.colocation_programs, self.colocation_groups,
                )
                t0 = time.perf_counter()
                self.clara.train_colocation(
                    n_programs=self.colocation_programs,
                    n_groups=self.colocation_groups,
                )
                get_journal().emit(
                    "colocation_train",
                    n_programs=self.colocation_programs,
                    n_groups=self.colocation_groups,
                    duration_s=round(time.perf_counter() - t0, 6),
                )

    def _build_candidates(
        self,
        names: Sequence[str],
        spec,
        trace_seed: int,
    ) -> List[Any]:
        from repro.click.elements import (
            build_element,
            initial_state,
            install_state,
        )
        from repro.click.interp import Interpreter
        from repro.core.colocation import make_candidate
        from repro.core.prepare import prepare_element
        from repro.workload import generate_trace

        trace = generate_trace(spec, seed=trace_seed)
        candidates = []
        with span("build_colocation_candidates", n_elements=len(names)):
            for name in names:
                element = build_element(name)
                prepared = prepare_element(element)
                interp = Interpreter(prepared.module, seed=trace_seed)
                install_state(interp, initial_state(element))
                candidates.append(
                    make_candidate(prepared, interp.run_trace(trace))
                )
        return candidates

    def close(self) -> None:
        """Detach the broker (restores direct inference)."""
        self.broker.close()
