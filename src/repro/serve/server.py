"""``clara serve``: the warm analysis daemon.

A stdlib :class:`~http.server.ThreadingHTTPServer` (one thread per
connection, daemonic) in front of a :class:`~repro.serve.handlers.
ClaraService`.  Endpoints:

* ``POST /v1/analyze``    — :class:`AnalyzeRequest` -> ``analysis_result``
* ``POST /v1/lint``       — :class:`LintRequest` -> ``lint_run``
* ``POST /v1/colocation`` — :class:`ColocationRequest` -> ``colocation_ranking``
* ``GET  /v1/events``     — the obs event journal (``?kind=``,
  ``?request_id=``, ``?since_seq=``, ``?n=`` filters); the poll
  itself is metered but not journaled, so polling cannot evict the
  events being observed
* ``GET  /healthz``       — readiness probe (200 warm / 503 cold),
  plus the sliding-window SLO verdict (ok/degraded, rolling
  p50/p95/p99 and error rate per endpoint)
* ``GET  /metrics``       — the process metrics registry, Prometheus text
  (including the ``slo_*`` gauges projected at scrape time)

Every response body is the versioned envelope of
:mod:`repro.serve.schemas`; :class:`~repro.errors.ClaraError`
subclasses map to their documented ``http_status``.  Per-endpoint
latency histograms (``http_request_seconds``), request counters
(``http_requests_total``), and in-flight gauges
(``http_inflight_requests``) feed the same registry ``/metrics``
exposes, so the daemon observes itself.

Request correlation: every request runs under a
:class:`~repro.obs.reqctx.RequestContext` whose id comes from the
``X-Clara-Request-Id`` header (or is minted).  The id is echoed in the
``X-Clara-Request-Id`` response header and the envelope's
``request_id`` field, stamped on every span and JSON log line, and
carried by the journal events the request produces (start/finish,
cache hit/miss, broker batch).  Each request also records its own
isolated span forest (a scoped tracer), which is what
``slow_request`` capture dumps into the journal when a request
exceeds :attr:`ServeConfig.slow_request_ms`.
"""

from __future__ import annotations

import json
import re
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import ClaraError, http_status_for
from repro.obs import (
    RequestContext,
    Tracer,
    get_logger,
    get_metrics,
    span,
    track_inflight,
    use_request,
    use_scoped_tracer,
)
from repro.obs.events import get_journal
from repro.obs.metrics import DEFAULT_BUCKETS
from repro.obs.slo import (
    DEFAULT_ERROR_RATE_THRESHOLD,
    DEFAULT_P99_THRESHOLD_S,
    DEFAULT_WINDOW_S,
    get_slo_tracker,
)
from repro.serve.handlers import ClaraService
from repro.serve.schemas import (
    AnalyzeRequest,
    ColocationRequest,
    LintRequest,
    dump_envelope,
    error_envelope,
)

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "ClaraServer", "ServeConfig"]

log = get_logger(__name__)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8787


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``clara serve`` needs beyond a trained Clara."""

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    #: broker straggler window, milliseconds (0 disables the wait).
    batch_window_ms: float = 2.0
    #: max inference calls merged into one model invocation.
    max_batch: int = 64
    #: lazy colocation-ranker training sizes.
    colocation_programs: int = 12
    colocation_groups: int = 12
    #: in-memory content-addressed prediction cache (repeat analyzes
    #: answer from it; cached and uncached results are bit-identical).
    predict_cache: bool = True
    #: predictor serving mode: ``lstm``, ``distilled``, or ``auto``.
    predictor_mode: str = "lstm"
    #: a request slower than this (milliseconds) has its full span
    #: tree captured into the journal as a ``slow_request`` event
    #: (0 disables capture).
    slow_request_ms: float = 5000.0
    #: when set, each slow request additionally writes a Chrome
    #: trace-event file ``slow-<request id>.trace.json`` under this
    #: directory (created on demand).
    slow_trace_dir: Optional[str] = None
    #: sliding SLO window width, seconds.
    slo_window_s: float = DEFAULT_WINDOW_S
    #: windowed p99 above this marks an endpoint degraded, seconds.
    slo_p99_s: float = DEFAULT_P99_THRESHOLD_S
    #: windowed 5xx rate above this marks an endpoint degraded.
    slo_error_rate: float = DEFAULT_ERROR_RATE_THRESHOLD


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ClaraServer`'s service."""

    server_version = "clara-serve/1"
    protocol_version = "HTTP/1.1"

    # set by ClaraServer on the *server* object; typed here for clarity.
    @property
    def service(self) -> ClaraService:
        return self.server.clara_service  # type: ignore[attr-defined]

    # -- plumbing -------------------------------------------------------
    def log_message(self, fmt: str, *args: Any) -> None:
        log.debug("%s %s", self.address_string(), fmt % args)

    def _send(self, status: int, body: bytes,
              content_type: str = "application/json") -> None:
        from repro.obs import current_request_id

        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        request_id = current_request_id()
        if request_id is not None:
            self.send_header("X-Clara-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_envelope(self, status: int, env: Dict[str, Any]) -> None:
        self._send(status, (dump_envelope(env) + "\n").encode("utf-8"))

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ClaraError("empty request body (expected JSON)")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ClaraError(f"request body is not valid JSON: {exc}") \
                from None
        if not isinstance(payload, dict):
            raise ClaraError("request body must be a JSON object")
        return payload

    @property
    def _config(self) -> "ServeConfig":
        return self.server.clara_config  # type: ignore[attr-defined]

    def _instrumented(self, endpoint: str, fn,
                      emit_events: bool = True) -> None:
        """Run ``fn() -> (status, envelope)`` under a request context
        with the endpoint's latency histogram, in-flight gauge, and
        request counter.

        The request id comes from the client's ``X-Clara-Request-Id``
        header (minted when absent) and scopes everything ``fn`` does:
        a per-request recording tracer (isolated from concurrent
        requests), journal start/finish events, SLO observation, and —
        when the request exceeds the slow threshold — a ``slow_request``
        journal event carrying the full captured span tree.

        ``emit_events=False`` keeps the request out of the journal
        (metrics and SLO observation still happen) — used for read-only
        observability endpoints like ``/v1/events``, where a steady
        poller would otherwise fill the ring with its own polling
        events and evict the serving events it is trying to observe.
        """
        metrics = get_metrics()
        journal = get_journal()
        ctx = RequestContext(
            request_id=self.headers.get("X-Clara-Request-Id"),
            endpoint=endpoint,
        )
        tracer = Tracer()
        status = 500
        start_s = time.perf_counter()
        with use_request(ctx), use_scoped_tracer(tracer):
            if emit_events:
                journal.emit("request_start", endpoint=endpoint,
                             method=self.command)
            try:
                with track_inflight("http_inflight_requests",
                                    endpoint=endpoint), \
                        metrics.histogram("http_request_seconds",
                                          buckets=DEFAULT_BUCKETS,
                                          endpoint=endpoint).time(), \
                        span("http_request", endpoint=endpoint):
                    status, env = fn()
                    self._send_envelope(status, env)
            except ClaraError as exc:
                status = http_status_for(exc)
                log.info("%s -> %d %s: %s", endpoint, status,
                         type(exc).__name__, exc)
                self._send_envelope(status, error_envelope(exc))
            except BrokenPipeError:  # client went away mid-response
                status = 499
                log.debug("%s: client disconnected mid-response",
                          endpoint)
                metrics.counter("http_client_disconnects_total",
                                endpoint=endpoint).inc()
            except Exception as exc:  # noqa: BLE001 - daemon must not die
                status = 500
                log.exception("%s: unhandled error", endpoint)
                self._send_envelope(status, error_envelope(exc))
            finally:
                duration_s = time.perf_counter() - start_s
                metrics.counter("http_requests_total", endpoint=endpoint,
                                status=str(status)).inc()
                get_slo_tracker().observe(endpoint, duration_s,
                                          status=status)
                if emit_events:
                    journal.emit("request_finish", endpoint=endpoint,
                                 status=status,
                                 duration_s=round(duration_s, 6))
                self._capture_slow(endpoint, tracer, duration_s, status,
                                   emit_events=emit_events)

    def _capture_slow(self, endpoint: str, tracer: Tracer,
                      duration_s: float, status: int,
                      emit_events: bool = True) -> None:
        """Journal the request's span tree when it blew the latency
        threshold (and optionally dump a Chrome trace file)."""
        threshold_s = self._config.slow_request_ms / 1000.0
        if threshold_s <= 0 or duration_s < threshold_s:
            return
        log.warning("%s: slow request (%.3fs > %.3fs threshold)",
                    endpoint, duration_s, threshold_s)
        if not emit_events:  # observability polls stay out of the journal
            return
        trace_file = None
        if self._config.slow_trace_dir:
            import os

            from repro.obs import current_request_id, write_chrome_trace

            try:
                os.makedirs(self._config.slow_trace_dir, exist_ok=True)
                # The request id is client-controlled and may contain
                # path separators; only a safe charset reaches the
                # filename, so a hostile id cannot escape the trace dir.
                rid = current_request_id() or "unknown"
                safe_rid = re.sub(r"[^A-Za-z0-9._-]", "_", rid)
                trace_file = os.path.join(
                    self._config.slow_trace_dir,
                    f"slow-{safe_rid}.trace.json",
                )
                write_chrome_trace(tracer, trace_file)
            except OSError:  # diagnostics must never fail the request
                log.exception("slow-trace export failed")
                trace_file = None
        get_journal().emit(
            "slow_request",
            endpoint=endpoint,
            status=status,
            duration_s=round(duration_s, 6),
            threshold_s=threshold_s,
            spans=[root.to_dict() for root in tracer.roots],
            trace_file=trace_file,
        )

    # -- routes ---------------------------------------------------------
    _POST_ROUTES = {
        "/v1/analyze": (AnalyzeRequest, "analyze"),
        "/v1/lint": (LintRequest, "lint"),
        "/v1/colocation": (ColocationRequest, "colocation"),
    }

    @staticmethod
    def _query_int(query: Dict[str, Any], name: str) -> Optional[int]:
        values = query.get(name)
        if not values:
            return None
        try:
            return int(values[-1])
        except ValueError:
            raise ClaraError(
                f"query parameter {name!r} must be an integer"
            ) from None

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        url = urlsplit(self.path)
        if url.path == "/healthz":
            self._instrumented("/healthz", self.service.health)
        elif url.path == "/v1/events":
            query = parse_qs(url.query)

            def run() -> Tuple[int, Dict[str, Any]]:
                return 200, self.service.events(
                    kind=(query.get("kind") or [None])[-1],
                    request_id=(query.get("request_id") or [None])[-1],
                    since_seq=self._query_int(query, "since_seq"),
                    limit=self._query_int(query, "n"),
                )

            # emit_events=False: reading the journal must not write to
            # it, or pollers evict the events they came to observe.
            self._instrumented("/v1/events", run, emit_events=False)
        elif url.path == "/metrics":
            # Prometheus text, not an envelope (scrapers expect the
            # exposition format verbatim).  The SLO gauges are
            # projected from the sliding window at scrape time, so
            # they are as fresh as the scrape.
            with track_inflight("http_inflight_requests",
                                endpoint="/metrics"):
                get_slo_tracker().export_gauges(get_metrics())
                body = get_metrics().to_prometheus().encode("utf-8")
                self._send(200, body,
                           content_type="text/plain; version=0.0.4")
            get_metrics().counter("http_requests_total",
                                  endpoint="/metrics", status="200").inc()
        else:
            self._send_envelope(
                404,
                error_envelope(ClaraError(f"no such endpoint {self.path}")),
            )

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        route = self._POST_ROUTES.get(self.path)
        if route is None:
            self._send_envelope(
                404,
                error_envelope(ClaraError(f"no such endpoint {self.path}")),
            )
            return
        request_cls, method = route

        def run() -> Tuple[int, Dict[str, Any]]:
            request = request_cls.from_dict(self._read_json())
            return 200, getattr(self.service, method)(request)

        self._instrumented(self.path, run)


class ClaraServer:
    """The daemon: a threading HTTP server bound to a service.

    ``port=0`` binds an ephemeral port (tests, bench); read it back
    from :attr:`port`.  :meth:`start` serves from a background thread
    (in-process embedding); :meth:`serve_forever` serves from the
    calling thread (the CLI) until :meth:`shutdown` — which is safe to
    call from any *other* thread, e.g. a signal-triggered one.
    """

    def __init__(
        self,
        service: ClaraService,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        config: Optional[ServeConfig] = None,
    ) -> None:
        self.service = service
        self.config = config if config is not None \
            else ServeConfig(host=host, port=port)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.clara_service = service  # type: ignore[attr-defined]
        self._httpd.clara_config = self.config  # type: ignore[attr-defined]
        # The SLO policy is daemon configuration applied to the
        # process-default tracker (mutated, not replaced, so events
        # and samples already recorded stay visible).
        tracker = get_slo_tracker()
        tracker.window_s = float(self.config.slo_window_s)
        tracker.p99_threshold_s = float(self.config.slo_p99_s)
        tracker.error_rate_threshold = float(self.config.slo_error_rate)
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "ClaraServer":
        """Serve from a daemon thread and return immediately."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="clara-serve", daemon=True,
        )
        self._thread.start()
        log.info("clara serve listening on %s", self.url())
        return self

    def serve_forever(self) -> None:
        """Serve from the calling thread until :meth:`shutdown`."""
        log.info("clara serve listening on %s", self.url())
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting, close the socket, detach the broker."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.service.close()

    def __enter__(self) -> "ClaraServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False


def build_server(clara, config: ServeConfig) -> ClaraServer:
    """Wire a trained Clara into a ready-to-start server per
    ``config`` (the one construction path the CLI, tests, and bench
    share)."""
    service = ClaraService(
        clara,
        batch_window_s=config.batch_window_ms / 1000.0,
        max_batch=config.max_batch,
        colocation_programs=config.colocation_programs,
        colocation_groups=config.colocation_groups,
        predict_cache=config.predict_cache,
        predictor_mode=config.predictor_mode,
    )
    return ClaraServer(service, host=config.host, port=config.port,
                       config=config)
