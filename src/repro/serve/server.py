"""``clara serve``: the warm analysis daemon.

A stdlib :class:`~http.server.ThreadingHTTPServer` (one thread per
connection, daemonic) in front of a :class:`~repro.serve.handlers.
ClaraService`.  Endpoints:

* ``POST /v1/analyze``    — :class:`AnalyzeRequest` -> ``analysis_result``
* ``POST /v1/lint``       — :class:`LintRequest` -> ``lint_run``
* ``POST /v1/colocation`` — :class:`ColocationRequest` -> ``colocation_ranking``
* ``GET  /healthz``       — readiness probe (200 warm / 503 cold)
* ``GET  /metrics``       — the process metrics registry, Prometheus text

Every response body is the versioned envelope of
:mod:`repro.serve.schemas`; :class:`~repro.errors.ClaraError`
subclasses map to their documented ``http_status``.  Per-endpoint
latency histograms (``http_request_seconds``), request counters
(``http_requests_total``), and in-flight gauges
(``http_inflight_requests``) feed the same registry ``/metrics``
exposes, so the daemon observes itself.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.errors import ClaraError, http_status_for
from repro.obs import get_logger, get_metrics, track_inflight
from repro.obs.metrics import DEFAULT_BUCKETS
from repro.serve.handlers import ClaraService
from repro.serve.schemas import (
    AnalyzeRequest,
    ColocationRequest,
    LintRequest,
    dump_envelope,
    error_envelope,
)

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "ClaraServer", "ServeConfig"]

log = get_logger(__name__)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8787


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``clara serve`` needs beyond a trained Clara."""

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    #: broker straggler window, milliseconds (0 disables the wait).
    batch_window_ms: float = 2.0
    #: max inference calls merged into one model invocation.
    max_batch: int = 64
    #: lazy colocation-ranker training sizes.
    colocation_programs: int = 12
    colocation_groups: int = 12
    #: in-memory content-addressed prediction cache (repeat analyzes
    #: answer from it; cached and uncached results are bit-identical).
    predict_cache: bool = True
    #: predictor serving mode: ``lstm``, ``distilled``, or ``auto``.
    predictor_mode: str = "lstm"


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ClaraServer`'s service."""

    server_version = "clara-serve/1"
    protocol_version = "HTTP/1.1"

    # set by ClaraServer on the *server* object; typed here for clarity.
    @property
    def service(self) -> ClaraService:
        return self.server.clara_service  # type: ignore[attr-defined]

    # -- plumbing -------------------------------------------------------
    def log_message(self, fmt: str, *args: Any) -> None:
        log.debug("%s %s", self.address_string(), fmt % args)

    def _send(self, status: int, body: bytes,
              content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_envelope(self, status: int, env: Dict[str, Any]) -> None:
        self._send(status, (dump_envelope(env) + "\n").encode("utf-8"))

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ClaraError("empty request body (expected JSON)")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ClaraError(f"request body is not valid JSON: {exc}") \
                from None
        if not isinstance(payload, dict):
            raise ClaraError("request body must be a JSON object")
        return payload

    def _instrumented(self, endpoint: str, fn) -> None:
        """Run ``fn() -> (status, envelope)`` with the endpoint's
        latency histogram, in-flight gauge, and request counter."""
        metrics = get_metrics()
        status = 500
        try:
            with track_inflight("http_inflight_requests",
                                endpoint=endpoint), \
                    metrics.histogram("http_request_seconds",
                                      buckets=DEFAULT_BUCKETS,
                                      endpoint=endpoint).time():
                status, env = fn()
                self._send_envelope(status, env)
        except ClaraError as exc:
            status = http_status_for(exc)
            log.info("%s -> %d %s: %s", endpoint, status,
                     type(exc).__name__, exc)
            self._send_envelope(status, error_envelope(exc))
        except BrokenPipeError:  # client went away mid-response
            status = 499
        except Exception as exc:  # noqa: BLE001 - daemon must not die
            status = 500
            log.exception("%s: unhandled error", endpoint)
            self._send_envelope(status, error_envelope(exc))
        finally:
            metrics.counter("http_requests_total", endpoint=endpoint,
                            status=str(status)).inc()

    # -- routes ---------------------------------------------------------
    _POST_ROUTES = {
        "/v1/analyze": (AnalyzeRequest, "analyze"),
        "/v1/lint": (LintRequest, "lint"),
        "/v1/colocation": (ColocationRequest, "colocation"),
    }

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/healthz":
            self._instrumented("/healthz", self.service.health)
        elif self.path == "/metrics":
            # Prometheus text, not an envelope (scrapers expect the
            # exposition format verbatim).
            with track_inflight("http_inflight_requests",
                                endpoint="/metrics"):
                body = get_metrics().to_prometheus().encode("utf-8")
                self._send(200, body,
                           content_type="text/plain; version=0.0.4")
            get_metrics().counter("http_requests_total",
                                  endpoint="/metrics", status="200").inc()
        else:
            self._send_envelope(
                404,
                error_envelope(ClaraError(f"no such endpoint {self.path}")),
            )

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        route = self._POST_ROUTES.get(self.path)
        if route is None:
            self._send_envelope(
                404,
                error_envelope(ClaraError(f"no such endpoint {self.path}")),
            )
            return
        request_cls, method = route

        def run() -> Tuple[int, Dict[str, Any]]:
            request = request_cls.from_dict(self._read_json())
            return 200, getattr(self.service, method)(request)

        self._instrumented(self.path, run)


class ClaraServer:
    """The daemon: a threading HTTP server bound to a service.

    ``port=0`` binds an ephemeral port (tests, bench); read it back
    from :attr:`port`.  :meth:`start` serves from a background thread
    (in-process embedding); :meth:`serve_forever` serves from the
    calling thread (the CLI) until :meth:`shutdown` — which is safe to
    call from any *other* thread, e.g. a signal-triggered one.
    """

    def __init__(
        self,
        service: ClaraService,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ) -> None:
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.clara_service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "ClaraServer":
        """Serve from a daemon thread and return immediately."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="clara-serve", daemon=True,
        )
        self._thread.start()
        log.info("clara serve listening on %s", self.url())
        return self

    def serve_forever(self) -> None:
        """Serve from the calling thread until :meth:`shutdown`."""
        log.info("clara serve listening on %s", self.url())
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting, close the socket, detach the broker."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.service.close()

    def __enter__(self) -> "ClaraServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False


def build_server(clara, config: ServeConfig) -> ClaraServer:
    """Wire a trained Clara into a ready-to-start server per
    ``config`` (the one construction path the CLI, tests, and bench
    share)."""
    service = ClaraService(
        clara,
        batch_window_s=config.batch_window_ms / 1000.0,
        max_batch=config.max_batch,
        colocation_programs=config.colocation_programs,
        colocation_groups=config.colocation_groups,
        predict_cache=config.predict_cache,
        predictor_mode=config.predictor_mode,
    )
    return ClaraServer(service, host=config.host, port=config.port)
