"""Clara-as-a-service: the warm analysis daemon and its wire API.

``clara analyze`` pays full process startup plus artifact load for a
single prediction; ``clara serve`` loads the trained advisors **once**
and then answers analyze/lint/colocation requests over JSON-over-HTTP,
batching predictor inference across concurrent requests so throughput
scales with concurrency.  The pieces:

* :mod:`repro.serve.schemas` — the versioned request dataclasses and
  the single response envelope shared *byte-for-byte* with the CLI's
  ``--json`` output (one serializer, two transports);
* :mod:`repro.serve.broker` — :class:`PredictBroker`, the batching
  inference broker installed as the predictor's serving hook;
* :mod:`repro.serve.handlers` — :class:`ClaraService`, transport-
  agnostic request execution over one warm Clara;
* :mod:`repro.serve.server` — :class:`ClaraServer`, the stdlib
  threading HTTP daemon with ``/healthz`` readiness and ``/metrics``
  Prometheus endpoints.

In-process embedding (tests, bench, notebooks)::

    from repro.serve import ServeConfig, build_server

    server = build_server(trained_clara, ServeConfig(port=0))
    server.start()                      # background thread
    ... urllib.request.urlopen(server.url("/healthz")) ...
    server.shutdown()
"""

from repro.serve.broker import PredictBroker
from repro.serve.handlers import ClaraService, run_lint_reports
from repro.serve.schemas import (
    WIRE_SCHEMA,
    AnalyzeRequest,
    ColocationRequest,
    LintRequest,
    analysis_result_payload,
    dump_envelope,
    envelope,
    error_envelope,
    lint_run_payload,
    port_config_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.serve.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ClaraServer,
    ServeConfig,
    build_server,
)

__all__ = [
    "AnalyzeRequest",
    "ClaraServer",
    "ClaraService",
    "ColocationRequest",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "LintRequest",
    "PredictBroker",
    "ServeConfig",
    "WIRE_SCHEMA",
    "analysis_result_payload",
    "build_server",
    "dump_envelope",
    "envelope",
    "error_envelope",
    "lint_run_payload",
    "port_config_to_dict",
    "run_lint_reports",
    "workload_from_dict",
    "workload_to_dict",
]
