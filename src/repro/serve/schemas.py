"""Versioned wire schemas: one serializer, two transports.

Every machine-readable payload Clara emits — ``clara analyze --json``
on stdout, or a ``clara serve`` HTTP response — is the same envelope::

    {"schema": 1, "kind": "<result kind>", "result": {...}, "error": null}

built by :func:`envelope` and rendered by :func:`dump_envelope`, so a
client can parse CLI output and API responses with one decoder.  On
failure ``result`` is ``null`` and ``error`` carries the typed
:class:`~repro.errors.ClaraError` facts (class name, message, CLI exit
code, HTTP status).

Requests are the mirror image: :class:`AnalyzeRequest`,
:class:`LintRequest`, and :class:`ColocationRequest` are versioned
dataclasses with strict ``from_dict`` constructors (unknown fields are
rejected, workloads are validated through
:class:`~repro.workload.spec.WorkloadSpec`) and round-trip
``to_dict``, so clients can build payloads from the same definitions
the server parses.

Bump :data:`WIRE_SCHEMA` on incompatible envelope/request changes;
the inner result payloads keep their own schema numbers (e.g. the
insight-report schema), versioned independently.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ClaraError, InvalidWorkloadError, http_status_for
from repro.nic.targets import get_target
from repro.obs.reqctx import current_request_id
from repro.workload.spec import WorkloadSpec

__all__ = [
    "AnalyzeRequest",
    "ColocationRequest",
    "LintRequest",
    "WIRE_SCHEMA",
    "analysis_result_payload",
    "dump_envelope",
    "envelope",
    "error_envelope",
    "lint_run_payload",
    "port_config_to_dict",
    "workload_from_dict",
    "workload_to_dict",
]

#: version of the request layouts and the response envelope.
#: v2: requests carry an optional ``target`` (registered NIC backend).
#: v3: lint requests carry an optional ``baseline`` (accepted
#: diagnostic fingerprints); lint_run payloads report suppression,
#: baseline, and cache statistics.
#: v4: envelopes carry ``request_id`` (the correlation id, echoed from
#: ``X-Clara-Request-Id`` or minted; ``null`` outside a request
#: context, e.g. plain CLI runs) and the daemon serves
#: ``GET /v1/events`` (the ``events`` result kind).
WIRE_SCHEMA = 4

_WORKLOAD_FIELDS = {f.name for f in dataclasses.fields(WorkloadSpec)}


def workload_from_dict(data: Mapping[str, Any]) -> WorkloadSpec:
    """A validated :class:`WorkloadSpec` from its wire dict.  Field
    names are exactly the spec's constructor fields; anything else is
    rejected so typos fail loudly instead of silently defaulting."""
    if not isinstance(data, Mapping):
        raise InvalidWorkloadError("workload must be a JSON object")
    unknown = sorted(set(data) - _WORKLOAD_FIELDS)
    if unknown:
        raise InvalidWorkloadError(
            f"unknown workload fields: {', '.join(unknown)}"
            f" (known: {', '.join(sorted(_WORKLOAD_FIELDS))})"
        )
    return WorkloadSpec(**dict(data))


def workload_to_dict(spec: WorkloadSpec) -> Dict[str, Any]:
    """The wire dict :func:`workload_from_dict` round-trips."""
    return dataclasses.asdict(spec)


def _check_header(data: Dict[str, Any], kind: str) -> None:
    """Pop and validate the optional ``schema``/``kind`` header fields
    of a request dict (in place)."""
    schema = data.pop("schema", WIRE_SCHEMA)
    if schema != WIRE_SCHEMA:
        raise ClaraError(
            f"unsupported wire schema {schema!r} (this build speaks"
            f" {WIRE_SCHEMA})"
        )
    got = data.pop("kind", kind)
    if got != kind:
        raise ClaraError(f"expected kind {kind!r}, got {got!r}")


def _reject_unknown(data: Dict[str, Any], kind: str) -> None:
    if data:
        raise ClaraError(
            f"unknown {kind} fields: {', '.join(sorted(data))}"
        )


def _pop_target(data: Dict[str, Any], kind: str) -> Optional[str]:
    """Pop and validate the optional ``target`` field of a request.

    ``None`` means "the server's default target".  A name is checked
    against the registry at parse time so an unknown target fails the
    request with :class:`~repro.errors.UnknownTargetError` (HTTP 404)
    before any work happens.
    """
    target = data.pop("target", None)
    if target is None:
        return None
    if not isinstance(target, str):
        raise ClaraError(f"{kind} 'target' must be a string")
    get_target(target)  # raises UnknownTargetError on a miss
    return target


@dataclass(frozen=True)
class AnalyzeRequest:
    """One offload-insight question: an element under a workload."""

    element: str
    workload: WorkloadSpec = WorkloadSpec()
    trace_seed: int = 0
    #: registered NIC target to analyse for; ``None`` = server default.
    target: Optional[str] = None

    kind = "analyze_request"

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnalyzeRequest":
        data = dict(data)
        _check_header(data, cls.kind)
        element = data.pop("element", None)
        if not element or not isinstance(element, str):
            raise ClaraError(
                "analyze_request needs an 'element' name"
            )
        workload = workload_from_dict(data.pop("workload", {}) or {})
        trace_seed = int(data.pop("trace_seed", 0))
        target = _pop_target(data, cls.kind)
        _reject_unknown(data, cls.kind)
        return cls(element=element, workload=workload,
                   trace_seed=trace_seed, target=target)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": WIRE_SCHEMA,
            "kind": self.kind,
            "element": self.element,
            "workload": workload_to_dict(self.workload),
            "trace_seed": self.trace_seed,
            "target": self.target,
        }


@dataclass(frozen=True)
class LintRequest:
    """A static offload-lint run over library elements.

    ``elements=None`` means the whole corpus; ``only``/``disable``
    select rules by code or name, exactly like the CLI flags.
    ``baseline`` carries accepted diagnostic fingerprints (from
    ``clara lint --write-baseline``): matching findings are filtered
    from the response and counted under ``stats.n_baselined``.
    """

    elements: Optional[Tuple[str, ...]] = None
    only: Optional[Tuple[str, ...]] = None
    disable: Optional[Tuple[str, ...]] = None
    #: registered NIC target whose capacities the rules check against.
    target: Optional[str] = None
    #: accepted legacy-finding fingerprints (see
    #: :mod:`repro.nfir.analysis.baseline`).
    baseline: Optional[Tuple[str, ...]] = None

    kind = "lint_request"

    @staticmethod
    def _name_tuple(value: Any, field: str) -> Optional[Tuple[str, ...]]:
        if value is None:
            return None
        if not isinstance(value, Sequence) or isinstance(value, str) or \
                not all(isinstance(item, str) for item in value):
            raise ClaraError(
                f"lint_request {field!r} must be a list of strings"
            )
        return tuple(value) or None

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LintRequest":
        data = dict(data)
        _check_header(data, cls.kind)
        elements = cls._name_tuple(data.pop("elements", None), "elements")
        only = cls._name_tuple(data.pop("only", None), "only")
        disable = cls._name_tuple(data.pop("disable", None), "disable")
        target = _pop_target(data, cls.kind)
        baseline = cls._name_tuple(data.pop("baseline", None), "baseline")
        _reject_unknown(data, cls.kind)
        return cls(elements=elements, only=only, disable=disable,
                   target=target, baseline=baseline)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": WIRE_SCHEMA,
            "kind": self.kind,
            "elements": None if self.elements is None else list(self.elements),
            "only": None if self.only is None else list(self.only),
            "disable": None if self.disable is None else list(self.disable),
            "target": self.target,
            "baseline": None if self.baseline is None else list(self.baseline),
        }


@dataclass(frozen=True)
class ColocationRequest:
    """Rank every pair of the named elements friendliest-first under
    one workload (the server profiles each element on the host trace
    to build its :class:`~repro.core.colocation.NFCandidate`)."""

    elements: Tuple[str, ...]
    workload: WorkloadSpec = WorkloadSpec()
    trace_seed: int = 0

    kind = "colocation_request"

    def __post_init__(self) -> None:
        if len(self.elements) < 2:
            raise ClaraError(
                "colocation_request needs at least two elements"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ColocationRequest":
        data = dict(data)
        _check_header(data, cls.kind)
        elements = data.pop("elements", None)
        if not isinstance(elements, Sequence) or isinstance(elements, str) \
                or not all(isinstance(item, str) for item in elements):
            raise ClaraError(
                "colocation_request needs an 'elements' list of names"
            )
        workload = workload_from_dict(data.pop("workload", {}) or {})
        trace_seed = int(data.pop("trace_seed", 0))
        _reject_unknown(data, cls.kind)
        return cls(elements=tuple(elements), workload=workload,
                   trace_seed=trace_seed)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": WIRE_SCHEMA,
            "kind": self.kind,
            "elements": list(self.elements),
            "workload": workload_to_dict(self.workload),
            "trace_seed": self.trace_seed,
        }


# ---------------------------------------------------------------------------
# The response envelope (shared by the CLI's --json paths and the server).
# ---------------------------------------------------------------------------

def envelope(kind: str, result: Any) -> Dict[str, Any]:
    """A success envelope around one result payload.  ``request_id``
    is read from the ambient request context at build time — the HTTP
    handler and ``--request-id`` CLI runs install one, so the same
    correlation id lands in the body without parameter threading
    (``null`` outside any request context, keeping plain CLI output
    byte-reproducible)."""
    return {
        "schema": WIRE_SCHEMA,
        "kind": kind,
        "request_id": current_request_id(),
        "result": result,
        "error": None,
    }


def error_envelope(exc: BaseException, kind: str = "error") -> Dict[str, Any]:
    """The failure envelope: ``result`` is null, ``error`` carries the
    typed-exception facts both transports document."""
    return {
        "schema": WIRE_SCHEMA,
        "kind": kind,
        "request_id": current_request_id(),
        "result": None,
        "error": {
            "type": type(exc).__name__,
            "message": str(exc),
            "exit_code": getattr(exc, "exit_code", 1),
            "http_status": http_status_for(exc),
        },
    }


def dump_envelope(env: Mapping[str, Any]) -> str:
    """The one canonical rendering (2-space indent, no trailing
    newline) — CLI stdout and HTTP bodies are byte-identical because
    both go through here."""
    return json.dumps(env, indent=2)


def port_config_to_dict(config) -> Dict[str, Any]:
    """Stable JSON layout of a :class:`~repro.nic.port.PortConfig`."""
    return {
        "use_checksum_accel": config.use_checksum_accel,
        "crc_accel_blocks": sorted(config.crc_accel_blocks),
        "crypto_accel_blocks": sorted(config.crypto_accel_blocks),
        "lpm_accel_blocks": sorted(config.lpm_accel_blocks),
        "placement": dict(sorted(config.placement.items())),
        "packs": [
            {"variables": list(pack.variables),
             "access_bytes": pack.access_bytes}
            for pack in config.packs
        ],
        "cores": config.cores,
    }


def analysis_result_payload(analysis, config) -> Dict[str, Any]:
    """The ``analysis_result`` payload: the versioned
    :meth:`~repro.core.pipeline.AnalysisResult.to_dict` layout plus the
    suggested port configuration."""
    payload = analysis.to_dict()
    payload["port_config"] = port_config_to_dict(config)
    return payload


def lint_run_payload(
    reports: Sequence[Any],
    target: Optional[str] = None,
    stats: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The ``lint_run`` payload: every element's schema-versioned
    :class:`~repro.nfir.analysis.lint.LintReport` plus the totals the
    exit-code protocol is based on.  ``target`` is the NIC backend the
    rules checked against (``None`` means the registry default);
    ``stats`` carries the run's baseline counter from
    :func:`~repro.serve.handlers.run_lint_reports`.  Cache hit/miss
    counters are deliberately *not* part of the payload — they vary
    between transports and runs, and the payload must stay
    byte-identical for identical lint results (they are observable
    via metrics instead)."""
    from repro.nic.targets import resolve_target

    n_errors = sum(r.n_errors for r in reports)
    n_warnings = sum(r.n_warnings for r in reports)
    n_suppressed = sum(len(r.suppressed) for r in reports)
    return {
        "target": resolve_target(target).name,
        "reports": [report.to_dict() for report in reports],
        "n_errors": n_errors,
        "n_warnings": n_warnings,
        "n_suppressed": n_suppressed,
        "n_baselined": (
            int(stats.get("n_baselined", 0)) if stats is not None else 0
        ),
    }


def request_from_dict(data: Mapping[str, Any]):
    """Dispatch a request dict to its dataclass by ``kind`` (used by
    transports that receive envelopes of unknown kind)."""
    kinds = {
        cls.kind: cls
        for cls in (AnalyzeRequest, LintRequest, ColocationRequest)
    }
    kind = data.get("kind")
    if kind not in kinds:
        raise ClaraError(
            f"unknown request kind {kind!r}"
            f" (known: {', '.join(sorted(kinds))})"
        )
    return kinds[kind].from_dict(data)


#: request kinds this build speaks, for /healthz introspection.
REQUEST_KINDS: List[str] = [
    AnalyzeRequest.kind, LintRequest.kind, ColocationRequest.kind,
]
