"""The request broker: batch predictor inference across threads.

``clara serve`` handles each HTTP request on its own thread, and every
analyze request ends in one ``predict_sequences`` call over the NF's
block token sequences.  Run naively, N concurrent requests pay N model
invocations; the LSTM, however, is a batched matmul whose cost grows
far slower than linearly in rows.  :class:`PredictBroker` exploits
that: calls are parked on a queue, a single batcher thread waits a
small window for stragglers, concatenates everything into **one**
:meth:`~repro.core.predictor.InstructionPredictor.predict_direct`
call, and scatters the rows back to the waiting callers.  Throughput
then scales with concurrency instead of degrading.

Batch composition cannot change results: sequences are encoded row-wise
to a fixed ``max_len`` and the model reads rows independently, so the
broker's output is element-wise identical to unbatched inference (the
serve test suite asserts this).

The broker installs itself as the predictor's inference hook
(:meth:`InstructionPredictor.set_infer_hook`), so the whole pipeline —
``Clara.analyze`` included — batches transparently; the hook is
deployment wiring, never pickled into artifacts.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import nullcontext
from typing import Callable, Deque, List, Optional, Sequence

import numpy as np

from repro.errors import ClaraError
from repro.obs import get_logger, get_metrics, span
from repro.obs.events import emit
from repro.obs.reqctx import (
    RequestContext,
    current_request_id,
    use_request,
)

__all__ = ["PredictBroker"]

log = get_logger(__name__)

#: bucket bounds for the jobs-per-batch histogram (counts, not seconds).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class _Job:
    """One parked ``predict_sequences`` call.

    ``request_id`` is captured on the *submitting* thread — the
    batcher runs on its own thread where the submitter's contextvars
    are invisible, so the id must ride along with the job for the
    batch to record which requests it merged.  ``enqueued_s`` feeds
    the batch-wait measurement (first-enqueue to flush).
    """

    __slots__ = ("sequences", "done", "result", "error", "request_id",
                 "enqueued_s")

    def __init__(self, sequences: Sequence[Sequence[str]]) -> None:
        self.sequences: List[Sequence[str]] = list(sequences)
        self.done = threading.Event()
        self.result: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        self.request_id = current_request_id()
        self.enqueued_s = time.perf_counter()


class PredictBroker:
    """Batches concurrent inference calls into single model invocations.

    ``predict_fn`` is the *unhooked* batch primitive (normally
    ``predictor.predict_direct``); ``window_s`` is how long the batcher
    waits after the first arrival for more work; ``max_batch`` caps the
    jobs merged into one call, bounding tail latency under load.
    """

    def __init__(
        self,
        predict_fn: Callable[[Sequence[Sequence[str]]], np.ndarray],
        window_s: float = 0.002,
        max_batch: int = 64,
    ) -> None:
        if max_batch < 1:
            raise ClaraError("max_batch must be >= 1")
        if window_s < 0:
            raise ClaraError("window_s must be >= 0")
        self._predict = predict_fn
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self._cond = threading.Condition()
        self._pending: Deque[_Job] = deque()
        self._closed = False
        #: totals since construction (also exported as metrics).
        self.n_batches = 0
        self.n_jobs = 0
        self._hooked_predictors: List[object] = []
        self._thread = threading.Thread(
            target=self._loop, name="clara-predict-broker", daemon=True
        )
        self._thread.start()

    # -- wiring ---------------------------------------------------------
    @classmethod
    def for_predictor(
        cls,
        predictor,
        window_s: float = 0.002,
        max_batch: int = 64,
    ) -> "PredictBroker":
        """A broker over ``predictor.predict_direct`` with the hook
        already installed, so every ``predict_sequences`` call — from
        any thread — batches through it."""
        broker = cls(
            predictor.predict_direct, window_s=window_s, max_batch=max_batch
        )
        broker.install(predictor)
        return broker

    def install(self, predictor) -> "PredictBroker":
        """Route ``predictor.predict_sequences`` through this broker
        (undone by :meth:`close`)."""
        predictor.set_infer_hook(self.submit)
        self._hooked_predictors.append(predictor)
        return self

    # -- the client side ------------------------------------------------
    def submit(self, sequences: Sequence[Sequence[str]]) -> np.ndarray:
        """Predict ``sequences``; blocks until a batch containing them
        has run.  Raises whatever the model raised for the batch."""
        job = _Job(sequences)
        with self._cond:
            if self._closed:
                raise ClaraError("predict broker is closed")
            self._pending.append(job)
            self._cond.notify_all()
        job.done.wait()
        if job.error is not None:
            raise job.error
        assert job.result is not None
        return job.result

    # -- the batcher thread ---------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending and self._closed:
                    return
            # Window: let concurrent callers pile onto the queue before
            # draining (skipped when configured away).
            if self.window_s > 0:
                time.sleep(self.window_s)
            with self._cond:
                jobs: List[_Job] = []
                while self._pending and len(jobs) < self.max_batch:
                    jobs.append(self._pending.popleft())
            if jobs:
                self._run_batch(jobs)

    def _run_batch(self, jobs: List[_Job]) -> None:
        flat: List[Sequence[str]] = []
        for job in jobs:
            flat.extend(job.sequences)
        # Correlation: the ids of the requests this batch merges.  The
        # batcher thread has no ambient request context of its own; if
        # the batch serves exactly one request, re-establish that
        # request's context around the model call so downstream
        # instrumentation (prediction-cache events, spans) stays
        # stamped.  A genuinely merged batch belongs to several
        # requests at once — its children carry no single id and the
        # ``broker_batch`` event records the full list instead.
        request_ids = sorted({
            job.request_id for job in jobs if job.request_id is not None
        })
        wait_s = (
            time.perf_counter() - min(job.enqueued_s for job in jobs)
            if jobs else 0.0
        )
        ctx = (
            use_request(RequestContext(request_id=request_ids[0]))
            if len(request_ids) == 1 and len(jobs) == 1
            else nullcontext()
        )
        try:
            with ctx, span(
                "broker_batch", n_jobs=len(jobs), n_sequences=len(flat),
                request_ids=request_ids,
            ):
                preds = (
                    self._predict(flat) if flat
                    else np.zeros(0, dtype=float)
                )
                preds = np.asarray(preds, dtype=float)
                if preds.shape[0] != len(flat):
                    raise ClaraError(
                        f"predict_fn returned {preds.shape[0]} rows for"
                        f" {len(flat)} sequences"
                    )
        except BaseException as exc:  # noqa: BLE001 - scattered to callers
            for job in jobs:
                job.error = exc
                job.done.set()
            return
        offset = 0
        for job in jobs:
            n = len(job.sequences)
            job.result = preds[offset:offset + n]
            offset += n
            job.done.set()
        with self._cond:
            self.n_batches += 1
            self.n_jobs += len(jobs)
        metrics = get_metrics()
        metrics.counter("serve_batches_total").inc()
        metrics.counter("serve_batched_requests_total").inc(len(jobs))
        metrics.histogram(
            "serve_batch_jobs", buckets=BATCH_SIZE_BUCKETS
        ).observe(len(jobs))
        metrics.histogram("serve_batch_wait_seconds").observe(wait_s)
        emit(
            "broker_batch",
            request_id=request_ids[0] if len(request_ids) == 1 else None,
            n_jobs=len(jobs),
            n_sequences=len(flat),
            wait_s=round(wait_s, 6),
            request_ids=request_ids,
        )
        if len(jobs) > 1:
            log.debug("broker: merged %d calls (%d sequences) into one"
                      " batch", len(jobs), len(flat))

    # -- lifecycle ------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Uninstall the hook(s), drain pending work, and stop the
        batcher thread.  Idempotent."""
        for predictor in self._hooked_predictors:
            predictor.set_infer_hook(None)
        self._hooked_predictors.clear()
        with self._cond:
            if self._closed:
                closed_already = True
            else:
                closed_already = False
                self._closed = True
            self._cond.notify_all()
        if not closed_already:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "PredictBroker":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
