"""Traffic workloads (the paper's trafgen substitute).

A :class:`WorkloadSpec` describes traffic the way the paper's
methodology does ("a workload specification includes packet sizes, the
number of flows, and the IP address distribution", Section 5.1); the
generator turns it into a seeded synthetic trace of
:class:`~repro.click.packet.Packet` objects, and the character module
derives the cache-behaviour summary the NIC performance model needs.
"""

from repro.workload.spec import (
    WorkloadSpec,
    LARGE_FLOWS,
    SMALL_FLOWS,
    STANDARD_WORKLOADS,
)
from repro.workload.trace import generate_trace
from repro.workload.character import characterize

__all__ = [
    "WorkloadSpec",
    "LARGE_FLOWS",
    "SMALL_FLOWS",
    "STANDARD_WORKLOADS",
    "generate_trace",
    "characterize",
]
