"""Synthetic trace generation (trafgen substitute)."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.click.packet import Packet
from repro.workload.spec import WorkloadSpec


def _zipf_weights(n: int, alpha: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    if alpha <= 0.0:
        weights = np.ones(n)
    else:
        weights = ranks ** (-alpha)
    return weights / weights.sum()


def save_trace(packets: List[Packet], path: str) -> None:
    """Persist a trace as JSON lines (our pcap stand-in): header dicts,
    payload hex, and metadata per packet."""
    import json

    with open(path, "w") as fh:
        for p in packets:
            fh.write(
                json.dumps(
                    {
                        "eth": p.eth,
                        "ip": p.ip,
                        "tcp": p.tcp,
                        "udp": p.udp,
                        "payload": p.payload.hex(),
                        "in_port": p.in_port,
                        "timestamp_ns": p.timestamp_ns,
                    }
                )
            )
            fh.write("\n")


def load_trace(path: str) -> List[Packet]:
    """Load a trace saved by :func:`save_trace`."""
    import json

    packets: List[Packet] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            packets.append(
                Packet(
                    eth=rec["eth"],
                    ip=rec["ip"],
                    tcp=rec["tcp"],
                    udp=rec["udp"],
                    payload=bytes.fromhex(rec["payload"]),
                    in_port=rec["in_port"],
                    timestamp_ns=rec["timestamp_ns"],
                )
            )
    return packets


def generate_trace(spec: WorkloadSpec, seed: int = 0) -> List[Packet]:
    """Generate a deterministic packet trace for a workload spec.

    Flow endpoints are synthesized from the flow index; flow selection
    per packet follows the Zipf popularity of the spec.  Timestamps
    advance ~1us per packet so time-window NFs see realistic gaps.
    """
    rng = np.random.default_rng(seed)
    n = spec.n_flows
    weights = _zipf_weights(n, spec.zipf_alpha)
    flow_ids = rng.choice(n, size=spec.n_packets, p=weights)
    syn_draws = rng.random(spec.n_packets)
    udp_draws = rng.random(spec.n_packets)
    payload_rng = rng.integers(0, 256, size=max(spec.payload_bytes, 1), dtype=np.uint8)
    base_payload = bytes(payload_rng.tolist())

    packets: List[Packet] = []
    for i in range(spec.n_packets):
        fid = int(flow_ids[i])
        src = (0x0A000000 | (fid & 0xFFFFFF)) & 0xFFFFFFFF
        dst = (0xC0A80000 | ((fid * 2654435761) & 0xFFFF)) & 0xFFFFFFFF
        sport = 1024 + (fid % 50000)
        dport = 80 if fid % 4 else 53
        is_udp = udp_draws[i] < spec.udp_fraction
        ip = {
            "src_addr": src,
            "dst_addr": dst,
            "ip_len": spec.packet_bytes - 14,
            "ip_ttl": 64,
            "ip_id": i & 0xFFFF,
        }
        if is_udp:
            packet = Packet(
                ip=ip,
                udp={
                    "uh_sport": sport,
                    "uh_dport": dport,
                    "uh_ulen": spec.payload_bytes + 8,
                },
                payload=base_payload[: spec.payload_bytes],
                in_port=fid % 2,
                timestamp_ns=i * 1000,
            )
        else:
            flags = 0x02 if syn_draws[i] < spec.syn_fraction else 0x10
            packet = Packet(
                ip=ip,
                tcp={
                    "th_sport": sport,
                    "th_dport": dport,
                    "th_seq": (i * 331) & 0xFFFFFFFF,
                    "th_flags": flags,
                    "th_off": 5,
                },
                payload=base_payload[: spec.payload_bytes],
                in_port=fid % 2,
                timestamp_ns=i * 1000,
            )
        packets.append(packet)
    return packets
