"""Deriving the NIC-model workload character from a spec.

The cache behaviour of NF state under a traffic profile determines
where scale-out knees fall (paper Section 5.4: "For larger flow sizes,
the performance peaks earlier ... packets mostly produce cache hits").
We model both the EMEM SRAM cache and the LPM flow cache as LRU-like
caches over Zipf-popular flows: the hit rate of a cache holding the
hottest ``k`` of ``n`` flows is the share of traffic those flows carry,
``H_alpha(k)/H_alpha(n)`` (generalized harmonic numbers).
"""

from __future__ import annotations

import numpy as np

from repro.nic.machine import WorkloadCharacter
from repro.nic.regions import MemoryHierarchy, REGION_EMEM_CACHE
from repro.nic.targets import resolve_target
from repro.workload.spec import WorkloadSpec


def _harmonic(n: int, alpha: float) -> float:
    ranks = np.arange(1, max(n, 1) + 1, dtype=float)
    if alpha <= 0.0:
        return float(n)
    return float(np.sum(ranks ** (-alpha)))


def zipf_hit_rate(cache_entries: int, n_flows: int, alpha: float) -> float:
    """Traffic share captured by caching the hottest entries."""
    if n_flows <= 0:
        return 1.0
    k = min(cache_entries, n_flows)
    if k <= 0:
        return 0.0
    return min(1.0, _harmonic(k, alpha) / _harmonic(n_flows, alpha))


def characterize(
    spec: WorkloadSpec,
    state_entry_bytes: int = 128,
    hierarchy: MemoryHierarchy | None = None,
    flow_cache_entries: int = 8192,
) -> WorkloadCharacter:
    """Build the performance-model character for a workload.

    ``state_entry_bytes`` is the per-flow footprint of the NF's state
    (flow-table entry size); the EMEM cache holds
    ``cache_capacity / entry_bytes`` hot entries.
    """
    hierarchy = hierarchy or resolve_target(None).hierarchy()
    cache_capacity = hierarchy.region(REGION_EMEM_CACHE).capacity_bytes
    cache_entries = max(1, cache_capacity // max(state_entry_bytes, 1))
    emem_hit = zipf_hit_rate(cache_entries, spec.n_flows, spec.zipf_alpha)
    flow_hit = zipf_hit_rate(flow_cache_entries, spec.n_flows, spec.zipf_alpha)
    return WorkloadCharacter(
        packet_bytes=spec.packet_bytes,
        emem_cache_hit_rate=emem_hit,
        flow_cache_hit_rate=flow_hit,
        name=spec.name,
    )
