"""Workload specifications."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import InvalidWorkloadError


@dataclass(frozen=True)
class WorkloadSpec:
    """A traffic profile (paper Section 5.1 methodology).

    * ``n_flows`` — concurrent 5-tuple flows.  "Large flows" means few
      concurrent flows each carrying many packets (cache friendly);
      "small flows" means many short flows (cache hostile) — the two
      regimes of Figure 11(c)/(d).
    * ``packet_bytes`` — on-wire packet size (fixed per spec; mixes are
      modelled by running multiple specs).
    * ``zipf_alpha`` — skew of flow popularity (0 = uniform).
    * ``syn_fraction`` — fraction of TCP packets that are SYNs (drives
      flow-setup paths in stateful NFs).
    * ``udp_fraction`` — fraction of packets that are UDP.
    * ``payload_bytes`` — payload length (drives DPI/checksum loops).
    """

    name: str = "default"
    n_flows: int = 1000
    packet_bytes: int = 256
    zipf_alpha: float = 1.0
    syn_fraction: float = 0.05
    udp_fraction: float = 0.0
    payload_bytes: int = 128
    n_packets: int = 2000

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise InvalidWorkloadError("n_flows must be >= 1")
        if not 0.0 <= self.syn_fraction <= 1.0:
            raise InvalidWorkloadError("syn_fraction out of range")
        if not 0.0 <= self.udp_fraction <= 1.0:
            raise InvalidWorkloadError("udp_fraction out of range")
        if self.packet_bytes < 64:
            raise InvalidWorkloadError("packet_bytes must be >= 64")
        if self.n_packets < 1:
            raise InvalidWorkloadError("n_packets must be >= 1")


#: Few long-lived flows: state fits in caches, compute-bound NICs.
LARGE_FLOWS = WorkloadSpec(
    name="large_flows",
    n_flows=64,
    packet_bytes=256,
    zipf_alpha=1.1,
    syn_fraction=0.01,
    payload_bytes=128,
)

#: Many short flows: constant cache misses, memory-bound NICs.
SMALL_FLOWS = WorkloadSpec(
    name="small_flows",
    n_flows=200_000,
    packet_bytes=256,
    zipf_alpha=0.6,
    syn_fraction=0.30,
    payload_bytes=128,
)

STANDARD_WORKLOADS: Tuple[WorkloadSpec, ...] = (LARGE_FLOWS, SMALL_FLOWS)
