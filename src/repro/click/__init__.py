"""ClickScript: a small C-flavoured mini-language for legacy NF elements.

The paper's input is a Click element written in C++ and lowered through
clang to LLVM IR.  ClickScript fills that slot: NF elements are declared
as ASTs (state declarations, a ``simple_action``-style packet handler,
helper subroutines), a frontend lowers them to NFIR, a renderer prints
C++-like source (for line counts and human inspection), and an
interpreter executes lowered elements on synthetic traffic to collect
the host-side access profiles Clara's workload-specific analyses need
(paper Sections 4.3-4.4).
"""

from repro.click.ast import (
    AssignStmt,
    BinExpr,
    BreakStmt,
    CallExpr,
    CmpExpr,
    ContinueStmt,
    DeclStmt,
    ElementDef,
    ExprStmt,
    FieldExpr,
    ForStmt,
    FuncDef,
    IfStmt,
    IndexExpr,
    IntLit,
    NotExpr,
    ReturnStmt,
    StateDecl,
    StructDef,
    VarRef,
    WhileStmt,
)
from repro.click.packet import (
    ETH_HEADER,
    IP_HEADER,
    TCP_HEADER,
    UDP_HEADER,
    HEADER_FIELD_NAMES,
    PACKET_TYPE,
    Packet,
    header_struct,
)
from repro.click.framework import API_REGISTRY, ApiSpec, is_api
from repro.click.frontend import LoweringError, lower_element
from repro.click.render import render_element
from repro.click.interp import ExecutionProfile, Interpreter

__all__ = [
    "AssignStmt",
    "BinExpr",
    "BreakStmt",
    "CallExpr",
    "CmpExpr",
    "ContinueStmt",
    "DeclStmt",
    "ElementDef",
    "ExprStmt",
    "FieldExpr",
    "ForStmt",
    "FuncDef",
    "IfStmt",
    "IndexExpr",
    "IntLit",
    "NotExpr",
    "ReturnStmt",
    "StateDecl",
    "StructDef",
    "VarRef",
    "WhileStmt",
    "ETH_HEADER",
    "IP_HEADER",
    "TCP_HEADER",
    "UDP_HEADER",
    "HEADER_FIELD_NAMES",
    "PACKET_TYPE",
    "Packet",
    "header_struct",
    "API_REGISTRY",
    "ApiSpec",
    "is_api",
    "LoweringError",
    "lower_element",
    "render_element",
    "ExecutionProfile",
    "Interpreter",
]
