"""The Click framework API surface.

Section 3.3 of the paper splits Click API calls into two classes:

* **stateless header manipulation** (``ip_header``, ``tcp_header``,
  packet send/drop, checksum helpers) — these map onto the SmartNIC's
  own packet-handling primitives and carry a fixed NIC cost profile;
* **stateful data structures** (``HashMap``, ``Vector``) — these differ
  structurally between host and NIC (elastic vs. pre-sized storage,
  linear probing vs. fixed bucket sets) and are handled by *reverse
  porting* (:mod:`repro.click.reverse_port`).

The registry here is the single source of truth for API names, shapes,
and classification; the frontend, interpreter, reverse porter, and NIC
compiler all consult it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Receiver kinds for method-style calls.
RECEIVER_PACKET = "packet"
RECEIVER_HASHMAP = "hashmap"
RECEIVER_VECTOR = "vector"


@dataclass(frozen=True)
class ApiSpec:
    """One framework API entry.

    ``ret`` / ``params`` use symbolic shapes:

    * scalar type names (``u8`` ... ``u64``, ``bool``, ``void``);
    * header pointers (``ip_hdr*``, ``tcp_hdr*``, ``udp_hdr*``,
      ``eth_hdr*``);
    * ``key*`` / ``value*`` / ``elem*`` — struct pointers resolved from
      the receiver's :class:`~repro.click.ast.StateDecl` at lowering
      time.
    """

    name: str
    receiver: Optional[str]  # None for free functions
    params: Tuple[str, ...]
    ret: str
    stateless: bool
    doc: str = ""

    @property
    def is_stateful(self) -> bool:
        return not self.stateless


_API_LIST = [
    # -- stateless packet/header APIs --------------------------------
    ApiSpec("eth_header", RECEIVER_PACKET, (), "eth_hdr*", True,
            "View of the Ethernet header."),
    ApiSpec("ip_header", RECEIVER_PACKET, (), "ip_hdr*", True,
            "View of the IPv4 header."),
    ApiSpec("tcp_header", RECEIVER_PACKET, (), "tcp_hdr*", True,
            "View of the TCP header (null if not TCP)."),
    ApiSpec("udp_header", RECEIVER_PACKET, (), "udp_hdr*", True,
            "View of the UDP header (null if not UDP)."),
    ApiSpec("payload_byte", RECEIVER_PACKET, ("u32",), "u8", True,
            "Read one payload byte (bounds-wrapped)."),
    ApiSpec("set_payload_byte", RECEIVER_PACKET, ("u32", "u8"), "void", True,
            "Write one payload byte."),
    ApiSpec("payload_len", RECEIVER_PACKET, (), "u32", True,
            "Payload length in bytes."),
    ApiSpec("send", RECEIVER_PACKET, ("u32",), "void", True,
            "Emit the packet on the given port."),
    ApiSpec("drop", RECEIVER_PACKET, (), "void", True,
            "Discard the packet."),
    ApiSpec("in_port", RECEIVER_PACKET, (), "u32", True,
            "Ingress port of the packet."),
    ApiSpec("timestamp_ns", RECEIVER_PACKET, (), "u64", True,
            "Packet arrival timestamp in nanoseconds."),
    ApiSpec("checksum_update_ip", None, ("ip_hdr*",), "void", True,
            "Recompute the IPv4 header checksum."),
    ApiSpec("checksum_update_tcp", None, ("tcp_hdr*",), "void", True,
            "Recompute the TCP checksum."),
    ApiSpec("random_u32", None, (), "u32", True,
            "Pseudo-random 32-bit value."),
    # -- stateful data-structure APIs (reverse ported) ----------------
    ApiSpec("hashmap_find", RECEIVER_HASHMAP, ("key*",), "value*", False,
            "Look up a key; returns a pointer to the value or null."),
    ApiSpec("hashmap_insert", RECEIVER_HASHMAP, ("key*", "value*"), "bool", False,
            "Insert or update an entry; false if the table is full."),
    ApiSpec("hashmap_erase", RECEIVER_HASHMAP, ("key*",), "bool", False,
            "Remove an entry (NIC port only marks it invalid)."),
    ApiSpec("hashmap_size", RECEIVER_HASHMAP, (), "u32", False,
            "Number of live entries."),
    ApiSpec("vector_at", RECEIVER_VECTOR, ("u32",), "elem*", False,
            "Pointer to the i-th element (null when out of range)."),
    ApiSpec("vector_push", RECEIVER_VECTOR, ("elem*",), "bool", False,
            "Append an element; false if at capacity."),
    ApiSpec("vector_size", RECEIVER_VECTOR, (), "u32", False,
            "Number of live elements."),
    ApiSpec("vector_remove", RECEIVER_VECTOR, ("u32",), "void", False,
            "Remove the i-th element (NIC port only marks it invalid)."),
]

API_REGISTRY: Dict[str, ApiSpec] = {spec.name: spec for spec in _API_LIST}

#: Method name -> API name, per receiver kind (how ClickScript spells
#: these calls: ``pkt.ip_header()``, ``m.find(&key)``, ``v.at(i)``).
METHOD_TABLE: Dict[str, Dict[str, str]] = {
    RECEIVER_PACKET: {
        "eth_header": "eth_header",
        "ip_header": "ip_header",
        "tcp_header": "tcp_header",
        "udp_header": "udp_header",
        "payload_byte": "payload_byte",
        "set_payload_byte": "set_payload_byte",
        "payload_len": "payload_len",
        "send": "send",
        "drop": "drop",
        "in_port": "in_port",
        "timestamp_ns": "timestamp_ns",
    },
    RECEIVER_HASHMAP: {
        "find": "hashmap_find",
        "insert": "hashmap_insert",
        "erase": "hashmap_erase",
        "size": "hashmap_size",
    },
    RECEIVER_VECTOR: {
        "at": "vector_at",
        "push_back": "vector_push",
        "size": "vector_size",
        "remove": "vector_remove",
    },
}


def is_api(name: str) -> bool:
    return name in API_REGISTRY
