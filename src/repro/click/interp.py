"""Host-side execution of lowered NF elements.

Paper Sections 4.3-4.4: "To obtain access frequencies, Clara runs the
Click NFs ... on the host machine with the specified workload."  This
module is that host: an NFIR interpreter with host-framework semantics
(elastic hashmaps, real header parsing), which records

* basic-block execution counts (keyed by NFIR block names, so they line
  up with the static analysis),
* per-global load/store counts and per-(global, block) access vectors
  (the inputs to the placement ILP and the coalescing K-means), and
* framework API call counts.

It doubles as a correctness oracle in tests: elements are executed on
crafted packets and their NF-level behaviour (NAT rewrites, firewall
verdicts, sketch counts) is asserted directly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.click.packet import Packet
from repro.nfir.block import BasicBlock
from repro.nfir.function import Function, GlobalVariable, Module
from repro.nfir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    GEP,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    evaluate_binary,
    evaluate_icmp,
)
from repro.nfir.types import ArrayType, IntType, IRType, PointerType, StructType
from repro.nfir.values import Constant, Value


class InterpError(RuntimeError):
    pass


def zero_value(type_: IRType):
    """Zero-initialized value tree for a type."""
    if isinstance(type_, IntType):
        return 0
    if isinstance(type_, PointerType):
        return NULL
    if isinstance(type_, StructType):
        return {name: zero_value(ftype) for name, ftype in type_.fields}
    if isinstance(type_, ArrayType):
        return [zero_value(type_.element) for _ in range(type_.count)]
    raise InterpError(f"cannot zero-init {type_}")


class _Store:
    """Storage object a pointer can reference."""

    def read(self, path: Tuple):
        raise NotImplementedError

    def write(self, path: Tuple, value) -> None:
        raise NotImplementedError


class TreeStore(_Store):
    """Nested dict/list/int storage for allocas and plain globals."""

    def __init__(self, tree) -> None:
        self.tree = tree

    def _navigate(self, path: Tuple):
        node = self.tree
        for step in path[:-1]:
            node = node[step]
        return node

    def read(self, path: Tuple):
        if not path:
            return self.tree
        return self._navigate(path)[path[-1]]

    def write(self, path: Tuple, value) -> None:
        if not path:
            self.tree = value
            return
        self._navigate(path)[path[-1]] = value


class PacketStore(_Store):
    """Pointer target for header views: path = (header, field)."""

    def __init__(self, packet: Packet) -> None:
        self.packet = packet

    def read(self, path: Tuple):
        header, fname = path
        hdr = self.packet.header(header)
        if hdr is None:
            raise InterpError(f"packet has no {header} header")
        return hdr[fname]

    def write(self, path: Tuple, value) -> None:
        header, fname = path
        hdr = self.packet.header(header)
        if hdr is None:
            raise InterpError(f"packet has no {header} header")
        hdr[fname] = value


@dataclass(frozen=True)
class Ptr:
    """A typed pointer value: storage object + access path.

    ``origin`` names the module global this pointer is derived from (if
    any) so the interpreter can attribute loads/stores to stateful data
    structures.
    """

    store: Optional[_Store]
    path: Tuple = ()
    origin: Optional[str] = None

    @property
    def is_null(self) -> bool:
        return self.store is None

    def child(self, step) -> "Ptr":
        return Ptr(self.store, self.path + (step,), self.origin)


NULL = Ptr(None)


class HostHashMap:
    """Elastic, host-Click-style hashmap (dict-backed)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: Dict[Tuple, Dict] = {}

    def find(self, key: Tuple) -> Optional[Dict]:
        return self.entries.get(key)

    def insert(self, key: Tuple, value: Dict) -> bool:
        # Host Click grows elastically; we still bound it for safety.
        if key not in self.entries and len(self.entries) >= self.capacity * 8:
            return False
        self.entries[key] = dict(value)
        return True

    def erase(self, key: Tuple) -> bool:
        return self.entries.pop(key, None) is not None

    def __len__(self) -> int:
        return len(self.entries)


class HostVector:
    """Elastic host vector with NIC-style capacity accounting."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.items: List = []

    def push(self, value) -> bool:
        if len(self.items) >= self.capacity:
            return False
        self.items.append(value)
        return True


@dataclass
class ExecutionProfile:
    """Aggregated result of interpreting a trace."""

    packets: int = 0
    sent: int = 0
    dropped: int = 0
    block_counts: Counter = field(default_factory=Counter)
    #: loads/stores per global: name -> {"load": n, "store": n}
    global_access: Dict[str, Counter] = field(default_factory=dict)
    #: (global, block) -> access count; the coalescing access vectors.
    global_block_access: Counter = field(default_factory=Counter)
    api_counts: Counter = field(default_factory=Counter)
    #: per-packet path signatures: frozenset of executed block names ->
    #: packet count.  Used by the partial-offloading extension to
    #: reason about which packets a host/NIC split would punt.
    path_counts: Counter = field(default_factory=Counter)

    def record_access(self, global_name: str, kind: str, block: str) -> None:
        per_global = self.global_access.setdefault(global_name, Counter())
        per_global[kind] += 1
        self.global_block_access[(global_name, block)] += 1

    def access_frequency(self, global_name: str) -> float:
        """Accesses per packet for one global (placement ILP input)."""
        if self.packets == 0:
            return 0.0
        per_global = self.global_access.get(global_name, Counter())
        return (per_global["load"] + per_global["store"]) / self.packets

    def access_vector(self, global_name: str, block_order: List[str]) -> np.ndarray:
        """Normalized per-block access vector (Section 4.4)."""
        counts = np.array(
            [self.global_block_access.get((global_name, b), 0) for b in block_order],
            dtype=float,
        )
        total = counts.sum()
        return counts / total if total > 0 else counts


class Interpreter:
    """Executes a lowered element module packet by packet."""

    def __init__(
        self,
        module: Module,
        seed: int = 0,
        max_steps_per_packet: int = 500_000,
    ) -> None:
        self.module = module
        self.max_steps = max_steps_per_packet
        self.rng = np.random.default_rng(seed)
        self.profile = ExecutionProfile()
        # Stateful storage (persists across packets).
        self.globals: Dict[str, object] = {}
        for name, g in module.globals.items():
            if g.kind == "hashmap":
                self.globals[name] = HostHashMap(g.entries)
            elif g.kind == "vector":
                self.globals[name] = HostVector(g.entries)
            else:
                self.globals[name] = TreeStore(zero_value(g.value_type))
        self._current_packet: Optional[Packet] = None
        self._packet_store: Optional[PacketStore] = None

    # -- state inspection helpers (used by tests) ---------------------
    def hashmap(self, name: str) -> HostHashMap:
        obj = self.globals[name]
        if not isinstance(obj, HostHashMap):
            raise InterpError(f"{name} is not a hashmap")
        return obj

    def vector(self, name: str) -> HostVector:
        obj = self.globals[name]
        if not isinstance(obj, HostVector):
            raise InterpError(f"{name} is not a vector")
        return obj

    def global_value(self, name: str):
        obj = self.globals[name]
        if not isinstance(obj, TreeStore):
            raise InterpError(f"{name} has no direct value")
        return obj.tree

    # -- running -------------------------------------------------------
    def run_trace(self, packets: Iterable[Packet]) -> ExecutionProfile:
        for packet in packets:
            self.run_packet(packet)
        return self.profile

    def run_packet(self, packet: Packet) -> Packet:
        self._current_packet = packet
        self._packet_store = PacketStore(packet)
        handler = self.module.handler
        before = Counter(self.profile.block_counts)
        self._run_function(handler, [Ptr(self._packet_store, (), None)])
        path = frozenset(
            name
            for name, count in self.profile.block_counts.items()
            if count > before.get(name, 0)
        )
        self.profile.path_counts[path] += 1
        self.profile.packets += 1
        if packet.dropped:
            self.profile.dropped += 1
        elif packet.out_port is not None:
            self.profile.sent += 1
        return packet

    # -- the core evaluation loop ---------------------------------------
    def _run_function(self, function: Function, args: List):
        env: Dict[int, object] = {}
        for formal, actual in zip(function.args, args):
            env[id(formal)] = actual
        block = function.entry
        prev_block: Optional[BasicBlock] = None
        steps = 0
        while True:
            self.profile.block_counts[block.name] += 1
            jumped = False
            for instr in block.instructions:
                steps += 1
                if steps > self.max_steps:
                    raise InterpError(
                        f"step limit exceeded in @{function.name}"
                        f" ({self.max_steps} steps)"
                    )
                if isinstance(instr, Br):
                    prev_block, block = block, instr.target
                    jumped = True
                    break
                if isinstance(instr, CondBr):
                    cond = self._value(instr.cond, env)
                    prev_block, block = (
                        block,
                        instr.if_true if cond else instr.if_false,
                    )
                    jumped = True
                    break
                if isinstance(instr, Ret):
                    if instr.value is None:
                        return None
                    return self._value(instr.value, env)
                self._execute(instr, env, block, prev_block)
            if not jumped:
                raise InterpError(
                    f"block {block.name} in @{function.name} fell through"
                )

    def _value(self, value: Value, env: Dict[int, object]):
        if isinstance(value, Constant):
            if value.type.is_pointer:
                return NULL
            return value.value
        if isinstance(value, GlobalVariable):
            store = self.globals[value.name]
            if isinstance(store, TreeStore):
                return Ptr(store, (), value.name)
            # hashmap/vector handles are opaque; only API calls use them.
            return Ptr(None, (), value.name)
        if id(value) in env:
            return env[id(value)]
        raise InterpError(f"use of undefined value {value.ref()}")

    def _execute(
        self,
        instr,
        env: Dict[int, object],
        block: BasicBlock,
        prev_block: Optional[BasicBlock],
    ) -> None:
        if isinstance(instr, BinaryOp):
            lhs = self._value(instr.lhs, env)
            rhs = self._value(instr.rhs, env)
            env[id(instr)] = evaluate_binary(instr.opcode, instr.type, lhs, rhs)
        elif isinstance(instr, ICmp):
            lhs = self._value(instr.lhs, env)
            rhs = self._value(instr.rhs, env)
            if isinstance(lhs, Ptr) or isinstance(rhs, Ptr):
                lnull = lhs.is_null if isinstance(lhs, Ptr) else lhs == 0
                rnull = rhs.is_null if isinstance(rhs, Ptr) else rhs == 0
                same = (lnull and rnull) or (
                    isinstance(lhs, Ptr)
                    and isinstance(rhs, Ptr)
                    and lhs == rhs
                )
                env[id(instr)] = int(same if instr.predicate == "eq" else not same)
            else:
                env[id(instr)] = evaluate_icmp(
                    instr.predicate, instr.lhs.type, lhs, rhs
                )
        elif isinstance(instr, Select):
            cond = self._value(instr.cond, env)
            env[id(instr)] = self._value(
                instr.if_true if cond else instr.if_false, env
            )
        elif isinstance(instr, Cast):
            value = self._value(instr.value, env)
            if instr.opcode == "bitcast":
                env[id(instr)] = value
            elif instr.opcode in ("zext", "trunc"):
                env[id(instr)] = instr.type.wrap(value)  # type: ignore[union-attr]
            elif instr.opcode == "sext":
                signed = instr.value.type.to_signed(value)  # type: ignore[union-attr]
                env[id(instr)] = instr.type.wrap(signed)  # type: ignore[union-attr]
        elif isinstance(instr, Alloca):
            env[id(instr)] = Ptr(TreeStore(zero_value(instr.allocated_type)))
        elif isinstance(instr, Load):
            ptr = self._value(instr.ptr, env)
            if not isinstance(ptr, Ptr) or ptr.is_null:
                raise InterpError(f"load through bad pointer in {block.name}")
            env[id(instr)] = ptr.store.read(ptr.path)
            if ptr.origin is not None:
                self.profile.record_access(ptr.origin, "load", block.name)
        elif isinstance(instr, Store):
            ptr = self._value(instr.ptr, env)
            value = self._value(instr.value, env)
            if not isinstance(ptr, Ptr) or ptr.is_null:
                raise InterpError(f"store through bad pointer in {block.name}")
            ptr.store.write(ptr.path, value)
            if ptr.origin is not None:
                self.profile.record_access(ptr.origin, "store", block.name)
        elif isinstance(instr, GEP):
            base = self._value(instr.base, env)
            if not isinstance(base, Ptr):
                raise InterpError("GEP on non-pointer value")
            ptr = base
            for idx in instr.indices:
                if isinstance(idx, str):
                    ptr = ptr.child(idx)
                else:
                    ptr = ptr.child(int(self._value(idx, env)))
            env[id(instr)] = ptr
        elif isinstance(instr, Phi):
            if prev_block is None:
                raise InterpError("phi in entry block")
            for value, pred in instr.incomings:
                if pred is prev_block:
                    env[id(instr)] = self._value(value, env)
                    return
            raise InterpError(
                f"phi in {block.name} has no arm for predecessor"
                f" {prev_block.name}"
            )
        elif isinstance(instr, Call):
            result = self._call(instr, env, block)
            if instr.produces_value:
                env[id(instr)] = result
        else:
            raise InterpError(f"cannot interpret {instr.opcode}")

    # -- framework API implementations -----------------------------------
    def _call(self, instr: Call, env: Dict[int, object], block: BasicBlock):
        name = instr.callee
        if instr.kind == "internal":
            if name not in self.module.functions:
                raise InterpError(f"call to unknown function @{name}")
            args = [self._value(a, env) for a in instr.args]
            return self._run_function(self.module.functions[name], args)
        self.profile.api_counts[name] += 1
        packet = self._current_packet
        if packet is None:
            raise InterpError("API call outside packet context")

        if name in ("eth_header", "ip_header", "tcp_header", "udp_header"):
            header = name.split("_")[0]
            if packet.header(header) is None:
                return NULL
            return Ptr(self._packet_store, (header,))
        if name == "payload_byte":
            index = self._value(instr.args[1], env)
            if not packet.payload:
                return 0
            return packet.payload[index % len(packet.payload)]
        if name == "set_payload_byte":
            index = self._value(instr.args[1], env)
            value = self._value(instr.args[2], env)
            if packet.payload:
                payload = bytearray(packet.payload)
                payload[index % len(payload)] = value & 0xFF
                packet.payload = bytes(payload)
            return None
        if name == "payload_len":
            return len(packet.payload)
        if name == "send":
            packet.out_port = self._value(instr.args[1], env)
            return None
        if name == "drop":
            packet.dropped = True
            return None
        if name == "in_port":
            return packet.in_port
        if name == "timestamp_ns":
            return packet.timestamp_ns
        if name == "checksum_update_ip":
            ptr = self._value(instr.args[0], env)
            self._checksum_ip(ptr)
            return None
        if name == "checksum_update_tcp":
            ptr = self._value(instr.args[0], env)
            self._checksum_tcp(ptr)
            return None
        if name == "random_u32":
            return int(self.rng.integers(0, 2**32, dtype=np.uint64))

        # Stateful data-structure APIs.  The receiver global is the
        # first argument.
        receiver = instr.args[0]
        if not isinstance(receiver, GlobalVariable):
            raise InterpError(f"API {name} receiver is not a global")
        gname = receiver.name
        self.profile.record_access(gname, "load", block.name)
        if name.startswith("hashmap_"):
            return self._hashmap_call(name, gname, instr, env, block)
        if name.startswith("vector_"):
            return self._vector_call(name, gname, instr, env, block)
        raise InterpError(f"unimplemented API {name!r}")

    def _read_struct(self, ptr: Ptr) -> Dict:
        value = ptr.store.read(ptr.path)  # type: ignore[union-attr]
        if not isinstance(value, dict):
            raise InterpError("expected a struct value")
        return value

    def _hashmap_call(self, name, gname, instr, env, block):
        table = self.hashmap(gname)
        if name == "hashmap_size":
            return len(table)
        key_ptr = self._value(instr.args[1], env)
        key = tuple(sorted(self._read_struct(key_ptr).items()))
        if name == "hashmap_find":
            entry = table.find(key)
            if entry is None:
                return NULL
            return Ptr(TreeStore(entry), (), gname)
        if name == "hashmap_insert":
            value_ptr = self._value(instr.args[2], env)
            value = self._read_struct(value_ptr)
            self.profile.record_access(gname, "store", block.name)
            return int(table.insert(key, value))
        if name == "hashmap_erase":
            self.profile.record_access(gname, "store", block.name)
            return int(table.erase(key))
        raise InterpError(f"unknown hashmap API {name}")

    def _vector_call(self, name, gname, instr, env, block):
        vec = self.vector(gname)
        if name == "vector_size":
            return len(vec.items)
        if name == "vector_at":
            index = self._value(instr.args[1], env)
            if index >= len(vec.items):
                return NULL
            item = vec.items[index]
            if isinstance(item, dict):
                return Ptr(TreeStore(item), (), gname)
            # Scalar vectors: box the value so the pointer is writable.
            box = {"elem": item}

            class _BoxStore(TreeStore):
                def __init__(self, items, i):
                    super().__init__(items[i])
                    self._items, self._i = items, i

                def write(self, path, value):
                    self._items[self._i] = value

            return Ptr(_BoxStore(vec.items, index), (), gname)
        if name == "vector_push":
            elem_ptr = self._value(instr.args[1], env)
            value = elem_ptr.store.read(elem_ptr.path)  # type: ignore[union-attr]
            if isinstance(value, dict):
                value = dict(value)
            self.profile.record_access(gname, "store", block.name)
            return int(vec.push(value))
        if name == "vector_remove":
            index = self._value(instr.args[1], env)
            self.profile.record_access(gname, "store", block.name)
            if index < len(vec.items):
                del vec.items[index]
            return None
        raise InterpError(f"unknown vector API {name}")

    # -- checksum helpers ---------------------------------------------------
    def _checksum_ip(self, ptr: Ptr) -> None:
        packet = self._current_packet
        assert packet is not None
        words = [
            (packet.ip["ip_v"] << 12)
            | (packet.ip["ip_hl"] << 8)
            | packet.ip["ip_tos"],
            packet.ip["ip_len"],
            packet.ip["ip_id"],
            packet.ip["ip_off"],
            (packet.ip["ip_ttl"] << 8) | packet.ip["ip_p"],
            packet.ip["src_addr"] >> 16,
            packet.ip["src_addr"] & 0xFFFF,
            packet.ip["dst_addr"] >> 16,
            packet.ip["dst_addr"] & 0xFFFF,
        ]
        total = sum(words)
        while total > 0xFFFF:
            total = (total & 0xFFFF) + (total >> 16)
        packet.ip["ip_sum"] = (~total) & 0xFFFF

    def _checksum_tcp(self, ptr: Ptr) -> None:
        packet = self._current_packet
        assert packet is not None
        if packet.tcp is None:
            return
        words = [
            packet.tcp["th_sport"],
            packet.tcp["th_dport"],
            packet.tcp["th_seq"] >> 16,
            packet.tcp["th_seq"] & 0xFFFF,
            packet.tcp["th_ack"] >> 16,
            packet.tcp["th_ack"] & 0xFFFF,
            packet.ip["src_addr"] >> 16,
            packet.ip["src_addr"] & 0xFFFF,
            packet.ip["dst_addr"] >> 16,
            packet.ip["dst_addr"] & 0xFFFF,
        ]
        total = sum(words)
        while total > 0xFFFF:
            total = (total & 0xFFFF) + (total >> 16)
        packet.tcp["th_sum"] = (~total) & 0xFFFF
