"""ClickScript abstract syntax tree.

Types are spelled with C-ish names (``u8``/``u16``/``u32``/``u64``) and
map 1:1 onto NFIR integer types.  Structs declared with
:class:`StructDef` become NFIR struct types; packet headers come
predefined from :mod:`repro.click.packet`.

The AST is also the unit the synthesis engine (paper Section 3.2, "data
synthesis") samples: its guided generator matches the node-type and
operator distributions extracted from the element library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

# -- script-level types ----------------------------------------------

SCALAR_TYPES = ("u8", "u16", "u32", "u64", "bool")

#: Widths of script scalar types in bits.
TYPE_BITS: Dict[str, int] = {"bool": 1, "u8": 8, "u16": 16, "u32": 32, "u64": 64}

BIN_OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>")
CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
BOOL_OPS = ("and", "or")


class Node:
    """Base class for all AST nodes."""

    @property
    def kind(self) -> str:
        return type(self).__name__


def _as_expr(value: Union["Expr", int]) -> "Expr":
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return IntLit(value)
    raise TypeError(f"cannot use {value!r} as an expression")


class Expr(Node):
    """Base expression.  Arithmetic operators are overloaded for
    concise element definitions (``fld(ip, "ip_len") + 2``); comparisons
    are built with the explicit helpers in
    :mod:`repro.click.elements._dsl` so Python ``==`` keeps its normal
    meaning on AST nodes."""

    def __add__(self, other):
        return BinExpr("+", self, _as_expr(other))

    def __sub__(self, other):
        return BinExpr("-", self, _as_expr(other))

    def __mul__(self, other):
        return BinExpr("*", self, _as_expr(other))

    def __floordiv__(self, other):
        return BinExpr("/", self, _as_expr(other))

    def __mod__(self, other):
        return BinExpr("%", self, _as_expr(other))

    def __and__(self, other):
        return BinExpr("&", self, _as_expr(other))

    def __or__(self, other):
        return BinExpr("|", self, _as_expr(other))

    def __xor__(self, other):
        return BinExpr("^", self, _as_expr(other))

    def __lshift__(self, other):
        return BinExpr("<<", self, _as_expr(other))

    def __rshift__(self, other):
        return BinExpr(">>", self, _as_expr(other))

    def __radd__(self, other):
        return BinExpr("+", _as_expr(other), self)

    def __rsub__(self, other):
        return BinExpr("-", _as_expr(other), self)

    def __rand__(self, other):
        return BinExpr("&", _as_expr(other), self)

    def __rxor__(self, other):
        return BinExpr("^", _as_expr(other), self)

    def as_stmt(self) -> "ExprStmt":
        """Wrap this expression as an expression statement."""
        return ExprStmt(self)


class Stmt(Node):
    pass


# -- expressions -------------------------------------------------------


@dataclass
class IntLit(Expr):
    value: int
    type: str = "u32"


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class BinExpr(Expr):
    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in BIN_OPS and self.op not in BOOL_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")


@dataclass
class CmpExpr(Expr):
    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in CMP_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")


@dataclass
class NotExpr(Expr):
    value: Expr


@dataclass
class FieldExpr(Expr):
    """``base.field`` — header field, struct field, or map-entry field."""

    base: Expr
    field: str


@dataclass
class IndexExpr(Expr):
    """``base[index]`` — element of a state array or vector."""

    base: Expr
    index: Expr


@dataclass
class CallExpr(Expr):
    """Framework API call (``pkt.ip_header()``, ``map.find(key)``),
    intrinsic, or helper-subroutine call.

    ``receiver`` carries the object for method-style calls; the
    frontend resolves ``receiver.method`` against the API registry.
    """

    name: str
    args: List[Expr] = field(default_factory=list)
    receiver: Optional[Expr] = None


# -- statements --------------------------------------------------------


@dataclass
class DeclStmt(Stmt):
    """Local variable declaration, e.g. ``u32 x = expr;`` or a local
    struct value ``struct int_key key;`` (type names a StructDef)."""

    name: str
    type: str
    init: Optional[Expr] = None


@dataclass
class AssignStmt(Stmt):
    target: Expr  # VarRef | FieldExpr | IndexExpr
    value: Expr


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: List[Stmt] = field(default_factory=list)
    max_trips: int = 4096  # interpreter safety bound


@dataclass
class ForStmt(Stmt):
    """``for (TYPE var = start; var < end; var++)`` counted loop."""

    var: str
    start: Expr
    end: Expr
    body: List[Stmt] = field(default_factory=list)
    var_type: str = "u32"


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


# -- declarations ------------------------------------------------------


@dataclass
class StructDef:
    """A script-level struct; ``fields`` map names to scalar type names."""

    name: str
    fields: List[Tuple[str, str]]

    def size_bytes(self) -> int:
        return sum(max(1, TYPE_BITS[t] // 8) for _, t in self.fields)


STATE_KINDS = ("scalar", "array", "struct", "hashmap", "vector")


@dataclass
class StateDecl:
    """A stateful member of the element (persists across packets).

    * ``scalar``: ``value_type`` names a scalar type.
    * ``array``: ``value_type`` scalar, ``entries`` elements.
    * ``struct``: ``value_type`` names a StructDef.
    * ``hashmap``: ``key_struct``/``value_struct`` name StructDefs,
      ``entries`` is the pre-sized capacity (baremetal NICs cannot
      malloc at runtime; Click's elastic HashMap is reverse ported onto
      this fixed layout, paper Section 3.3).
    * ``vector``: ``value_type`` names a StructDef or scalar,
      ``entries`` capacity.
    """

    name: str
    kind: str
    value_type: str = "u32"
    key_struct: Optional[str] = None
    entries: int = 1

    def __post_init__(self) -> None:
        if self.kind not in STATE_KINDS:
            raise ValueError(f"unknown state kind {self.kind!r}")


@dataclass
class FuncDef:
    """A helper subroutine of the element (inlined before analysis)."""

    name: str
    params: List[Tuple[str, str]]
    ret_type: str  # scalar type name or "void"
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ElementDef:
    """One Click element: state + packet handler + helpers."""

    name: str
    state: List[StateDecl] = field(default_factory=list)
    structs: List[StructDef] = field(default_factory=list)
    handler: List[Stmt] = field(default_factory=list)
    helpers: List[FuncDef] = field(default_factory=list)
    description: str = ""

    def struct(self, name: str) -> StructDef:
        for struct in self.structs:
            if struct.name == name:
                return struct
        raise KeyError(f"element {self.name} has no struct {name!r}")

    def state_decl(self, name: str) -> StateDecl:
        for decl in self.state:
            if decl.name == name:
                return decl
        raise KeyError(f"element {self.name} has no state {name!r}")

    @property
    def is_stateful(self) -> bool:
        return bool(self.state)


# -- traversal helpers --------------------------------------------------


def walk_expr(expr: Expr):
    """Yield ``expr`` and all sub-expressions, preorder."""
    yield expr
    if isinstance(expr, (BinExpr, CmpExpr)):
        yield from walk_expr(expr.lhs)
        yield from walk_expr(expr.rhs)
    elif isinstance(expr, NotExpr):
        yield from walk_expr(expr.value)
    elif isinstance(expr, FieldExpr):
        yield from walk_expr(expr.base)
    elif isinstance(expr, IndexExpr):
        yield from walk_expr(expr.base)
        yield from walk_expr(expr.index)
    elif isinstance(expr, CallExpr):
        if expr.receiver is not None:
            yield from walk_expr(expr.receiver)
        for arg in expr.args:
            yield from walk_expr(arg)


def walk_stmts(stmts: Sequence[Stmt]):
    """Yield every statement and expression in ``stmts``, preorder."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, DeclStmt) and stmt.init is not None:
            yield from walk_expr(stmt.init)
        elif isinstance(stmt, AssignStmt):
            yield from walk_expr(stmt.target)
            yield from walk_expr(stmt.value)
        elif isinstance(stmt, IfStmt):
            yield from walk_expr(stmt.cond)
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, WhileStmt):
            yield from walk_expr(stmt.cond)
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, ForStmt):
            yield from walk_expr(stmt.start)
            yield from walk_expr(stmt.end)
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, ExprStmt):
            yield from walk_expr(stmt.expr)
        elif isinstance(stmt, ReturnStmt) and stmt.value is not None:
            yield from walk_expr(stmt.value)


def walk_element(element: ElementDef):
    """Yield every node in the element (handler plus helpers)."""
    yield from walk_stmts(element.handler)
    for helper in element.helpers:
        yield from walk_stmts(helper.body)
