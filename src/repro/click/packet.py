"""Packet model: header layouts shared by the frontend (NFIR struct
types), the vocabulary compaction (header field names are the one class
of operand names *not* abstracted away — paper Section 3.2), and the
interpreter (runtime packet objects).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.nfir.types import StructType, int_type

# Header layouts: (field name, bit width).  Field names follow the
# classic BSD naming Click uses (th_sport, ip_hl, ...).
ETH_FIELDS: Tuple[Tuple[str, int], ...] = (
    ("eth_dst_hi", 32),
    ("eth_dst_lo", 16),
    ("eth_src_hi", 32),
    ("eth_src_lo", 16),
    ("eth_type", 16),
)

IP_FIELDS: Tuple[Tuple[str, int], ...] = (
    ("ip_v", 8),
    ("ip_hl", 8),
    ("ip_tos", 8),
    ("ip_len", 16),
    ("ip_id", 16),
    ("ip_off", 16),
    ("ip_ttl", 8),
    ("ip_p", 8),
    ("ip_sum", 16),
    ("src_addr", 32),
    ("dst_addr", 32),
)

TCP_FIELDS: Tuple[Tuple[str, int], ...] = (
    ("th_sport", 16),
    ("th_dport", 16),
    ("th_seq", 32),
    ("th_ack", 32),
    ("th_off", 8),
    ("th_flags", 8),
    ("th_win", 16),
    ("th_sum", 16),
    ("th_urp", 16),
)

UDP_FIELDS: Tuple[Tuple[str, int], ...] = (
    ("uh_sport", 16),
    ("uh_dport", 16),
    ("uh_ulen", 16),
    ("uh_sum", 16),
)

_HEADER_LAYOUTS: Dict[str, Tuple[Tuple[str, int], ...]] = {
    "eth": ETH_FIELDS,
    "ip": IP_FIELDS,
    "tcp": TCP_FIELDS,
    "udp": UDP_FIELDS,
}


def header_struct(header: str) -> StructType:
    """NFIR struct type for a named header (``eth``/``ip``/``tcp``/``udp``)."""
    layout = _HEADER_LAYOUTS[header]
    return StructType(
        f"{header}_hdr", tuple((name, int_type(bits)) for name, bits in layout)
    )


ETH_HEADER = header_struct("eth")
IP_HEADER = header_struct("ip")
TCP_HEADER = header_struct("tcp")
UDP_HEADER = header_struct("udp")

#: The opaque packet handle type passed to every packet handler.
PACKET_TYPE = StructType("packet", ())

#: All header field names.  Vocabulary compaction keeps these concrete
#: (Section 3.2: "with the exception of well-defined header field
#: names") because the SmartNIC compiler treats some header fields
#: specially (e.g. checksum fields map onto the ingress accelerator).
HEADER_FIELD_NAMES: FrozenSet[str] = frozenset(
    name for layout in _HEADER_LAYOUTS.values() for name, _ in layout
)

#: Which header a field belongs to (field names are globally unique).
FIELD_TO_HEADER: Dict[str, str] = {
    name: header
    for header, layout in _HEADER_LAYOUTS.items()
    for name, _ in layout
}

TCP_SYN = 0x02
TCP_ACK = 0x10
TCP_FIN = 0x01
TCP_RST = 0x04

PROTO_TCP = 6
PROTO_UDP = 17


def _field_width(header: str, name: str) -> int:
    for fname, bits in _HEADER_LAYOUTS[header]:
        if fname == name:
            return bits
    raise KeyError(f"{header} header has no field {name!r}")


@dataclass
class Packet:
    """Runtime packet for the interpreter and the workload generator.

    Headers are dictionaries of concrete field values; absent protocol
    headers (e.g. no TCP header on a UDP packet) are ``None``.
    """

    eth: Dict[str, int] = dataclass_field(default_factory=dict)
    ip: Dict[str, int] = dataclass_field(default_factory=dict)
    tcp: Optional[Dict[str, int]] = None
    udp: Optional[Dict[str, int]] = None
    payload: bytes = b""
    in_port: int = 0
    timestamp_ns: int = 0
    # Set by the interpreter when the NF disposes of the packet.
    out_port: Optional[int] = None
    dropped: bool = False

    def __post_init__(self) -> None:
        for name, _bits in ETH_FIELDS:
            self.eth.setdefault(name, 0)
        # Sensible IPv4 defaults must land before the zero-fill.
        self.ip.setdefault("ip_v", 4)
        self.ip.setdefault("ip_hl", 5)
        self.ip.setdefault("ip_ttl", 64)
        for name, _bits in IP_FIELDS:
            self.ip.setdefault(name, 0)
        if self.tcp is not None:
            for name, _bits in TCP_FIELDS:
                self.tcp.setdefault(name, 0)
            self.ip["ip_p"] = PROTO_TCP
        if self.udp is not None:
            for name, _bits in UDP_FIELDS:
                self.udp.setdefault(name, 0)
            self.ip["ip_p"] = PROTO_UDP

    def header(self, name: str) -> Optional[Dict[str, int]]:
        return {"eth": self.eth, "ip": self.ip, "tcp": self.tcp, "udp": self.udp}[
            name
        ]

    @property
    def wire_len(self) -> int:
        """Approximate on-wire length in bytes."""
        length = 14 + 20  # eth + ip
        if self.tcp is not None:
            length += 20
        if self.udp is not None:
            length += 8
        return length + len(self.payload)

    def flow_key(self) -> Tuple[int, int, int, int, int]:
        """The conventional 5-tuple."""
        sport = dport = 0
        if self.tcp is not None:
            sport, dport = self.tcp["th_sport"], self.tcp["th_dport"]
        elif self.udp is not None:
            sport, dport = self.udp["uh_sport"], self.udp["uh_dport"]
        return (
            self.ip["src_addr"],
            self.ip["dst_addr"],
            sport,
            dport,
            self.ip["ip_p"],
        )
