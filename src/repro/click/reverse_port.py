"""Reverse porting of framework APIs (paper Section 3.3).

Click's stateful data structures behave differently on the NIC: no
runtime allocation, so HashMaps become pre-sized fixed-bucket tables
(no linear probing), Vector deletion only marks entries invalid, etc.
Clara handles this by *reverse porting*: deriving Click-style
implementations whose control flow mirrors the SmartNIC library, so
that host-side profiling triggers the same processing behaviour the
ported NF will exhibit.

Each entry here is a ClickScript :class:`~repro.click.ast.FuncDef`
operating on a generic pre-sized table; they are lowered through the
normal frontend and compiled with the NIC compiler to obtain
high-fidelity per-API cost profiles (instructions + memory accesses) —
"Clara uses the machine code as compiled from the SmartNIC compiler
directly instead of using learning-based inference" (Section 3.3).
"""

from __future__ import annotations

from typing import List

from repro.click.ast import ElementDef, FuncDef, Stmt
from repro.click.elements._dsl import (
    array_state,
    assign,
    brk,
    decl,
    eq,
    for_,
    ge,
    idx,
    if_,
    lit,
    ne,
    ret,
    scalar_state,
    v,
)

#: Fixed bucket geometry of the NIC hashmap (ways per bucket).  Real
#: Netronome hash tables use small fixed bucket sets because dynamic
#: memory allocation is prohibited.
BUCKET_WAYS = 4


def _hash_stmts(out_var: str, key_var: str) -> List[Stmt]:
    """The NIC library's multiplicative key hash (key already folded
    into a 32-bit word by the caller)."""
    return [
        decl(out_var, "u32", (v(key_var) * 0x9E3779B1) & 0xFFFFFFFF),
        assign(v(out_var), v(out_var) ^ (v(out_var) >> 16)),
    ]


def hashmap_find_rp() -> FuncDef:
    """NIC-style find: hash to a bucket, scan its fixed ways.

    State model: ``tags``/``vals`` arrays of ``n_buckets * WAYS``; a
    zero tag means empty.  Returns the matching slot index + 1, or 0.
    """
    body: List[Stmt] = []
    body += _hash_stmts("h", "key")
    body += [
        decl("base", "u32", (v("h") % v("n_buckets")) * BUCKET_WAYS),
        decl("found", "u32", lit(0)),
        for_(
            "w",
            0,
            BUCKET_WAYS,
            [
                if_(
                    eq(idx(v("tags"), v("base") + v("w")), v("key")),
                    [assign(v("found"), v("base") + v("w") + 1), brk()],
                ),
            ],
        ),
        ret(v("found")),
    ]
    return FuncDef("rp_hashmap_find", [("key", "u32")], "u32", body)


def hashmap_insert_rp() -> FuncDef:
    """NIC-style insert: find the key or claim an empty way."""
    body: List[Stmt] = []
    body += _hash_stmts("h", "key")
    body += [
        decl("base", "u32", (v("h") % v("n_buckets")) * BUCKET_WAYS),
        decl("slot", "u32", lit(0)),
        for_(
            "w",
            0,
            BUCKET_WAYS,
            [
                decl("tag", "u32", idx(v("tags"), v("base") + v("w"))),
                if_(
                    eq(v("tag"), v("key")),
                    [assign(v("slot"), v("base") + v("w") + 1), brk()],
                ),
                if_(
                    eq(v("tag"), 0),
                    [assign(v("slot"), v("base") + v("w") + 1), brk()],
                ),
            ],
        ),
        if_(
            ne(v("slot"), 0),
            [
                assign(idx(v("tags"), v("slot") - 1), v("key")),
                assign(idx(v("vals"), v("slot") - 1), v("value")),
                ret(lit(1)),
            ],
        ),
        # Bucket full: baremetal tables cannot rehash at runtime.
        ret(lit(0)),
    ]
    return FuncDef(
        "rp_hashmap_insert", [("key", "u32"), ("value", "u32")], "u32", body
    )


def hashmap_erase_rp() -> FuncDef:
    """NIC-style erase: deletion only marks the entry invalid."""
    body: List[Stmt] = []
    body += _hash_stmts("h", "key")
    body += [
        decl("base", "u32", (v("h") % v("n_buckets")) * BUCKET_WAYS),
        for_(
            "w",
            0,
            BUCKET_WAYS,
            [
                if_(
                    eq(idx(v("tags"), v("base") + v("w")), v("key")),
                    [
                        # Invalidate the tag; the value slot is left as
                        # is (no compaction on baremetal NICs).
                        assign(idx(v("tags"), v("base") + v("w")), lit(0)),
                        ret(lit(1)),
                    ],
                ),
            ],
        ),
        ret(lit(0)),
    ]
    return FuncDef("rp_hashmap_erase", [("key", "u32")], "u32", body)



def vector_at_rp() -> FuncDef:
    """NIC-style vector indexing: bounds check + validity tag read."""
    return FuncDef(
        "rp_vector_at",
        [("i", "u32")],
        "u32",
        [
            if_(ge(v("i"), v("cap")), [ret(lit(0))]),
            if_(eq(idx(v("valid"), v("i")), 0), [ret(lit(0))]),
            ret(idx(v("vals"), v("i"))),
        ],
    )


def vector_push_rp() -> FuncDef:
    """NIC-style push: claim the next slot if below capacity."""
    return FuncDef(
        "rp_vector_push",
        [("value", "u32")],
        "u32",
        [
            if_(ge(v("count"), v("cap")), [ret(lit(0))]),
            assign(idx(v("vals"), v("count")), v("value")),
            assign(idx(v("valid"), v("count")), lit(1)),
            assign(v("count"), v("count") + 1),
            ret(lit(1)),
        ],
    )


def vector_remove_rp() -> FuncDef:
    """NIC-style remove: mark invalid, never shrink (Section 3.3:
    "deletion calls only mark the entries as invalid")."""
    return FuncDef(
        "rp_vector_remove",
        [("i", "u32")],
        "void",
        [
            if_(ge(v("i"), v("cap")), [ret()]),
            assign(idx(v("valid"), v("i")), lit(0)),
            assign(v("tombstones"), v("tombstones") + 1),
        ],
    )


#: API name -> reverse-ported implementation builder.
REVERSE_PORTS = {
    "hashmap_find": hashmap_find_rp,
    "hashmap_insert": hashmap_insert_rp,
    "hashmap_erase": hashmap_erase_rp,
    "vector_at": vector_at_rp,
    "vector_push": vector_push_rp,
    "vector_remove": vector_remove_rp,
}

#: Expected per-call block-trip hints for cost estimation: fraction of
#: loop iterations actually executed on the average call (a find
#: probes half the ways on a hit, all ways on a miss; we assume a
#: balanced mix).
EXPECTED_WAY_TRIPS = 2.5


def reverse_port_element(api_name: str, table_entries: int = 256) -> ElementDef:
    """Wrap one reverse-ported API routine in a standalone element whose
    handler exercises it once per packet (for profiling/compilation)."""
    if api_name not in REVERSE_PORTS:
        raise KeyError(f"no reverse port for API {api_name!r}")
    func = REVERSE_PORTS[api_name]()
    from repro.click.elements._dsl import fcall, fld as _fld, pkt

    args: List = []
    if api_name.startswith("hashmap"):
        key_expr = None
        call_args = [v("k")]
        if api_name == "hashmap_insert":
            call_args.append(v("k"))
        handler = [
            decl("ip", "ip_hdr*", pkt("ip_header")),
            decl("k", "u32", _fld(v("ip"), "src_addr") ^ _fld(v("ip"), "dst_addr")),
            decl("r", "u32", fcall(func.name, *call_args)),
            assign(v("last_result"), v("r")),
            pkt("send", 0).as_stmt(),
        ]
    else:
        call_args = [v("k")]
        if api_name == "vector_push":
            call_args = [v("k")]
        handler = [
            decl("ip", "ip_hdr*", pkt("ip_header")),
            decl("k", "u32", _fld(v("ip"), "src_addr") & 0xFF),
        ]
        if api_name == "vector_remove":
            handler.append(fcall(func.name, *call_args).as_stmt())
        else:
            handler.append(decl("r", "u32", fcall(func.name, *call_args)))
            handler.append(assign(v("last_result"), v("r")))
        handler.append(pkt("send", 0).as_stmt())

    state = [
        array_state("tags", "u32", table_entries * BUCKET_WAYS),
        array_state("vals", "u32", table_entries * BUCKET_WAYS),
        array_state("valid", "u8", table_entries),
        scalar_state("n_buckets", "u32"),
        scalar_state("cap", "u32"),
        scalar_state("count", "u32"),
        scalar_state("tombstones", "u32"),
        scalar_state("last_result", "u32"),
    ]
    return ElementDef(
        name=f"rp_{api_name}",
        state=state,
        handler=handler,
        helpers=[func],
        description=f"Reverse-ported harness for {api_name}.",
    )
