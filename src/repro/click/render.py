"""Render ClickScript ASTs as C++-flavoured source text.

Used for human inspection, documentation, and the lines-of-code column
of the Table-2 inventory.  The output intentionally looks like a Click
element (class wrapper, ``simple_action`` handler).
"""

from __future__ import annotations

from typing import List

from repro.click import ast as C


def _expr(expr: C.Expr) -> str:
    if isinstance(expr, C.IntLit):
        return str(expr.value)
    if isinstance(expr, C.VarRef):
        return expr.name
    if isinstance(expr, C.BinExpr):
        op = {"and": "&&", "or": "||"}.get(expr.op, expr.op)
        return f"({_expr(expr.lhs)} {op} {_expr(expr.rhs)})"
    if isinstance(expr, C.CmpExpr):
        return f"({_expr(expr.lhs)} {expr.op} {_expr(expr.rhs)})"
    if isinstance(expr, C.NotExpr):
        return f"!({_expr(expr.value)})"
    if isinstance(expr, C.FieldExpr):
        base = _expr(expr.base)
        return f"{base}->{expr.field}"
    if isinstance(expr, C.IndexExpr):
        return f"{_expr(expr.base)}[{_expr(expr.index)}]"
    if isinstance(expr, C.CallExpr):
        args = ", ".join(_expr(a) for a in expr.args)
        if expr.receiver is not None:
            return f"{_expr(expr.receiver)}.{expr.name}({args})"
        return f"{expr.name}({args})"
    raise TypeError(f"cannot render {expr!r}")


def _stmts(stmts: List[C.Stmt], indent: int, out: List[str]) -> None:
    pad = "  " * indent
    for stmt in stmts:
        if isinstance(stmt, C.DeclStmt):
            if stmt.init is not None:
                out.append(f"{pad}{stmt.type} {stmt.name} = {_expr(stmt.init)};")
            else:
                out.append(f"{pad}{stmt.type} {stmt.name};")
        elif isinstance(stmt, C.AssignStmt):
            out.append(f"{pad}{_expr(stmt.target)} = {_expr(stmt.value)};")
        elif isinstance(stmt, C.IfStmt):
            out.append(f"{pad}if ({_expr(stmt.cond)}) {{")
            _stmts(stmt.then_body, indent + 1, out)
            if stmt.else_body:
                out.append(f"{pad}}} else {{")
                _stmts(stmt.else_body, indent + 1, out)
            out.append(f"{pad}}}")
        elif isinstance(stmt, C.WhileStmt):
            out.append(f"{pad}while ({_expr(stmt.cond)}) {{")
            _stmts(stmt.body, indent + 1, out)
            out.append(f"{pad}}}")
        elif isinstance(stmt, C.ForStmt):
            out.append(
                f"{pad}for ({stmt.var_type} {stmt.var} = {_expr(stmt.start)};"
                f" {stmt.var} < {_expr(stmt.end)}; {stmt.var}++) {{"
            )
            _stmts(stmt.body, indent + 1, out)
            out.append(f"{pad}}}")
        elif isinstance(stmt, C.ExprStmt):
            out.append(f"{pad}{_expr(stmt.expr)};")
        elif isinstance(stmt, C.ReturnStmt):
            if stmt.value is None:
                out.append(f"{pad}return;")
            else:
                out.append(f"{pad}return {_expr(stmt.value)};")
        elif isinstance(stmt, C.BreakStmt):
            out.append(f"{pad}break;")
        elif isinstance(stmt, C.ContinueStmt):
            out.append(f"{pad}continue;")
        else:
            raise TypeError(f"cannot render {stmt!r}")


def _state_decl(decl: C.StateDecl) -> str:
    if decl.kind == "scalar":
        return f"  {decl.value_type} {decl.name};"
    if decl.kind == "array":
        return f"  {decl.value_type} {decl.name}[{decl.entries}];"
    if decl.kind == "struct":
        return f"  struct {decl.value_type} {decl.name};"
    if decl.kind == "hashmap":
        return (
            f"  HashMap<struct {decl.key_struct}, struct {decl.value_type}>"
            f" {decl.name}; // capacity {decl.entries}"
        )
    if decl.kind == "vector":
        return f"  Vector<{decl.value_type}> {decl.name}; // capacity {decl.entries}"
    raise ValueError(decl.kind)


def render_element(element: C.ElementDef) -> str:
    """Render the element as Click-style C++ source."""
    out: List[str] = []
    for struct in element.structs:
        out.append(f"struct {struct.name} {{")
        for fname, ftype in struct.fields:
            out.append(f"  {ftype} {fname};")
        out.append("};")
        out.append("")
    out.append(f"class {element.name} : public Element {{")
    for decl in element.state:
        out.append(_state_decl(decl))
    for helper in element.helpers:
        params = ", ".join(f"{t} {n}" for n, t in helper.params)
        out.append(f"  {helper.ret_type} {helper.name}({params}) {{")
        _stmts(helper.body, 2, out)
        out.append("  }")
    out.append("  void simple_action(Packet *pkt) {")
    _stmts(element.handler, 2, out)
    out.append("  }")
    out.append("};")
    return "\n".join(out) + "\n"


def element_loc(element: C.ElementDef) -> int:
    """Non-blank source lines of the rendered element."""
    return sum(1 for line in render_element(element).splitlines() if line.strip())
