"""Traffic generators and proxies: tcpgen, webtcp, webgen, dnsproxy.

``tcpgen``/``webtcp`` keep many scalar globals with strongly correlated
access patterns — the memory-coalescing subjects of Figure 13 (the
paper names ``tcp_state``/``send_next``/``recv_next`` clustering and
the ``good_pkt``/``bad_pkt`` anti-cluster for tcpgen, which we model
with the same variable names).
"""

from __future__ import annotations

from typing import List

from repro.click.ast import ElementDef, Stmt
from repro.click.elements._dsl import (
    and_,
    array_state,
    assign,
    decl,
    eq,
    fcall,
    fld,
    ge,
    gt,
    hashmap_state,
    idx,
    if_,
    lit,
    lt,
    mcall,
    ne,
    pkt,
    ret,
    scalar_state,
    struct,
    v,
    vector_state,
    while_,
)

TCP_SYN = 0x02
TCP_ACK = 0x10
TCP_FIN = 0x01


def tcpgen() -> ElementDef:
    """TCP traffic generator / ACK consumer state machine.

    State variables are deliberately declared in a scattered order so
    the coalescing analysis has real work to do: the ACK-processing
    path touches ``tcp_state``/``send_next``/``recv_next`` together,
    the indexing path touches ``sport``/``dport`` together, and
    ``good_pkt``/``bad_pkt`` are never accessed in the same block.
    """
    ip = v("ip")
    tcp = v("tcp")
    handler: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("tcp", "tcp_hdr*", pkt("tcp_header")),
        if_(eq(v("tcp"), 0), [pkt("drop").as_stmt(), ret()]),
        # Flow indexing path: sport/dport are read together.
        if_(
            and_(
                eq(fld(tcp, "th_dport"), v("sport")),
                eq(fld(tcp, "th_sport"), v("dport")),
            ),
            [
                # ACK-processing path: the paper's canonical cluster.
                if_(
                    and_(
                        eq(fld(tcp, "th_ack"), v("iss") + 1),
                        eq(v("tcp_state"), 0),
                    ),
                    [
                        # SYN-ACK accepted: connection established.
                        assign(v("tcp_state"), lit(1)),
                        assign(v("send_next"), v("iss") + 1),
                        assign(v("recv_next"), fld(tcp, "th_seq") + 1),
                        assign(v("good_pkt"), v("good_pkt") + 1),
                    ],
                    [
                        if_(
                            eq(v("tcp_state"), 1),
                            [
                                if_(
                                    ge(fld(tcp, "th_ack"), v("send_next")),
                                    [
                                        assign(v("send_next"), fld(tcp, "th_ack")),
                                        assign(
                                            v("recv_next"),
                                            fld(tcp, "th_seq") + 1,
                                        ),
                                        assign(v("good_pkt"), v("good_pkt") + 1),
                                    ],
                                    [assign(v("bad_pkt"), v("bad_pkt") + 1)],
                                ),
                            ],
                            [assign(v("bad_pkt"), v("bad_pkt") + 1)],
                        ),
                    ],
                ),
                # Emit the next segment of the flow.
                assign(fld(tcp, "th_sport"), v("sport")),
                assign(fld(tcp, "th_dport"), v("dport")),
                assign(fld(tcp, "th_seq"), v("send_next")),
                assign(fld(tcp, "th_ack"), v("recv_next")),
                assign(fld(tcp, "th_flags"), lit(TCP_ACK, "u8")),
                assign(v("segments_sent"), v("segments_sent") + 1),
                fcall("checksum_update_tcp", tcp).as_stmt(),
                pkt("send", 0).as_stmt(),
            ],
            [
                assign(v("bad_pkt"), v("bad_pkt") + 1),
                pkt("drop").as_stmt(),
            ],
        ),
    ]
    return ElementDef(
        name="tcpgen",
        state=[
            scalar_state("sport", "u16"),
            scalar_state("good_pkt", "u64"),
            scalar_state("tcp_state", "u32"),
            scalar_state("iss", "u32"),
            scalar_state("dport", "u16"),
            scalar_state("send_next", "u32"),
            scalar_state("bad_pkt", "u64"),
            scalar_state("recv_next", "u32"),
            scalar_state("segments_sent", "u64"),
        ],
        handler=handler,
        description="TCP generator state machine with clustered state access.",
    )


def webtcp() -> ElementDef:
    """Minimal web-server TCP responder (the Figure-13 'webtcp').

    Tracks a request/response byte budget per connection epoch; the
    serving path touches ``bytes_left``/``cur_seq``/``cwnd`` together
    while bookkeeping counters are touched elsewhere.
    """
    ip = v("ip")
    tcp = v("tcp")
    handler: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("tcp", "tcp_hdr*", pkt("tcp_header")),
        if_(eq(v("tcp"), 0), [pkt("drop").as_stmt(), ret()]),
        if_(
            ne(fld(tcp, "th_flags") & TCP_SYN, 0),
            [
                # New request: reset the serving state.
                assign(v("bytes_left"), v("object_size")),
                assign(v("cur_seq"), fld(tcp, "th_seq") + 1),
                assign(v("cwnd"), lit(2920)),
                assign(v("requests"), v("requests") + 1),
                assign(fld(tcp, "th_flags"), lit(TCP_SYN | TCP_ACK, "u8")),
                pkt("send", 0).as_stmt(),
                ret(),
            ],
        ),
        if_(
            gt(v("bytes_left"), 0),
            [
                # Serving path: the coalescing cluster.
                decl("chunk", "u32", v("cwnd")),
                if_(
                    lt(v("bytes_left"), v("chunk")),
                    [assign(v("chunk"), v("bytes_left"))],
                ),
                assign(v("bytes_left"), v("bytes_left") - v("chunk")),
                assign(v("cur_seq"), v("cur_seq") + v("chunk")),
                assign(v("cwnd"), v("cwnd") + 1460),
                if_(
                    gt(v("cwnd"), 29200),
                    [assign(v("cwnd"), lit(29200))],
                ),
                assign(fld(tcp, "th_seq"), v("cur_seq")),
                assign(fld(tcp, "th_flags"), lit(TCP_ACK, "u8")),
                assign(v("bytes_served"), v("bytes_served") + v("chunk")),
                pkt("send", 0).as_stmt(),
            ],
            [
                assign(fld(tcp, "th_flags"), lit(TCP_FIN | TCP_ACK, "u8")),
                assign(v("responses_done"), v("responses_done") + 1),
                pkt("send", 0).as_stmt(),
            ],
        ),
    ]
    return ElementDef(
        name="webtcp",
        state=[
            scalar_state("requests", "u64"),
            scalar_state("bytes_left", "u32"),
            scalar_state("bytes_served", "u64"),
            scalar_state("cur_seq", "u32"),
            scalar_state("object_size", "u32"),
            scalar_state("cwnd", "u32"),
            scalar_state("responses_done", "u64"),
        ],
        handler=handler,
        description="Web-server TCP responder with a serving-state cluster.",
    )


def webgen(max_flows: int = 512) -> ElementDef:
    """Web traffic generator: tracks emulated client flows in a vector
    and drives request/response cycles (Table 2's WebGen)."""
    ip = v("ip")
    tcp = v("tcp")
    handler: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("tcp", "tcp_hdr*", pkt("tcp_header")),
        if_(eq(v("tcp"), 0), [pkt("drop").as_stmt(), ret()]),
        decl("nflows", "u32", mcall("flows", "size")),
        decl("slot_idx", "u32", fld(ip, "src_addr") % max_flows),
        decl("found", "u32", lit(0)),
        decl("i", "u32", lit(0)),
        # Scan for this client's flow record.
        decl("fr", "web_flow*", mcall("flows", "at", v("slot_idx") % (v("nflows") + 1))),
        if_(
            ne(v("fr"), 0),
            [
                if_(
                    eq(fld(v("fr"), "client"), fld(ip, "src_addr")),
                    [assign(v("found"), lit(1))],
                ),
            ],
        ),
        if_(
            eq(v("found"), 0),
            [
                decl("nf", "web_flow"),
                assign(fld(v("nf"), "client"), fld(ip, "src_addr")),
                assign(fld(v("nf"), "reqs"), lit(0)),
                assign(fld(v("nf"), "state"), lit(0)),
                mcall("flows", "push_back", v("nf")).as_stmt(),
                assign(v("flows_started"), v("flows_started") + 1),
            ],
        ),
        # Pick a request size from the size table (heavy-tail emulation).
        decl("r", "u32", fcall("random_u32")),
        decl("size_class", "u32", v("r") % 16),
        decl("req_size", "u32", idx(v("size_table"), v("size_class"))),
        assign(fld(tcp, "th_sport"), (v("r") % 28000) + 32768),
        assign(fld(tcp, "th_dport"), lit(80)),
        assign(fld(tcp, "th_seq"), v("r")),
        assign(fld(tcp, "th_flags"), lit(TCP_SYN, "u8")),
        assign(fld(ip, "ip_len"), v("req_size") + 40),
        assign(v("requests_sent"), v("requests_sent") + 1),
        assign(v("bytes_requested"), v("bytes_requested") + v("req_size")),
        fcall("checksum_update_tcp", tcp).as_stmt(),
        fcall("checksum_update_ip", ip).as_stmt(),
        pkt("send", 0).as_stmt(),
    ]
    return ElementDef(
        name="webgen",
        structs=[
            struct("web_flow", ("client", "u32"), ("reqs", "u32"), ("state", "u32")),
        ],
        state=[
            vector_state("flows", "web_flow", max_flows),
            array_state("size_table", "u32", 16),
            scalar_state("flows_started", "u32"),
            scalar_state("requests_sent", "u64"),
            scalar_state("bytes_requested", "u64"),
        ],
        handler=handler,
        description="Web workload generator over an emulated flow vector.",
    )


def dnsproxy(cache_entries: int = 2048) -> ElementDef:
    """Caching DNS proxy over UDP (Table 2's DNSProxy).

    Parses the query id and a name hash from the payload, answers from
    a response cache on hit, forwards upstream and records a pending
    entry on miss.
    """
    ip = v("ip")
    udp = v("udp")
    handler: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("udp", "udp_hdr*", pkt("udp_header")),
        if_(eq(v("udp"), 0), [pkt("drop").as_stmt(), ret()]),
        decl("plen", "u32", pkt("payload_len")),
        if_(lt(v("plen"), 12), [pkt("drop").as_stmt(), ret()]),
        # DNS header: id = first two payload bytes.
        decl(
            "qid",
            "u32",
            (pkt("payload_byte", 0) << 8) | pkt("payload_byte", 1),
        ),
        # Hash the query name (bytes 12..plen).
        decl("name_hash", "u32", lit(0x811C9DC5)),
        decl("j", "u32", lit(12)),
        decl("limit", "u32", v("plen")),
        if_(gt(v("limit"), 44), [assign(v("limit"), lit(44))]),
    ]
    handler.extend(
        [
            # FNV-1a over the name bytes.
            while_(
                lt(v("j"), v("limit")),
                [
                    assign(v("name_hash"), v("name_hash") ^ pkt("payload_byte", v("j"))),
                    assign(v("name_hash"), (v("name_hash") * 0x01000193) & 0xFFFFFFFF),
                    assign(v("j"), v("j") + 1),
                ],
                max_trips=128,
            ),
            if_(
                eq(fld(udp, "uh_dport"), 53),
                [
                    # Client -> proxy: try the cache.
                    decl("ckey", "dns_key"),
                    assign(fld(v("ckey"), "name_hash"), v("name_hash")),
                    decl("hit", "dns_entry*", mcall("cache", "find", v("ckey"))),
                    assign(v("queries"), v("queries") + 1),
                    if_(
                        ne(v("hit"), 0),
                        [
                            # Cache hit: answer directly.
                            assign(v("cache_hits"), v("cache_hits") + 1),
                            assign(fld(v("hit"), "hits"), fld(v("hit"), "hits") + 1),
                            decl("tmp", "u32", fld(ip, "src_addr")),
                            assign(fld(ip, "src_addr"), fld(ip, "dst_addr")),
                            assign(fld(ip, "dst_addr"), v("tmp")),
                            decl("tmpp", "u16", fld(udp, "uh_sport")),
                            assign(fld(udp, "uh_sport"), fld(udp, "uh_dport")),
                            assign(fld(udp, "uh_dport"), v("tmpp")),
                            pkt("set_payload_byte", 2, lit(0x81)).as_stmt(),
                            pkt("set_payload_byte", 3, lit(0x80)).as_stmt(),
                            fcall("checksum_update_ip", ip).as_stmt(),
                            pkt("send", 0).as_stmt(),
                        ],
                        [
                            # Miss: record pending query, forward upstream.
                            decl("pkey", "dns_key"),
                            assign(fld(v("pkey"), "name_hash"), v("qid")),
                            decl("pend", "dns_pending"),
                            assign(fld(v("pend"), "client"), fld(ip, "src_addr")),
                            assign(fld(v("pend"), "name_hash"), v("name_hash")),
                            mcall("pending", "insert", v("pkey"), v("pend")).as_stmt(),
                            assign(v("cache_misses"), v("cache_misses") + 1),
                            assign(fld(ip, "dst_addr"), v("upstream_ip")),
                            fcall("checksum_update_ip", ip).as_stmt(),
                            pkt("send", 1).as_stmt(),
                        ],
                    ),
                ],
                [
                    # Upstream response: fill the cache, return to client.
                    decl("rkey", "dns_key"),
                    assign(fld(v("rkey"), "name_hash"), v("qid")),
                    decl("p", "dns_pending*", mcall("pending", "find", v("rkey"))),
                    if_(
                        ne(v("p"), 0),
                        [
                            decl("ekey", "dns_key"),
                            assign(fld(v("ekey"), "name_hash"), fld(v("p"), "name_hash")),
                            decl("ent", "dns_entry"),
                            assign(fld(v("ent"), "answer_ip"), fld(ip, "src_addr")),
                            assign(fld(v("ent"), "hits"), lit(0)),
                            mcall("cache", "insert", v("ekey"), v("ent")).as_stmt(),
                            assign(fld(ip, "dst_addr"), fld(v("p"), "client")),
                            mcall("pending", "erase", v("rkey")).as_stmt(),
                            assign(v("responses"), v("responses") + 1),
                            fcall("checksum_update_ip", ip).as_stmt(),
                            pkt("send", 0).as_stmt(),
                        ],
                        [
                            assign(v("orphan_responses"), v("orphan_responses") + 1),
                            pkt("drop").as_stmt(),
                        ],
                    ),
                ],
            ),
        ]
    )
    return ElementDef(
        name="dnsproxy",
        structs=[
            struct("dns_key", ("name_hash", "u32")),
            struct("dns_entry", ("answer_ip", "u32"), ("hits", "u32")),
            struct("dns_pending", ("client", "u32"), ("name_hash", "u32")),
        ],
        state=[
            hashmap_state("cache", "dns_key", "dns_entry", cache_entries),
            hashmap_state("pending", "dns_key", "dns_pending", cache_entries // 4),
            scalar_state("upstream_ip", "u32"),
            scalar_state("queries", "u64"),
            scalar_state("cache_hits", "u64"),
            scalar_state("cache_misses", "u64"),
            scalar_state("responses", "u64"),
            scalar_state("orphan_responses", "u64"),
        ],
        handler=handler,
        description="Caching DNS proxy with pending-query tracking.",
    )
