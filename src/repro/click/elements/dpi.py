"""Deep packet inspection and firewall elements (two of the Figure-1
variability NFs: DPI latency depends on packet size; FW performance on
state location and flow distribution).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.click.ast import ElementDef, Stmt
from repro.click.elements._dsl import (
    array_state,
    assign,
    brk,
    decl,
    eq,
    fld,
    ge,
    hashmap_state,
    idx,
    if_,
    lit,
    lt,
    mcall,
    ne,
    pkt,
    ret,
    scalar_state,
    struct,
    v,
    while_,
)

DEFAULT_SIGNATURES = (b"EXPLOIT", b"/etc/passwd", b"\x90\x90\x90\x90")


def dpi(
    scan_limit: int = 256,
    signatures: Sequence[bytes] = DEFAULT_SIGNATURES,
) -> ElementDef:
    """Signature-based DPI: scan the payload for byte patterns.

    Patterns are stored in a state array (offset table + byte table) and
    matched with the naive shift-compare loop; per-packet work scales
    with payload length, reproducing the paper's packet-size-dependent
    DPI variants.
    """
    handler: List[Stmt] = [
        decl("plen", "u32", pkt("payload_len")),
        decl("n", "u32", v("plen")),
        if_(lt(lit(scan_limit), v("n")), [assign(v("n"), lit(scan_limit))]),
        decl("hit", "u32", lit(0)),
        decl("s", "u32", lit(0)),
        while_(
            lt(v("s"), v("n_sigs")),
            [
                decl("off", "u32", idx(v("sig_offset"), v("s"))),
                decl("slen", "u32", idx(v("sig_len"), v("s"))),
                if_(
                    ge(v("n"), v("slen")),
                    [
                        decl("pos", "u32", lit(0)),
                        while_(
                            lt(v("pos"), v("n") - v("slen") + 1),
                            [
                                decl("k", "u32", lit(0)),
                                while_(
                                    lt(v("k"), v("slen")),
                                    [
                                        if_(
                                            ne(
                                                pkt(
                                                    "payload_byte",
                                                    v("pos") + v("k"),
                                                ),
                                                idx(
                                                    v("sig_bytes"),
                                                    v("off") + v("k"),
                                                ),
                                            ),
                                            [brk()],
                                        ),
                                        assign(v("k"), v("k") + 1),
                                    ],
                                    max_trips=64,
                                ),
                                if_(
                                    eq(v("k"), v("slen")),
                                    [assign(v("hit"), lit(1)), brk()],
                                ),
                                assign(v("pos"), v("pos") + 1),
                            ],
                            max_trips=4096,
                        ),
                    ],
                ),
                if_(v("hit"), [brk()]),
                assign(v("s"), v("s") + 1),
            ],
            max_trips=64,
        ),
        assign(v("scanned"), v("scanned") + 1),
        if_(
            v("hit"),
            [
                assign(v("alerts"), v("alerts") + 1),
                pkt("drop").as_stmt(),
            ],
            [pkt("send", 0).as_stmt()],
        ),
    ]
    sig_bytes: List[int] = []
    offsets: List[int] = []
    lengths: List[int] = []
    for sig in signatures:
        offsets.append(len(sig_bytes))
        lengths.append(len(sig))
        sig_bytes.extend(sig)
    element = ElementDef(
        name="dpi",
        state=[
            array_state("sig_bytes", "u8", max(len(sig_bytes), 1)),
            array_state("sig_offset", "u32", max(len(signatures), 1)),
            array_state("sig_len", "u32", max(len(signatures), 1)),
            scalar_state("n_sigs", "u32"),
            scalar_state("scanned", "u64"),
            scalar_state("alerts", "u64"),
        ],
        handler=handler,
        description="Signature-based deep packet inspection.",
    )
    # Initial state the interpreter/tests can install.
    element_init = {
        "sig_bytes": sig_bytes,
        "sig_offset": offsets,
        "sig_len": lengths,
        "n_sigs": len(signatures),
    }
    element.initial_state = element_init  # type: ignore[attr-defined]
    return element


def firewall(flow_entries: int = 4096, n_acl: int = 16) -> ElementDef:
    """Stateful firewall: ACL check on SYN, then per-flow allow state.

    New flows (TCP SYN) are checked against an ACL of (prefix, mask,
    action) rules; admitted flows are installed in a connection table
    consulted by every subsequent packet — the Figure-1 FW whose
    performance hinges on where that table lives.
    """
    ip = v("ip")
    tcp = v("tcp")
    handler: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("tcp", "tcp_hdr*", pkt("tcp_header")),
        if_(eq(v("tcp"), 0), [pkt("drop").as_stmt(), ret()]),
        decl("key", "fw_key"),
        assign(fld(v("key"), "saddr"), fld(ip, "src_addr")),
        assign(fld(v("key"), "daddr"), fld(ip, "dst_addr")),
        assign(fld(v("key"), "sport"), fld(tcp, "th_sport")),
        assign(fld(v("key"), "dport"), fld(tcp, "th_dport")),
        decl("conn", "fw_conn*", mcall("conn_table", "find", v("key"))),
        if_(
            ne(v("conn"), 0),
            [
                # Established flow: fast path.
                assign(fld(v("conn"), "pkts"), fld(v("conn"), "pkts") + 1),
                assign(v("fast_hits"), v("fast_hits") + 1),
                pkt("send", 0).as_stmt(),
                ret(),
            ],
        ),
        # Only SYNs may establish new flows.
        if_(
            eq(fld(tcp, "th_flags") & 0x02, 0),
            [
                assign(v("no_state_drops"), v("no_state_drops") + 1),
                pkt("drop").as_stmt(),
                ret(),
            ],
        ),
        decl("allowed", "u32", lit(0)),
        decl("i", "u32", lit(0)),
        while_(
            lt(v("i"), v("n_acl")),
            [
                decl("mask", "u32", idx(v("acl_mask"), v("i"))),
                if_(
                    eq(fld(ip, "dst_addr") & v("mask"), idx(v("acl_prefix"), v("i"))),
                    [
                        assign(v("allowed"), idx(v("acl_action"), v("i"))),
                        brk(),
                    ],
                ),
                assign(v("i"), v("i") + 1),
            ],
            max_trips=1024,
        ),
        if_(
            v("allowed"),
            [
                decl("fresh", "fw_conn"),
                assign(fld(v("fresh"), "pkts"), lit(1)),
                assign(fld(v("fresh"), "established"), lit(1, "u8")),
                mcall("conn_table", "insert", v("key"), v("fresh")).as_stmt(),
                assign(v("flows_admitted"), v("flows_admitted") + 1),
                pkt("send", 0).as_stmt(),
            ],
            [
                assign(v("acl_drops"), v("acl_drops") + 1),
                pkt("drop").as_stmt(),
            ],
        ),
    ]
    return ElementDef(
        name="firewall",
        structs=[
            struct(
                "fw_key",
                ("saddr", "u32"),
                ("daddr", "u32"),
                ("sport", "u16"),
                ("dport", "u16"),
            ),
            struct("fw_conn", ("pkts", "u32"), ("established", "u8")),
        ],
        state=[
            hashmap_state("conn_table", "fw_key", "fw_conn", flow_entries),
            array_state("acl_prefix", "u32", n_acl),
            array_state("acl_mask", "u32", n_acl),
            array_state("acl_action", "u32", n_acl),
            scalar_state("n_acl", "u32"),
            scalar_state("fast_hits", "u64"),
            scalar_state("flows_admitted", "u64"),
            scalar_state("acl_drops", "u64"),
            scalar_state("no_state_drops", "u64"),
        ],
        handler=handler,
        description="Stateful firewall: ACL-gated connection table.",
    )
