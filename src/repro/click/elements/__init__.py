"""The element library: realistic Click NFs used throughout the
evaluation (paper Table 2 and Figure 1).

Each builder returns an :class:`~repro.click.ast.ElementDef`; builders
take keyword parameters for the source-level variants the paper
benchmarks (rule counts, sketch dimensions, scan depths).  Elements
whose state needs non-zero initialisation (rule tables, signatures)
expose it via :func:`initial_state`, which tests and benchmarks install
through :func:`install_state`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.click.ast import ElementDef
from repro.errors import UnknownElementError
from repro.click.elements.counters import aggcounter, timefilter, udpcount
from repro.click.elements.crypto import wepdecap
from repro.click.elements.dpi import dpi, firewall
from repro.click.elements.gen import dnsproxy, tcpgen, webgen, webtcp
from repro.click.elements.lookup import ipclassifier, iplookup
from repro.click.elements.nat import iprewriter, mazunat, mininat
from repro.click.elements.shaping import loadbalancer, ratelimiter
from repro.click.elements.simple import (
    anonipaddr,
    forcetcp,
    tcpack,
    tcpresp,
    udpipencap,
)
from repro.click.elements.sketch import cmsketch, heavyhitter

ELEMENT_BUILDERS: Dict[str, Callable[..., ElementDef]] = {
    "anonipaddr": anonipaddr,
    "tcpack": tcpack,
    "udpipencap": udpipencap,
    "forcetcp": forcetcp,
    "tcpresp": tcpresp,
    "tcpgen": tcpgen,
    "aggcounter": aggcounter,
    "timefilter": timefilter,
    "cmsketch": cmsketch,
    "wepdecap": wepdecap,
    "iplookup": iplookup,
    "iprewriter": iprewriter,
    "ipclassifier": ipclassifier,
    "dnsproxy": dnsproxy,
    "mininat": mininat,
    "mazunat": mazunat,
    "udpcount": udpcount,
    "webgen": webgen,
    "webtcp": webtcp,
    "heavyhitter": heavyhitter,
    "dpi": dpi,
    "firewall": firewall,
    "ratelimiter": ratelimiter,
    "loadbalancer": loadbalancer,
}

#: The Table-2 inventory order from the paper (plus our extras).
TABLE2_ELEMENTS: List[str] = [
    "anonipaddr",
    "tcpack",
    "udpipencap",
    "forcetcp",
    "tcpresp",
    "tcpgen",
    "aggcounter",
    "timefilter",
    "cmsketch",
    "wepdecap",
    "iplookup",
    "iprewriter",
    "ipclassifier",
    "dnsproxy",
    "mazunat",
    "udpcount",
    "webgen",
]


def build_element(name: str, **params) -> ElementDef:
    """Build a library element by name."""
    try:
        builder = ELEMENT_BUILDERS[name]
    except KeyError:
        raise UnknownElementError(
            f"unknown element {name!r}; available: {sorted(ELEMENT_BUILDERS)}"
        ) from None
    return builder(**params)


def all_elements() -> List[ElementDef]:
    return [build_element(name) for name in ELEMENT_BUILDERS]


def initial_state(element: ElementDef) -> Mapping[str, object]:
    """Non-zero initial state the element expects, if any."""
    return getattr(element, "initial_state", {})


def install_state(interpreter, values: Mapping[str, object]) -> None:
    """Install initial state values into an interpreter instance.

    ``values`` maps global names to either scalars or sequences (for
    array state); shorter sequences initialize a prefix of the array.
    """
    for name, value in values.items():
        store = interpreter.globals.get(name)
        if store is None:
            raise KeyError(f"element has no state named {name!r}")
        if isinstance(value, (list, tuple)):
            tree = store.tree
            for i, item in enumerate(value):
                tree[i] = item
        else:
            store.tree = value
