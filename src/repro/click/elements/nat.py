"""NAT-family elements: mininat (the paper's Figure 4 example),
Mazu-NAT (the large real-world NAT from Table 2), and iprewriter.
"""

from __future__ import annotations

from repro.click.ast import ElementDef
from repro.click.elements._dsl import (
    assign,
    decl,
    eq,
    fcall,
    fld,
    hashmap_state,
    if_,
    lit,
    lt,
    mcall,
    ne,
    pkt,
    ret,
    scalar_state,
    struct,
    v,
)


def mininat(use_checksum_accel: bool = True) -> ElementDef:
    """The simplified NAT element of the paper's Figure 4.

    Looks up the reversed flow 5-tuple in an internal map and rewrites
    the destination address/port.  ``use_checksum_accel`` only tags the
    element metadata (a *porting* decision, not source logic).
    """
    ip = v("ip")
    tcp = v("tcp")
    body = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("tcp", "tcp_hdr*", pkt("tcp_header")),
        if_(eq(v("tcp"), 0), [pkt("drop").as_stmt(), ret()]),
        decl("hdr_size", "u16", (fld(ip, "ip_hl") + fld(tcp, "th_off")) << 2),
        if_(
            lt(v("hdr_size"), fld(ip, "ip_len")),
            [
                decl("key", "int_key"),
                assign(fld(v("key"), "src_ip"), fld(ip, "dst_addr")),
                assign(fld(v("key"), "dst_ip"), fld(ip, "src_addr")),
                decl("f", "flow*", mcall("int_map", "find", v("key"))),
                if_(
                    ne(v("f"), 0),
                    [
                        assign(fld(ip, "dst_addr"), fld(v("f"), "int_ip")),
                        assign(fld(tcp, "th_dport"), fld(v("f"), "int_port")),
                        fcall("checksum_update_ip", ip).as_stmt(),
                        pkt("send", 0).as_stmt(),
                    ],
                    [pkt("drop").as_stmt()],
                ),
            ],
            [pkt("drop").as_stmt()],
        ),
    ]
    element = ElementDef(
        name="mininat",
        structs=[
            struct("int_key", ("src_ip", "u32"), ("dst_ip", "u32")),
            struct("flow", ("int_ip", "u32"), ("int_port", "u16")),
        ],
        state=[hashmap_state("int_map", "int_key", "flow", 1024)],
        handler=body,
        description="Simplified NAT: rewrite destination from a flow map.",
    )
    return element


def mazunat(map_entries: int = 4096) -> ElementDef:
    """Mazu-NAT: bidirectional NAT with dynamic port allocation.

    Internal->external packets allocate a translation on first sight;
    external->internal packets reverse-translate.  Keeps per-direction
    maps plus counters — the paper's heaviest NF (Table 2: 1266 LoC,
    4127 instructions, 102 stateful accesses).
    """
    ip = v("ip")
    tcp = v("tcp")
    nat_ip = 0x0A00000A

    handler = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("tcp", "tcp_hdr*", pkt("tcp_header")),
        if_(eq(v("tcp"), 0), [pkt("drop").as_stmt(), ret()]),
        decl("port", "u32", pkt("in_port")),
        if_(
            eq(v("port"), 0),
            [
                # Internal -> external: translate source.
                decl("fkey", "nat_key"),
                assign(fld(v("fkey"), "addr"), fld(ip, "src_addr")),
                assign(fld(v("fkey"), "port"), fld(tcp, "th_sport")),
                decl("fwd", "nat_entry*", mcall("fwd_map", "find", v("fkey"))),
                if_(
                    eq(v("fwd"), 0),
                    [
                        # Allocate a fresh external port.
                        assign(v("next_port"), v("next_port") + 1),
                        if_(
                            eq(v("next_port"), 0),
                            [assign(v("next_port"), lit(1024))],
                        ),
                        decl("ext_port", "u16", (v("next_port") & 0x3FFF) + 1024),
                        decl("fval", "nat_entry"),
                        assign(fld(v("fval"), "addr"), lit(nat_ip)),
                        assign(fld(v("fval"), "port"), v("ext_port")),
                        mcall("fwd_map", "insert", v("fkey"), v("fval")).as_stmt(),
                        # Reverse mapping for returning traffic.
                        decl("rkey", "nat_key"),
                        assign(fld(v("rkey"), "addr"), lit(nat_ip)),
                        assign(fld(v("rkey"), "port"), v("ext_port")),
                        decl("rval", "nat_entry"),
                        assign(fld(v("rval"), "addr"), fld(ip, "src_addr")),
                        assign(fld(v("rval"), "port"), fld(tcp, "th_sport")),
                        mcall("rev_map", "insert", v("rkey"), v("rval")).as_stmt(),
                        assign(v("flows_created"), v("flows_created") + 1),
                        assign(fld(ip, "src_addr"), lit(nat_ip)),
                        assign(fld(tcp, "th_sport"), v("ext_port")),
                    ],
                    [
                        assign(fld(ip, "src_addr"), fld(v("fwd"), "addr")),
                        assign(fld(tcp, "th_sport"), fld(v("fwd"), "port")),
                    ],
                ),
                assign(v("pkts_out"), v("pkts_out") + 1),
                fcall("checksum_update_ip", ip).as_stmt(),
                fcall("checksum_update_tcp", tcp).as_stmt(),
                pkt("send", 1).as_stmt(),
            ],
            [
                # External -> internal: reverse translate destination.
                decl("rkey2", "nat_key"),
                assign(fld(v("rkey2"), "addr"), fld(ip, "dst_addr")),
                assign(fld(v("rkey2"), "port"), fld(tcp, "th_dport")),
                decl("rev", "nat_entry*", mcall("rev_map", "find", v("rkey2"))),
                if_(
                    ne(v("rev"), 0),
                    [
                        assign(fld(ip, "dst_addr"), fld(v("rev"), "addr")),
                        assign(fld(tcp, "th_dport"), fld(v("rev"), "port")),
                        assign(v("pkts_in"), v("pkts_in") + 1),
                        fcall("checksum_update_ip", ip).as_stmt(),
                        fcall("checksum_update_tcp", tcp).as_stmt(),
                        pkt("send", 0).as_stmt(),
                    ],
                    [
                        assign(v("pkts_dropped"), v("pkts_dropped") + 1),
                        pkt("drop").as_stmt(),
                    ],
                ),
            ],
        ),
    ]
    return ElementDef(
        name="mazunat",
        structs=[
            struct("nat_key", ("addr", "u32"), ("port", "u16")),
            struct("nat_entry", ("addr", "u32"), ("port", "u16")),
        ],
        state=[
            hashmap_state("fwd_map", "nat_key", "nat_entry", map_entries),
            hashmap_state("rev_map", "nat_key", "nat_entry", map_entries),
            scalar_state("next_port", "u32"),
            scalar_state("flows_created", "u32"),
            scalar_state("pkts_out", "u64"),
            scalar_state("pkts_in", "u64"),
            scalar_state("pkts_dropped", "u64"),
        ],
        handler=handler,
        description="Bidirectional NAT with dynamic port allocation (Mazu-NAT).",
    )


def iprewriter(map_entries: int = 2048) -> ElementDef:
    """IPRewriter: pattern-based flow rewriting with per-flow mappings."""
    ip = v("ip")
    tcp = v("tcp")
    handler = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("tcp", "tcp_hdr*", pkt("tcp_header")),
        if_(eq(v("tcp"), 0), [pkt("drop").as_stmt(), ret()]),
        decl("key", "rw_key"),
        assign(fld(v("key"), "saddr"), fld(ip, "src_addr")),
        assign(fld(v("key"), "daddr"), fld(ip, "dst_addr")),
        assign(fld(v("key"), "sport"), fld(tcp, "th_sport")),
        assign(fld(v("key"), "dport"), fld(tcp, "th_dport")),
        decl("m", "rw_mapping*", mcall("map", "find", v("key"))),
        if_(
            eq(v("m"), 0),
            [
                # Install a new mapping from the rewrite pattern.
                decl("nm", "rw_mapping"),
                assign(
                    fld(v("nm"), "new_saddr"),
                    (fld(ip, "src_addr") & 0x0000FFFF) | (v("pattern_ip") & 0xFFFF0000),
                ),
                assign(fld(v("nm"), "new_daddr"), fld(ip, "dst_addr")),
                assign(
                    fld(v("nm"), "new_sport"),
                    ((fld(tcp, "th_sport") * 31) & 0x3FFF) + 1024,
                ),
                assign(fld(v("nm"), "new_dport"), fld(tcp, "th_dport")),
                mcall("map", "insert", v("key"), v("nm")).as_stmt(),
                assign(v("installs"), v("installs") + 1),
                decl("m2", "rw_mapping*", mcall("map", "find", v("key"))),
                assign(fld(ip, "src_addr"), fld(v("m2"), "new_saddr")),
                assign(fld(tcp, "th_sport"), fld(v("m2"), "new_sport")),
            ],
            [
                assign(fld(ip, "src_addr"), fld(v("m"), "new_saddr")),
                assign(fld(ip, "dst_addr"), fld(v("m"), "new_daddr")),
                assign(fld(tcp, "th_sport"), fld(v("m"), "new_sport")),
                assign(fld(tcp, "th_dport"), fld(v("m"), "new_dport")),
            ],
        ),
        fcall("checksum_update_ip", ip).as_stmt(),
        pkt("send", 0).as_stmt(),
    ]
    return ElementDef(
        name="iprewriter",
        structs=[
            struct(
                "rw_key",
                ("saddr", "u32"),
                ("daddr", "u32"),
                ("sport", "u16"),
                ("dport", "u16"),
            ),
            struct(
                "rw_mapping",
                ("new_saddr", "u32"),
                ("new_daddr", "u32"),
                ("new_sport", "u16"),
                ("new_dport", "u16"),
            ),
        ],
        state=[
            hashmap_state("map", "rw_key", "rw_mapping", map_entries),
            scalar_state("pattern_ip", "u32"),
            scalar_state("installs", "u32"),
        ],
        handler=handler,
        description="Flow rewriting with installed per-flow mappings.",
    )
