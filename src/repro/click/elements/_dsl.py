"""Terse constructors for writing ClickScript elements in Python.

Every element in :mod:`repro.click.elements` is built with these
helpers; they are pure sugar over :mod:`repro.click.ast`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.click import ast as C

ExprLike = Union[C.Expr, int]


def e(value: ExprLike) -> C.Expr:
    if isinstance(value, C.Expr):
        return value
    return C.IntLit(value)


def v(name: str) -> C.VarRef:
    return C.VarRef(name)


def lit(value: int, type_: str = "u32") -> C.IntLit:
    return C.IntLit(value, type_)


def fld(base: ExprLike, name: str) -> C.FieldExpr:
    return C.FieldExpr(e(base), name)


def idx(base: ExprLike, index: ExprLike) -> C.IndexExpr:
    return C.IndexExpr(e(base), e(index))


# comparisons -----------------------------------------------------------

def eq(a: ExprLike, b: ExprLike) -> C.CmpExpr:
    return C.CmpExpr("==", e(a), e(b))


def ne(a: ExprLike, b: ExprLike) -> C.CmpExpr:
    return C.CmpExpr("!=", e(a), e(b))


def lt(a: ExprLike, b: ExprLike) -> C.CmpExpr:
    return C.CmpExpr("<", e(a), e(b))


def le(a: ExprLike, b: ExprLike) -> C.CmpExpr:
    return C.CmpExpr("<=", e(a), e(b))


def gt(a: ExprLike, b: ExprLike) -> C.CmpExpr:
    return C.CmpExpr(">", e(a), e(b))


def ge(a: ExprLike, b: ExprLike) -> C.CmpExpr:
    return C.CmpExpr(">=", e(a), e(b))


def not_(a: ExprLike) -> C.NotExpr:
    return C.NotExpr(e(a))


def and_(a: ExprLike, b: ExprLike) -> C.BinExpr:
    return C.BinExpr("and", e(a), e(b))


def or_(a: ExprLike, b: ExprLike) -> C.BinExpr:
    return C.BinExpr("or", e(a), e(b))


# calls ------------------------------------------------------------------

def mcall(receiver: str, method: str, *args: ExprLike) -> C.CallExpr:
    return C.CallExpr(method, [e(a) for a in args], receiver=v(receiver))


def fcall(name: str, *args: ExprLike) -> C.CallExpr:
    return C.CallExpr(name, [e(a) for a in args])


def pkt(method: str, *args: ExprLike) -> C.CallExpr:
    return mcall("pkt", method, *args)


# statements --------------------------------------------------------------

def decl(name: str, type_: str, init: Optional[ExprLike] = None) -> C.DeclStmt:
    return C.DeclStmt(name, type_, e(init) if init is not None else None)


def assign(target: ExprLike, value: ExprLike) -> C.AssignStmt:
    return C.AssignStmt(e(target), e(value))


def if_(
    cond: ExprLike,
    then: Sequence[C.Stmt],
    els: Sequence[C.Stmt] = (),
) -> C.IfStmt:
    return C.IfStmt(e(cond), list(then), list(els))


def while_(cond: ExprLike, body: Sequence[C.Stmt], max_trips: int = 4096) -> C.WhileStmt:
    return C.WhileStmt(e(cond), list(body), max_trips)


def for_(
    var: str,
    start: ExprLike,
    end: ExprLike,
    body: Sequence[C.Stmt],
    var_type: str = "u32",
) -> C.ForStmt:
    return C.ForStmt(var, e(start), e(end), list(body), var_type)


def expr(value: ExprLike) -> C.ExprStmt:
    return C.ExprStmt(e(value))


def ret(value: Optional[ExprLike] = None) -> C.ReturnStmt:
    return C.ReturnStmt(e(value) if value is not None else None)


def brk() -> C.BreakStmt:
    return C.BreakStmt()


def cont() -> C.ContinueStmt:
    return C.ContinueStmt()


# declarations --------------------------------------------------------------

def struct(name: str, *fields: tuple) -> C.StructDef:
    return C.StructDef(name, list(fields))


def scalar_state(name: str, type_: str = "u32") -> C.StateDecl:
    return C.StateDecl(name, "scalar", value_type=type_)


def array_state(name: str, type_: str, entries: int) -> C.StateDecl:
    return C.StateDecl(name, "array", value_type=type_, entries=entries)


def struct_state(name: str, struct_name: str) -> C.StateDecl:
    return C.StateDecl(name, "struct", value_type=struct_name)


def hashmap_state(
    name: str, key_struct: str, value_struct: str, entries: int
) -> C.StateDecl:
    return C.StateDecl(
        name, "hashmap", value_type=value_struct, key_struct=key_struct,
        entries=entries,
    )


def vector_state(name: str, elem: str, entries: int) -> C.StateDecl:
    return C.StateDecl(name, "vector", value_type=elem, entries=entries)


def helper(
    name: str,
    params: Sequence[tuple],
    ret_type: str,
    body: Sequence[C.Stmt],
) -> C.FuncDef:
    return C.FuncDef(name, list(params), ret_type, list(body))
