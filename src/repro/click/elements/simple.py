"""Mostly-stateless Click elements: header manipulation NFs.

These correspond to the top rows of Table 2 in the paper (anonipaddr,
tcpack, udpipencap, forcetcp, tcpresp): no persistent state, dominated
by compute and packet-header accesses, and therefore pure targets for
the cross-platform instruction prediction of Section 3.
"""

from __future__ import annotations

from repro.click.ast import ElementDef
from repro.click.elements._dsl import (
    and_,
    assign,
    decl,
    eq,
    fcall,
    fld,
    gt,
    if_,
    lit,
    lt,
    ne,
    pkt,
    ret,
    v,
)

TCP_SYN = 0x02
TCP_ACK = 0x10
TCP_FIN = 0x01
TCP_RST = 0x04


def anonipaddr() -> ElementDef:
    """Anonymize source/destination addresses with a keyed bijective mix.

    Mirrors Click's AnonymizeIPAddr: a few rounds of xor/rotate mixing
    so the mapping is deterministic but not reversible without the key.
    """
    ip = v("ip")
    body = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("src", "u32", fld(ip, "src_addr")),
        decl("dst", "u32", fld(ip, "dst_addr")),
        decl("key", "u32", lit(0x9E3779B9)),
        # Three mixing rounds per address.
        assign(v("src"), (v("src") ^ v("key")) + ((v("src") << 5) & 0xFFFFFFFF)),
        assign(v("src"), v("src") ^ (v("src") >> 13)),
        assign(v("src"), (v("src") * 0x85EBCA6B) & 0xFFFFFFFF),
        assign(v("dst"), (v("dst") ^ v("key")) + ((v("dst") << 5) & 0xFFFFFFFF)),
        assign(v("dst"), v("dst") ^ (v("dst") >> 13)),
        assign(v("dst"), (v("dst") * 0x85EBCA6B) & 0xFFFFFFFF),
        # Preserve class-A locality like Click's anonymizer.
        assign(fld(ip, "src_addr"), (v("src") & 0x00FFFFFF) | (fld(ip, "src_addr") & 0xFF000000)),
        assign(fld(ip, "dst_addr"), (v("dst") & 0x00FFFFFF) | (fld(ip, "dst_addr") & 0xFF000000)),
        fcall("checksum_update_ip", ip).as_stmt(),
        pkt("send", 0).as_stmt(),
    ]
    return ElementDef(
        name="anonipaddr",
        handler=body,
        description="Anonymizes IP addresses while preserving prefix locality.",
    )


def tcpack() -> ElementDef:
    """Turn an inbound TCP segment into an ACK response (Click TCPAck)."""
    ip = v("ip")
    tcp = v("tcp")
    body = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("tcp", "tcp_hdr*", pkt("tcp_header")),
        if_(eq(v("tcp"), 0), [pkt("drop").as_stmt(), ret()]),
        decl("tmp_ip", "u32", fld(ip, "src_addr")),
        assign(fld(ip, "src_addr"), fld(ip, "dst_addr")),
        assign(fld(ip, "dst_addr"), v("tmp_ip")),
        decl("tmp_port", "u16", fld(tcp, "th_sport")),
        assign(fld(tcp, "th_sport"), fld(tcp, "th_dport")),
        assign(fld(tcp, "th_dport"), v("tmp_port")),
        decl("seg_len", "u32", fld(ip, "ip_len") - ((fld(ip, "ip_hl") + fld(tcp, "th_off")) << 2)),
        decl("ack_no", "u32", fld(tcp, "th_seq") + v("seg_len")),
        if_(
            ne(fld(tcp, "th_flags") & TCP_SYN, 0),
            [assign(v("ack_no"), v("ack_no") + 1)],
        ),
        assign(fld(tcp, "th_ack"), v("ack_no")),
        assign(fld(tcp, "th_seq"), lit(0)),
        assign(fld(tcp, "th_flags"), lit(TCP_ACK, "u8")),
        fcall("checksum_update_tcp", tcp).as_stmt(),
        fcall("checksum_update_ip", ip).as_stmt(),
        pkt("send", 0).as_stmt(),
    ]
    return ElementDef(
        name="tcpack",
        handler=body,
        description="Reflects TCP segments as acknowledgments.",
    )


def udpipencap(dst_ip: int = 0x0A000001, dport: int = 4789) -> ElementDef:
    """Encapsulate traffic in a fresh UDP/IP header (Click UDPIPEncap)."""
    ip = v("ip")
    udp = v("udp")
    body = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("udp", "udp_hdr*", pkt("udp_header")),
        if_(eq(v("udp"), 0), [pkt("drop").as_stmt(), ret()]),
        decl("inner_len", "u32", fld(ip, "ip_len")),
        assign(fld(ip, "ip_v"), lit(4, "u8")),
        assign(fld(ip, "ip_hl"), lit(5, "u8")),
        assign(fld(ip, "ip_tos"), lit(0, "u8")),
        assign(fld(ip, "ip_len"), v("inner_len") + 28),
        assign(fld(ip, "ip_id"), (v("inner_len") * 7919) & 0xFFFF),
        assign(fld(ip, "ip_off"), lit(0)),
        assign(fld(ip, "ip_ttl"), lit(64, "u8")),
        assign(fld(ip, "ip_p"), lit(17, "u8")),
        assign(fld(ip, "dst_addr"), lit(dst_ip)),
        assign(fld(udp, "uh_sport"), (fld(ip, "src_addr") & 0x3FFF) + 49152),
        assign(fld(udp, "uh_dport"), lit(dport)),
        assign(fld(udp, "uh_ulen"), v("inner_len") + 8),
        assign(fld(udp, "uh_sum"), lit(0)),
        fcall("checksum_update_ip", ip).as_stmt(),
        pkt("send", 0).as_stmt(),
    ]
    return ElementDef(
        name="udpipencap",
        handler=body,
        description="Encapsulates packets in a new UDP/IP header.",
    )


def forcetcp() -> ElementDef:
    """Coerce packets into well-formed TCP segments (Click ForceTCP)."""
    ip = v("ip")
    tcp = v("tcp")
    body = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("tcp", "tcp_hdr*", pkt("tcp_header")),
        if_(eq(v("tcp"), 0), [pkt("drop").as_stmt(), ret()]),
        assign(fld(ip, "ip_p"), lit(6, "u8")),
        decl("hlen", "u32", fld(ip, "ip_hl") << 2),
        decl("min_len", "u32", v("hlen") + 20),
        if_(
            lt(fld(ip, "ip_len"), v("min_len")),
            [assign(fld(ip, "ip_len"), v("min_len"))],
        ),
        # Clamp the data offset into the legal range [5, 15].
        if_(
            lt(fld(tcp, "th_off"), 5),
            [assign(fld(tcp, "th_off"), lit(5, "u8"))],
        ),
        if_(
            gt(fld(tcp, "th_off"), 15),
            [assign(fld(tcp, "th_off"), lit(15, "u8"))],
        ),
        # RST segments must not carry SYN/FIN.
        if_(
            ne(fld(tcp, "th_flags") & TCP_RST, 0),
            [
                assign(
                    fld(tcp, "th_flags"),
                    fld(tcp, "th_flags") & lit(0xFF ^ (TCP_SYN | TCP_FIN), "u8"),
                )
            ],
        ),
        if_(
            eq(fld(tcp, "th_win"), 0),
            [assign(fld(tcp, "th_win"), lit(1024))],
        ),
        fcall("checksum_update_tcp", tcp).as_stmt(),
        fcall("checksum_update_ip", ip).as_stmt(),
        pkt("send", 0).as_stmt(),
    ]
    return ElementDef(
        name="forcetcp",
        handler=body,
        description="Rewrites packets into well-formed TCP segments.",
    )


def tcpresp() -> ElementDef:
    """Craft TCP responses: SYN->SYN/ACK, FIN->FIN/ACK, data->ACK."""
    ip = v("ip")
    tcp = v("tcp")
    body = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("tcp", "tcp_hdr*", pkt("tcp_header")),
        if_(eq(v("tcp"), 0), [pkt("drop").as_stmt(), ret()]),
        decl("flags", "u8", fld(tcp, "th_flags")),
        # Swap the endpoints.
        decl("tmp_ip", "u32", fld(ip, "src_addr")),
        assign(fld(ip, "src_addr"), fld(ip, "dst_addr")),
        assign(fld(ip, "dst_addr"), v("tmp_ip")),
        decl("tmp_port", "u16", fld(tcp, "th_sport")),
        assign(fld(tcp, "th_sport"), fld(tcp, "th_dport")),
        assign(fld(tcp, "th_dport"), v("tmp_port")),
        decl("isn", "u32", (fld(ip, "dst_addr") * 2654435761) & 0xFFFFFFFF),
        if_(
            and_(ne(v("flags") & TCP_SYN, 0), eq(v("flags") & TCP_ACK, 0)),
            [
                assign(fld(tcp, "th_ack"), fld(tcp, "th_seq") + 1),
                assign(fld(tcp, "th_seq"), v("isn")),
                assign(fld(tcp, "th_flags"), lit(TCP_SYN | TCP_ACK, "u8")),
            ],
            [
                if_(
                    ne(v("flags") & TCP_FIN, 0),
                    [
                        assign(fld(tcp, "th_ack"), fld(tcp, "th_seq") + 1),
                        assign(fld(tcp, "th_flags"), lit(TCP_FIN | TCP_ACK, "u8")),
                    ],
                    [
                        decl(
                            "seg_len",
                            "u32",
                            fld(ip, "ip_len")
                            - ((fld(ip, "ip_hl") + fld(tcp, "th_off")) << 2),
                        ),
                        assign(fld(tcp, "th_ack"), fld(tcp, "th_seq") + v("seg_len")),
                        assign(fld(tcp, "th_flags"), lit(TCP_ACK, "u8")),
                    ],
                ),
            ],
        ),
        assign(fld(tcp, "th_win"), lit(65535)),
        fcall("checksum_update_tcp", tcp).as_stmt(),
        fcall("checksum_update_ip", ip).as_stmt(),
        pkt("send", 0).as_stmt(),
    ]
    return ElementDef(
        name="tcpresp",
        handler=body,
        description="Generates protocol-correct TCP responses.",
    )
