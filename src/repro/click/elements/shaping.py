"""Traffic shaping and load-balancing elements (library extensions
beyond the paper's Table 2): a token-bucket rate limiter and a
Maglev-style consistent-hash load balancer.  Both are classic SmartNIC
offload candidates with interesting state profiles (hot shared scalars
for the bucket; a large read-mostly lookup table for the balancer).
"""

from __future__ import annotations

from typing import List

from repro.click.ast import ElementDef, Stmt
from repro.click.elements._dsl import (
    array_state,
    assign,
    decl,
    eq,
    fld,
    ge,
    gt,
    hashmap_state,
    idx,
    if_,
    lit,
    mcall,
    ne,
    pkt,
    ret,
    scalar_state,
    struct,
    v,
)


def ratelimiter(rate_tokens_per_us: int = 64, burst: int = 65_536) -> ElementDef:
    """Token-bucket policer: refill from the packet timestamp, charge
    the wire length, drop on empty.

    The bucket state (``tokens``/``last_refill_ns``) is written by
    every packet — the hottest possible shared scalars, which makes the
    element a stress test for placement and coalescing.
    """
    ip = v("ip")
    handler: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("now", "u64", pkt("timestamp_ns")),
        decl("elapsed_ns", "u64", v("now") - v("last_refill_ns")),
        # Refill: tokens += elapsed_us * rate, capped at the burst.
        decl("refill", "u64", (v("elapsed_ns") >> 10) * rate_tokens_per_us),
        if_(
            gt(v("refill"), 0),
            [
                assign(v("tokens"), v("tokens") + v("refill")),
                if_(
                    gt(v("tokens"), burst),
                    [assign(v("tokens"), lit(burst))],
                ),
                assign(v("last_refill_ns"), v("now")),
            ],
        ),
        decl("cost", "u64", fld(ip, "ip_len") + 14),
        if_(
            ge(v("tokens"), v("cost")),
            [
                assign(v("tokens"), v("tokens") - v("cost")),
                assign(v("conformed"), v("conformed") + 1),
                pkt("send", 0).as_stmt(),
            ],
            [
                assign(v("policed"), v("policed") + 1),
                assign(v("policed_bytes"), v("policed_bytes") + v("cost")),
                pkt("drop").as_stmt(),
            ],
        ),
    ]
    return ElementDef(
        name="ratelimiter",
        state=[
            scalar_state("tokens", "u64"),
            scalar_state("last_refill_ns", "u64"),
            scalar_state("conformed", "u64"),
            scalar_state("policed", "u64"),
            scalar_state("policed_bytes", "u64"),
        ],
        handler=handler,
        description="Token-bucket rate limiter.",
    )


def loadbalancer(table_size: int = 4096, n_backends: int = 8) -> ElementDef:
    """Maglev-style L4 load balancer.

    New flows hash into a large read-mostly lookup table of backend
    ids; chosen backends are pinned in a connection table so flows
    stick across table rebuilds.  Read-mostly big table + per-flow
    state = a placement problem with two very different structures.
    """
    ip = v("ip")
    tcp = v("tcp")
    handler: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("tcp", "tcp_hdr*", pkt("tcp_header")),
        if_(eq(v("tcp"), 0), [pkt("drop").as_stmt(), ret()]),
        decl("key", "lb_key"),
        assign(fld(v("key"), "saddr"), fld(ip, "src_addr")),
        assign(fld(v("key"), "sport"), fld(tcp, "th_sport")),
        decl("conn", "lb_conn*", mcall("conn_table", "find", v("key"))),
        decl("backend", "u32", lit(0)),
        if_(
            ne(v("conn"), 0),
            [
                # Sticky flow: reuse the pinned backend.
                assign(v("backend"), fld(v("conn"), "backend")),
                assign(v("sticky_hits"), v("sticky_hits") + 1),
            ],
            [
                # New flow: consult the Maglev table.
                decl(
                    "h",
                    "u32",
                    ((fld(ip, "src_addr") * 0x9E3779B1)
                     ^ (fld(tcp, "th_sport") * 0x85EBCA6B))
                    & 0xFFFFFFFF,
                ),
                # Fold the high bits down: the low bits of a product
                # xor carry too little entropy for a table index.
                assign(v("h"), v("h") ^ (v("h") >> 16)),
                assign(v("backend"), idx(v("maglev_table"), v("h") % table_size)),
                decl("fresh", "lb_conn"),
                assign(fld(v("fresh"), "backend"), v("backend")),
                mcall("conn_table", "insert", v("key"), v("fresh")).as_stmt(),
                assign(v("flows_assigned"), v("flows_assigned") + 1),
            ],
        ),
        # DNAT to the chosen backend.
        assign(fld(ip, "dst_addr"), 0x0A640000 + v("backend")),
        assign(idx(v("backend_pkts"), v("backend") % n_backends),
               idx(v("backend_pkts"), v("backend") % n_backends) + 1),
        pkt("send", v("backend") % n_backends).as_stmt(),
    ]
    return ElementDef(
        name="loadbalancer",
        structs=[
            struct("lb_key", ("saddr", "u32"), ("sport", "u16")),
            struct("lb_conn", ("backend", "u32")),
        ],
        state=[
            array_state("maglev_table", "u32", table_size),
            hashmap_state("conn_table", "lb_key", "lb_conn", 8192),
            array_state("backend_pkts", "u64", n_backends),
            scalar_state("sticky_hits", "u64"),
            scalar_state("flows_assigned", "u64"),
        ],
        handler=handler,
        description="Maglev-style consistent-hashing load balancer.",
    )
