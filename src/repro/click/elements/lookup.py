"""Routing/classification elements: iplookup (LPM) and ipclassifier.

``iplookup`` walks its prefix table procedurally — the exact pattern
the paper's LPM accelerator identification targets ("the 'radixiplookup'
element (part of the 'iplookup' NF)"), and the subject of Figure 10(c):
performance vs. number of table rules, with and without the flow-cache
accelerator.
"""

from __future__ import annotations

from typing import List

from repro.click.ast import ElementDef, Stmt
from repro.click.elements._dsl import (
    array_state,
    assign,
    brk,
    decl,
    eq,
    fld,
    ge,
    idx,
    if_,
    lit,
    lt,
    ne,
    pkt,
    scalar_state,
    v,
    while_,
)


def iplookup(n_rules: int = 256) -> ElementDef:
    """Longest-prefix-match routing over a sorted rule table.

    Rules are (prefix, mask-length, next-hop-port) triples held in
    three parallel state arrays, sorted by descending prefix length;
    the handler scans for the first match — a linear LPM, which is what
    a naive port produces and what the NIC's LPM/flow-cache accelerator
    replaces.

    The pointer-chasing loop over rule entries in a bounded loop is the
    manual LPM feature the paper describes (Section 4.1).
    """
    ip = v("ip")
    handler: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("dst", "u32", fld(ip, "dst_addr")),
        decl("out_port", "u32", v("default_port")),
        decl("best_len", "u32", lit(0)),
        decl("i", "u32", lit(0)),
        while_(
            lt(v("i"), v("n_rules")),
            [
                decl("mlen", "u32", idx(v("rule_masklen"), v("i"))),
                decl("mask", "u32", lit(0xFFFFFFFF) << (32 - v("mlen"))),
                if_(
                    eq(v("dst") & v("mask"), idx(v("rule_prefix"), v("i"))),
                    [
                        assign(v("out_port"), idx(v("rule_port"), v("i"))),
                        assign(v("best_len"), v("mlen")),
                        # Rules are sorted by descending prefix length,
                        # so the first hit is the longest match.
                        brk(),
                    ],
                ),
                assign(v("i"), v("i") + 1),
            ],
            max_trips=65536,
        ),
        assign(v("lookups"), v("lookups") + 1),
        if_(
            eq(v("best_len"), 0),
            [assign(v("default_routed"), v("default_routed") + 1)],
        ),
        assign(fld(ip, "ip_ttl"), fld(ip, "ip_ttl") - 1),
        if_(
            eq(fld(ip, "ip_ttl"), 0),
            [pkt("drop").as_stmt()],
            [pkt("send", v("out_port")).as_stmt()],
        ),
    ]
    return ElementDef(
        name="iplookup",
        state=[
            array_state("rule_prefix", "u32", n_rules),
            array_state("rule_masklen", "u32", n_rules),
            array_state("rule_port", "u32", n_rules),
            scalar_state("n_rules", "u32"),
            scalar_state("default_port", "u32"),
            scalar_state("lookups", "u64"),
            scalar_state("default_routed", "u64"),
        ],
        handler=handler,
        description="Longest prefix match over a sorted rule table.",
    )


def ipclassifier(n_rules: int = 32) -> ElementDef:
    """Multi-field packet classifier (Click IPClassifier).

    A large chain of per-rule predicate checks over protocol, address
    ranges, and port ranges; the biggest single element after the NFs
    (Table 2: 1860 compiled instructions).  The rule set is generated
    as explicit code, mirroring how Click compiles its classifier
    configuration into a decision program.
    """
    ip = v("ip")
    tcp = v("tcp")
    handler: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("tcp", "tcp_hdr*", pkt("tcp_header")),
        decl("sport", "u32", lit(0)),
        decl("dport", "u32", lit(0)),
        if_(
            ne(v("tcp"), 0),
            [
                assign(v("sport"), fld(tcp, "th_sport")),
                assign(v("dport"), fld(tcp, "th_dport")),
            ],
        ),
        decl("matched", "u32", lit(0)),
        decl("out", "u32", lit(0)),
    ]
    # Deterministically generate a diverse rule chain.
    for r in range(n_rules):
        proto = 6 if r % 3 else 17
        prefix_bits = 8 + (r * 5) % 17
        prefix = ((r * 0x1F3D5B79) & 0xFFFFFFFF) & (
            0xFFFFFFFF << (32 - prefix_bits)
        ) & 0xFFFFFFFF
        port_lo = (r * 997) % 60000
        port_hi = port_lo + 500 + (r % 7) * 100
        mask = (0xFFFFFFFF << (32 - prefix_bits)) & 0xFFFFFFFF
        cond = eq(fld(ip, "ip_p"), proto)
        handler.append(
            if_(
                eq(v("matched"), 0),
                [
                    if_(
                        cond,
                        [
                            if_(
                                eq(fld(ip, "dst_addr") & mask, prefix),
                                [
                                    if_(
                                        ge(v("dport"), port_lo),
                                        [
                                            if_(
                                                lt(v("dport"), port_hi),
                                                [
                                                    assign(v("matched"), lit(1)),
                                                    assign(v("out"), lit(r % 4)),
                                                    assign(
                                                        idx(v("rule_hits"), r % 32),
                                                        idx(v("rule_hits"), r % 32)
                                                        + 1,
                                                    ),
                                                ],
                                            )
                                        ],
                                    )
                                ],
                            )
                        ],
                    )
                ],
            )
        )
    handler.extend(
        [
            assign(v("classified"), v("classified") + 1),
            if_(
                eq(v("matched"), 0),
                [
                    assign(v("unmatched"), v("unmatched") + 1),
                    pkt("drop").as_stmt(),
                ],
                [pkt("send", v("out")).as_stmt()],
            ),
        ]
    )
    return ElementDef(
        name="ipclassifier",
        state=[
            array_state("rule_hits", "u32", 32),
            scalar_state("classified", "u64"),
            scalar_state("unmatched", "u64"),
        ],
        handler=handler,
        description="Multi-field classifier compiled from a rule chain.",
    )
