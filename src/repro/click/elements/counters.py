"""Counting and time-window elements: aggcounter, timefilter, udpcount.

These make extensive use of scalar/array state and are the primary
subjects of the memory-coalescing (Figure 13) and state-placement
(Figure 12) experiments.
"""

from __future__ import annotations

from repro.click.ast import ElementDef
from repro.click.elements._dsl import (
    array_state,
    assign,
    decl,
    eq,
    fld,
    ge,
    hashmap_state,
    idx,
    if_,
    lit,
    lt,
    mcall,
    pkt,
    ret,
    scalar_state,
    struct,
    v,
)


def aggcounter(buckets: int = 256) -> ElementDef:
    """Aggregate packet/byte counters keyed by address prefix.

    Click's AggregateCounter: indexes a counter array by the top bits
    of the destination address and maintains global tallies.
    """
    ip = v("ip")
    handler = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("agg", "u32", (fld(ip, "dst_addr") >> 24) % buckets),
        assign(idx(v("pkt_count"), v("agg")), idx(v("pkt_count"), v("agg")) + 1),
        assign(
            idx(v("byte_count"), v("agg")),
            idx(v("byte_count"), v("agg")) + fld(ip, "ip_len"),
        ),
        assign(v("total_pkts"), v("total_pkts") + 1),
        assign(v("total_bytes"), v("total_bytes") + fld(ip, "ip_len")),
        if_(
            ge(idx(v("pkt_count"), v("agg")), v("threshold")),
            [
                assign(v("hot_buckets"), v("hot_buckets") + 1),
                pkt("send", 1).as_stmt(),
            ],
            [pkt("send", 0).as_stmt()],
        ),
    ]
    return ElementDef(
        name="aggcounter",
        state=[
            array_state("pkt_count", "u32", buckets),
            array_state("byte_count", "u64", buckets),
            scalar_state("total_pkts", "u64"),
            scalar_state("total_bytes", "u64"),
            scalar_state("threshold", "u32"),
            scalar_state("hot_buckets", "u32"),
        ],
        handler=handler,
        description="Prefix-aggregated packet and byte counters.",
    )


def timefilter(window_entries: int = 1024) -> ElementDef:
    """Filter packets whose flow was seen too recently (rate limiting).

    Keeps last-seen timestamps per flow hash plus window statistics —
    Click's TimeFilter/RateFilter pattern.
    """
    ip = v("ip")
    handler = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("now", "u64", pkt("timestamp_ns")),
        decl(
            "h",
            "u32",
            ((fld(ip, "src_addr") ^ fld(ip, "dst_addr")) * 0x9E3779B1)
            % window_entries,
        ),
        decl("last", "u64", idx(v("last_seen"), v("h"))),
        decl("gap", "u64", v("now") - v("last")),
        if_(
            lt(v("gap"), v("min_gap_ns")),
            [
                assign(v("filtered"), v("filtered") + 1),
                # Exponentially-weighted violation tracking.
                assign(v("violation_ewma"), (v("violation_ewma") * 7 + 256) >> 3),
                pkt("drop").as_stmt(),
            ],
            [
                assign(idx(v("last_seen"), v("h")), v("now")),
                assign(v("passed"), v("passed") + 1),
                assign(v("violation_ewma"), (v("violation_ewma") * 7) >> 3),
                if_(
                    eq(v("last"), 0),
                    [assign(v("new_flows"), v("new_flows") + 1)],
                ),
                pkt("send", 0).as_stmt(),
            ],
        ),
    ]
    return ElementDef(
        name="timefilter",
        state=[
            array_state("last_seen", "u64", window_entries),
            scalar_state("min_gap_ns", "u64"),
            scalar_state("filtered", "u64"),
            scalar_state("passed", "u64"),
            scalar_state("new_flows", "u32"),
            scalar_state("violation_ewma", "u32"),
        ],
        handler=handler,
        description="Per-flow inter-arrival rate filter with EWMA stats.",
    )


def udpcount(flow_entries: int = 2048, class_buckets: int = 64) -> ElementDef:
    """UDPCount: classify UDP packets and count per-flow and per-class.

    The paper's Section 5.5 example: the small, hot ``ipclassifier``
    and ``counter`` structures want SRAM placement while the big flow
    table goes to DRAM.
    """
    ip = v("ip")
    udp = v("udp")
    handler = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("udp", "udp_hdr*", pkt("udp_header")),
        if_(eq(v("udp"), 0), [pkt("drop").as_stmt(), ret()]),
        # Port-class classifier: tiny, touched by every packet.
        decl("cls", "u32", fld(udp, "uh_dport") % class_buckets),
        assign(idx(v("classifier"), v("cls")), idx(v("classifier"), v("cls")) + 1),
        assign(v("counter"), v("counter") + 1),
        # Per-flow tally in the big map.
        decl("key", "udp_key"),
        assign(fld(v("key"), "saddr"), fld(ip, "src_addr")),
        assign(fld(v("key"), "daddr"), fld(ip, "dst_addr")),
        assign(fld(v("key"), "sport"), fld(udp, "uh_sport")),
        assign(fld(v("key"), "dport"), fld(udp, "uh_dport")),
        decl("stats", "udp_stats*", mcall("flow_table", "find", v("key"))),
        if_(
            eq(v("stats"), 0),
            [
                decl("fresh", "udp_stats"),
                assign(fld(v("fresh"), "pkts"), lit(1)),
                assign(fld(v("fresh"), "bytes"), fld(ip, "ip_len")),
                mcall("flow_table", "insert", v("key"), v("fresh")).as_stmt(),
                assign(v("flows"), v("flows") + 1),
            ],
            [
                assign(fld(v("stats"), "pkts"), fld(v("stats"), "pkts") + 1),
                assign(
                    fld(v("stats"), "bytes"),
                    fld(v("stats"), "bytes") + fld(ip, "ip_len"),
                ),
            ],
        ),
        pkt("send", 0).as_stmt(),
    ]
    return ElementDef(
        name="udpcount",
        structs=[
            struct(
                "udp_key",
                ("saddr", "u32"),
                ("daddr", "u32"),
                ("sport", "u16"),
                ("dport", "u16"),
            ),
            struct("udp_stats", ("pkts", "u32"), ("bytes", "u32")),
        ],
        state=[
            array_state("classifier", "u32", class_buckets),
            scalar_state("counter", "u64"),
            scalar_state("flows", "u32"),
            hashmap_state("flow_table", "udp_key", "udp_stats", flow_entries),
        ],
        handler=handler,
        description="UDP flow counting with a hot port classifier.",
    )
