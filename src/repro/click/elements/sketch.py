"""Sketching elements: count-min sketch and heavy-hitter detection.

``cmsketch`` computes its row hashes with a procedural CRC32 — the
paper calls out exactly this NF as a CRC-accelerator opportunity
(Section 5.3: CRC acceleration in 'count-min sketch').
"""

from __future__ import annotations

from typing import List

from repro.click.ast import ElementDef, FuncDef, Stmt
from repro.click.elements._dsl import (
    array_state,
    assign,
    decl,
    eq,
    fcall,
    fld,
    for_,
    ge,
    helper,
    idx,
    if_,
    lit,
    lt,
    pkt,
    ret,
    scalar_state,
    v,
)

CRC32_POLY = 0xEDB88320


def crc32_helper(name: str = "crc32_hash") -> FuncDef:
    """Bitwise (table-free) CRC32 over a 32-bit word, 8 rounds/byte.

    The classic reflected CRC-32 inner loop: xor low bit, shift,
    conditionally xor the polynomial — the bit-twiddling shape the
    algorithm-identification SVM keys on.
    """
    body: List[Stmt] = [
        decl("crc", "u32", v("seed") ^ 0xFFFFFFFF),
        for_(
            "byte_i",
            0,
            4,
            [
                decl("b", "u32", (v("data") >> (v("byte_i") << 3)) & 0xFF),
                assign(v("crc"), v("crc") ^ v("b")),
                for_(
                    "bit_i",
                    0,
                    8,
                    [
                        decl("lsb", "u32", v("crc") & 1),
                        assign(v("crc"), v("crc") >> 1),
                        if_(
                            v("lsb"),
                            [assign(v("crc"), v("crc") ^ CRC32_POLY)],
                        ),
                    ],
                ),
            ],
        ),
        ret(v("crc") ^ 0xFFFFFFFF),
    ]
    return helper(name, [("data", "u32"), ("seed", "u32")], "u32", body)


def cmsketch(rows: int = 4, cols: int = 1024) -> ElementDef:
    """Count-min sketch keyed by a flow hash.

    Each row uses a CRC32 with a different seed; counters live in one
    backing array of ``rows * cols`` so placement treats the sketch as
    a single stateful structure.
    """
    ip = v("ip")
    handler: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("flow_id", "u32", fld(ip, "src_addr") ^ (fld(ip, "dst_addr") << 1)),
        decl("min_est", "u32", lit(0xFFFFFFFF)),
    ]
    for r in range(rows):
        slot = v(f"slot{r}")
        handler.extend(
            [
                decl(
                    f"h{r}",
                    "u32",
                    fcall("crc32_hash", v("flow_id"), 0x1000193 * (r + 1)),
                ),
                decl(f"slot{r}", "u32", (v(f"h{r}") % cols) + (r * cols)),
                assign(idx(v("counters"), slot), idx(v("counters"), slot) + 1),
                if_(
                    lt(idx(v("counters"), slot), v("min_est")),
                    [assign(v("min_est"), idx(v("counters"), slot))],
                ),
            ]
        )
    handler.extend(
        [
            assign(v("updates"), v("updates") + 1),
            if_(
                ge(v("min_est"), v("report_threshold")),
                [
                    assign(v("reported"), v("reported") + 1),
                    pkt("send", 1).as_stmt(),
                ],
                [pkt("send", 0).as_stmt()],
            ),
        ]
    )
    return ElementDef(
        name="cmsketch",
        state=[
            array_state("counters", "u32", rows * cols),
            scalar_state("updates", "u64"),
            scalar_state("reported", "u32"),
            scalar_state("report_threshold", "u32"),
        ],
        handler=handler,
        helpers=[crc32_helper()],
        description="Count-min sketch with CRC32 row hashes.",
    )


def heavyhitter(buckets: int = 512, threshold: int = 64) -> ElementDef:
    """Space-saving heavy-hitter detection.

    A bucketed candidate table: the owning flow increments its count;
    other flows decay it and take over emptied slots.  One of the
    Figure-1 variability NFs (performance depends on packet rate and
    flow skew).
    """
    ip = v("ip")
    handler: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("fid", "u32", fld(ip, "src_addr") ^ fld(ip, "dst_addr")),
        decl("h", "u32", (v("fid") * 0x9E3779B1) % buckets),
        decl("owner", "u32", idx(v("owners"), v("h"))),
        if_(
            eq(v("owner"), v("fid")),
            [assign(idx(v("counts"), v("h")), idx(v("counts"), v("h")) + 1)],
            [
                if_(
                    eq(idx(v("counts"), v("h")), 0),
                    [
                        assign(idx(v("owners"), v("h")), v("fid")),
                        assign(idx(v("counts"), v("h")), lit(1)),
                        assign(v("evictions"), v("evictions") + 1),
                    ],
                    [
                        assign(
                            idx(v("counts"), v("h")),
                            idx(v("counts"), v("h")) - 1,
                        )
                    ],
                ),
            ],
        ),
        assign(v("total"), v("total") + 1),
        if_(
            ge(idx(v("counts"), v("h")), threshold),
            [
                assign(v("heavy_flags"), v("heavy_flags") + 1),
                pkt("send", 1).as_stmt(),
            ],
            [pkt("send", 0).as_stmt()],
        ),
    ]
    return ElementDef(
        name="heavyhitter",
        state=[
            array_state("owners", "u32", buckets),
            array_state("counts", "u32", buckets),
            scalar_state("total", "u64"),
            scalar_state("evictions", "u32"),
            scalar_state("heavy_flags", "u32"),
        ],
        handler=handler,
        description="Space-saving heavy-hitter detection.",
    )
