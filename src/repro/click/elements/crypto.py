"""Crypto-flavoured element: wepdecap (WEP decapsulation with RC4 and a
CRC32 integrity check) — the paper's second CRC-accelerator case study
("CRC acceleration opportunities in elements like 'rc4' (part of the
'wepdecap' NF)").

The RC4 S-box is per-packet scratch (WEP re-keys on every IV), so it is
a *local* array: on the NIC it lands in per-engine local memory, not in
the shared hierarchy.  The ICV is a CRC32 over the full decrypted
payload, computed word-at-a-time through the same procedural CRC helper
the algorithm identifier flags.
"""

from __future__ import annotations

from typing import List

from repro.click.ast import ElementDef, Stmt
from repro.click.elements._dsl import (
    array_state,
    assign,
    decl,
    eq,
    fcall,
    fld,
    for_,
    idx,
    if_,
    lit,
    lt,
    ne,
    pkt,
    ret,
    scalar_state,
    v,
)
from repro.click.elements.sketch import crc32_helper


def wepdecap(max_decrypt: int = 64) -> ElementDef:
    """WEP decapsulation: RC4-decrypt the payload, then verify a CRC32
    integrity check value over the plaintext."""
    ip = v("ip")
    handler: List[Stmt] = [
        decl("ip", "ip_hdr*", pkt("ip_header")),
        decl("plen", "u32", pkt("payload_len")),
        if_(eq(v("plen"), 0), [pkt("drop").as_stmt(), ret()]),
        decl("n", "u32", v("plen")),
        if_(lt(lit(max_decrypt), v("n")), [assign(v("n"), lit(max_decrypt))]),
        # Per-packet RC4 key schedule: WEP IV (we reuse ip_id) || key.
        decl("iv", "u32", fld(ip, "ip_id")),
        decl("key", "u32", (v("iv") << 16) ^ v("wep_key")),
        decl("sbox", "u32[256]"),
        for_("si", 0, 256, [assign(idx(v("sbox"), v("si")), v("si"))]),
        decl("j", "u32", lit(0)),
        for_(
            "ki",
            0,
            256,
            [
                decl("kb", "u32", (v("key") >> ((v("ki") % 4) << 3)) & 0xFF),
                assign(v("j"), (v("j") + idx(v("sbox"), v("ki")) + v("kb")) & 0xFF),
                decl("tmp", "u32", idx(v("sbox"), v("ki"))),
                assign(idx(v("sbox"), v("ki")), idx(v("sbox"), v("j"))),
                assign(idx(v("sbox"), v("j")), v("tmp")),
            ],
        ),
        # PRGA + decrypt in place.
        decl("x", "u32", lit(0)),
        decl("y", "u32", lit(0)),
        for_(
            "i",
            0,
            v("n"),
            [
                assign(v("x"), (v("x") + 1) & 0xFF),
                assign(v("y"), (v("y") + idx(v("sbox"), v("x"))) & 0xFF),
                decl("tmp2", "u32", idx(v("sbox"), v("x"))),
                assign(idx(v("sbox"), v("x")), idx(v("sbox"), v("y"))),
                assign(idx(v("sbox"), v("y")), v("tmp2")),
                decl(
                    "ks",
                    "u32",
                    idx(
                        v("sbox"),
                        (idx(v("sbox"), v("x")) + idx(v("sbox"), v("y"))) & 0xFF,
                    ),
                ),
                decl("ct", "u32", pkt("payload_byte", v("i"))),
                pkt("set_payload_byte", v("i"), v("ct") ^ v("ks")).as_stmt(),
            ],
        ),
        # CRC32 integrity check over the decrypted payload, word at a
        # time (WEP's ICV covers the whole plaintext).
        decl("crc", "u32", lit(0)),
        decl("words", "u32", v("n") >> 2),
        for_(
            "w",
            0,
            v("words"),
            [
                decl("base", "u32", v("w") << 2),
                decl(
                    "word",
                    "u32",
                    (pkt("payload_byte", v("base")) << 24)
                    | (pkt("payload_byte", v("base") + 1) << 16)
                    | (pkt("payload_byte", v("base") + 2) << 8)
                    | pkt("payload_byte", v("base") + 3),
                ),
                assign(v("crc"), fcall("crc32_hash", v("word") ^ v("crc"), v("w"))),
            ],
        ),
        decl("expected", "u32", idx(v("icv_table"), v("iv") % 256)),
        if_(
            ne(v("expected"), 0),
            [
                if_(
                    ne(v("crc"), v("expected")),
                    [
                        assign(v("icv_failures"), v("icv_failures") + 1),
                        pkt("drop").as_stmt(),
                        ret(),
                    ],
                ),
            ],
        ),
        assign(v("decapsulated"), v("decapsulated") + 1),
        pkt("send", 0).as_stmt(),
    ]
    return ElementDef(
        name="wepdecap",
        state=[
            scalar_state("wep_key", "u32"),
            array_state("icv_table", "u32", 256),
            scalar_state("icv_failures", "u32"),
            scalar_state("decapsulated", "u64"),
        ],
        handler=handler,
        helpers=[crc32_helper()],
        description="WEP decapsulation: RC4 decrypt + CRC32 integrity check.",
    )
