"""Lowering from ClickScript ASTs to NFIR.

This plays the role clang plays in the paper: it produces deliberately
*unoptimized* IR (paper Section 3.1: "Clara disables most LLVM
optimizations"), with every local variable behind an ``alloca`` and no
clever folding, so the IR stays close to the original NF logic.  The
SmartNIC compiler in :mod:`repro.nic.compiler` then performs the opaque
optimizations Clara's LSTM has to learn.

Lowering conventions:

* locals live in entry-block allocas; reads/writes are load/store
  (stateless memory, elided later by the NIC register allocator);
* element state becomes module globals; scalar/array/struct state is
  accessed with direct GEP+load/store (stateful memory, counted
  exactly); HashMap/Vector state is accessed through framework API
  calls that are reverse ported;
* header views (``pkt.ip_header()``) are API calls returning header
  pointers; loads/stores through them are packet-buffer accesses;
* helper subroutines lower to ``!internal`` calls and are inlined.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.click import ast as C
from repro.click.framework import (
    API_REGISTRY,
    METHOD_TABLE,
    RECEIVER_HASHMAP,
    RECEIVER_PACKET,
    RECEIVER_VECTOR,
)
from repro.click.packet import PACKET_TYPE, header_struct
from repro.nfir.block import BasicBlock
from repro.nfir.builder import IRBuilder
from repro.nfir.function import Function, GlobalVariable, Module
from repro.nfir.inliner import inline_internal_calls
from repro.nfir.instructions import Alloca, CALL_KIND_API, CALL_KIND_INTERNAL
from repro.nfir.types import (
    ArrayType,
    IntType,
    IRType,
    PointerType,
    StructType,
    VOID,
    I1,
    I8,
    I32,
    int_type,
)
from repro.nfir.values import Constant, Value

_HEADER_STRUCTS = {
    "eth_hdr": header_struct("eth"),
    "ip_hdr": header_struct("ip"),
    "tcp_hdr": header_struct("tcp"),
    "udp_hdr": header_struct("udp"),
}


class LoweringError(ValueError):
    pass


def _script_int_type(name: str) -> IntType:
    if name not in C.TYPE_BITS:
        raise LoweringError(f"not a scalar type: {name!r}")
    return int_type(C.TYPE_BITS[name])


class _ElementTypes:
    """Resolves script type names to NFIR types for one element."""

    def __init__(self, element: C.ElementDef) -> None:
        self.element = element
        self.structs: Dict[str, StructType] = dict(_HEADER_STRUCTS)
        for sd in element.structs:
            self.structs[sd.name] = StructType(
                sd.name,
                tuple((fname, _script_int_type(ftype)) for fname, ftype in sd.fields),
            )

    def resolve(self, name: str) -> IRType:
        if name.endswith("*"):
            return PointerType(self.resolve(name[:-1].strip()))
        if name.endswith("]"):
            # Local array type, e.g. "u32[256]".
            base, _, count = name[:-1].partition("[")
            try:
                n = int(count)
            except ValueError:
                raise LoweringError(f"bad array type {name!r}") from None
            if n <= 0:
                raise LoweringError(f"bad array length in {name!r}")
            return ArrayType(self.resolve(base.strip()), n)
        if name == "void":
            return VOID
        if name in C.TYPE_BITS:
            return _script_int_type(name)
        if name in self.structs:
            return self.structs[name]
        raise LoweringError(f"unknown type {name!r}")


def _hashmap_entry_struct(
    types: _ElementTypes, decl: C.StateDecl
) -> Tuple[StructType, StructType, StructType]:
    """Entry layout for a pre-sized NIC hashmap: tag + key + value."""
    if decl.key_struct is None:
        raise LoweringError(f"hashmap {decl.name} missing key_struct")
    key = types.structs[decl.key_struct]
    value = types.structs[decl.value_type]
    entry = StructType(
        f"{decl.name}_entry",
        (("occupied", I8), ("key", key), ("value", value)),
    )
    return entry, key, value


def _vector_entry_struct(
    types: _ElementTypes, decl: C.StateDecl
) -> Tuple[StructType, IRType]:
    if decl.value_type in C.TYPE_BITS:
        elem: IRType = _script_int_type(decl.value_type)
    else:
        elem = types.structs[decl.value_type]
    entry = StructType(f"{decl.name}_entry", (("valid", I8), ("elem", elem)))
    return entry, elem


class _FunctionLowering:
    """Lowers one handler or helper body into an NFIR function."""

    def __init__(
        self,
        element: C.ElementDef,
        module: Module,
        types: _ElementTypes,
        function: Function,
        helper_names: Dict[str, C.FuncDef],
    ) -> None:
        self.element = element
        self.module = module
        self.types = types
        self.function = function
        self.helpers = helper_names
        self.builder = IRBuilder(function, function.add_block("entry"))
        self.locals: Dict[str, Alloca] = {}
        self.entry_allocas: List[Alloca] = []
        # (continue_target, break_target) stack for loops.
        self.loop_stack: List[Tuple[BasicBlock, BasicBlock]] = []
        self.pkt_arg: Optional[Value] = None
        for arg in function.args:
            if arg.name == "pkt":
                self.pkt_arg = arg

    # -- plumbing -----------------------------------------------------
    def _new_block(self, hint: str) -> BasicBlock:
        return self.function.add_block(
            f"{hint}{len(self.function.blocks)}"
        )

    def _alloca(self, name: str, type_: IRType) -> Alloca:
        if name in self.locals:
            raise LoweringError(
                f"variable {name!r} redeclared in {self.function.name}"
            )
        slot = Alloca(type_, f"{name}.addr")
        self.locals[name] = slot
        self.entry_allocas.append(slot)
        return slot

    def _finish(self) -> None:
        entry = self.function.entry
        for slot in reversed(self.entry_allocas):
            slot.parent = entry
            entry.instructions.insert(0, slot)
        for block in self.function.blocks:
            if not block.is_terminated:
                saved = self.builder.block
                self.builder.position_at_end(block)
                if self.function.ret_type.is_void:
                    self.builder.ret()
                else:
                    self.builder.ret(Constant(self.function.ret_type, 0))
                self.builder.position_at_end(saved)

    def _coerce(self, value: Value, to_type: IRType) -> Value:
        if value.type == to_type:
            return value
        if isinstance(value.type, IntType) and isinstance(to_type, IntType):
            if isinstance(value, Constant):
                return Constant(to_type, value.value)
            if to_type.bits > value.type.bits:
                return self.builder.zext(value, to_type)
            return self.builder.trunc(value, to_type)
        raise LoweringError(f"cannot coerce {value.type} to {to_type}")

    def _truthy(self, value: Value) -> Value:
        if value.type == I1:
            return value
        if isinstance(value.type, IntType):
            return self.builder.icmp("ne", value, Constant(value.type, 0))
        if value.type.is_pointer:
            return self.builder.icmp("ne", value, Constant(value.type, 0))
        raise LoweringError(f"cannot use {value.type} as a condition")

    # -- lvalues --------------------------------------------------------
    def _state_global(self, name: str) -> GlobalVariable:
        return self.module.globals[name]

    def lower_lvalue(self, expr: C.Expr) -> Value:
        """Lower an expression to a pointer to its storage."""
        if isinstance(expr, C.VarRef):
            if expr.name in self.locals:
                return self.locals[expr.name]
            if expr.name in self.module.globals:
                decl = self.element.state_decl(expr.name)
                if decl.kind in ("hashmap", "vector"):
                    raise LoweringError(
                        f"{decl.kind} state {expr.name!r} must be accessed"
                        " through its API methods"
                    )
                return self._state_global(expr.name)
            raise LoweringError(f"unknown variable {expr.name!r}")
        if isinstance(expr, C.FieldExpr):
            base_ptr = self._struct_pointer(expr.base)
            pointee = base_ptr.type.pointee  # type: ignore[union-attr]
            if not isinstance(pointee, StructType):
                raise LoweringError(
                    f"field access {expr.field!r} on non-struct {pointee}"
                )
            return self.builder.gep(base_ptr, [expr.field])
        if isinstance(expr, C.IndexExpr):
            base_ptr = self.lower_lvalue(expr.base)
            pointee = base_ptr.type.pointee  # type: ignore[union-attr]
            if not isinstance(pointee, ArrayType):
                raise LoweringError(f"indexing non-array type {pointee}")
            index = self._coerce(self.lower_expr(expr.index), I32)
            return self.builder.gep(base_ptr, [index])
        raise LoweringError(f"not an lvalue: {expr.kind}")

    def _struct_pointer(self, base: C.Expr) -> Value:
        """Lower ``base`` of a field access to a struct pointer."""
        if isinstance(base, C.VarRef):
            # A pointer-typed variable (header view, map-entry pointer)
            # dereferences; a struct-valued variable takes its address.
            if base.name in self.locals:
                slot = self.locals[base.name]
                if slot.allocated_type.is_pointer:
                    return self.builder.load(slot)
                return slot
            if base.name in self.module.globals:
                return self._state_global(base.name)
            raise LoweringError(f"unknown variable {base.name!r}")
        if isinstance(base, C.CallExpr):
            value = self.lower_expr(base)
            if not value.type.is_pointer:
                raise LoweringError(f"call {base.name} does not yield a pointer")
            return value
        if isinstance(base, C.IndexExpr):
            return self.lower_lvalue(base)
        raise LoweringError(f"cannot take struct pointer of {base.kind}")

    # -- rvalues ---------------------------------------------------------
    def lower_expr(self, expr: C.Expr) -> Value:
        if isinstance(expr, C.IntLit):
            return Constant(_script_int_type(expr.type), expr.value)
        if isinstance(expr, C.VarRef):
            ptr = self.lower_lvalue(expr)
            pointee = ptr.type.pointee  # type: ignore[union-attr]
            if pointee.is_aggregate:
                return ptr  # aggregates decay to their address
            return self.builder.load(ptr)
        if isinstance(expr, C.BinExpr):
            if expr.op in C.BOOL_OPS:
                lhs = self._truthy(self.lower_expr(expr.lhs))
                rhs = self._truthy(self.lower_expr(expr.rhs))
                opcode = "and" if expr.op == "and" else "or"
                return self.builder.binop(opcode, lhs, rhs)
            lhs = self.lower_expr(expr.lhs)
            rhs = self.lower_expr(expr.rhs)
            lhs, rhs = self._promote(lhs, rhs)
            opcode = {
                "+": "add",
                "-": "sub",
                "*": "mul",
                "/": "udiv",
                "%": "urem",
                "&": "and",
                "|": "or",
                "^": "xor",
                "<<": "shl",
                ">>": "lshr",
            }[expr.op]
            return self.builder.binop(opcode, lhs, rhs)
        if isinstance(expr, C.CmpExpr):
            lhs = self.lower_expr(expr.lhs)
            rhs = self.lower_expr(expr.rhs)
            # Pointer null-checks: `ptr == 0` / `ptr != 0`.
            if lhs.type.is_pointer and isinstance(rhs, Constant):
                rhs = Constant(lhs.type, 0)
            elif rhs.type.is_pointer and isinstance(lhs, Constant):
                lhs = Constant(rhs.type, 0)
            else:
                lhs, rhs = self._promote(lhs, rhs)
            predicate = {
                "==": "eq",
                "!=": "ne",
                "<": "ult",
                "<=": "ule",
                ">": "ugt",
                ">=": "uge",
            }[expr.op]
            return self.builder.icmp(predicate, lhs, rhs)
        if isinstance(expr, C.NotExpr):
            value = self._truthy(self.lower_expr(expr.value))
            return self.builder.xor(value, Constant(I1, 1))
        if isinstance(expr, (C.FieldExpr, C.IndexExpr)):
            ptr = self.lower_lvalue(expr)
            pointee = ptr.type.pointee  # type: ignore[union-attr]
            if pointee.is_aggregate:
                return ptr
            return self.builder.load(ptr)
        if isinstance(expr, C.CallExpr):
            return self.lower_call(expr)
        raise LoweringError(f"cannot lower expression {expr.kind}")

    def _promote(self, lhs: Value, rhs: Value) -> Tuple[Value, Value]:
        if not (isinstance(lhs.type, IntType) and isinstance(rhs.type, IntType)):
            raise LoweringError(
                f"arithmetic on non-integers: {lhs.type}, {rhs.type}"
            )
        if lhs.type.bits == rhs.type.bits:
            return lhs, rhs
        wide = lhs.type if lhs.type.bits > rhs.type.bits else rhs.type
        return self._coerce(lhs, wide), self._coerce(rhs, wide)

    # -- calls -------------------------------------------------------------
    def lower_call(self, expr: C.CallExpr) -> Value:
        if expr.receiver is not None:
            return self._lower_method_call(expr)
        if expr.name in API_REGISTRY:
            return self._lower_api_call(expr.name, None, expr.args)
        if expr.name in self.helpers:
            helper = self.helpers[expr.name]
            if len(expr.args) != len(helper.params):
                raise LoweringError(
                    f"helper {expr.name} expects {len(helper.params)} args,"
                    f" got {len(expr.args)}"
                )
            args = []
            for (_pname, ptype), arg in zip(helper.params, expr.args):
                args.append(
                    self._coerce(self.lower_expr(arg), self.types.resolve(ptype))
                )
            ret = self.types.resolve(helper.ret_type)
            return self.builder.call(expr.name, args, ret, kind=CALL_KIND_INTERNAL)
        raise LoweringError(f"unknown function {expr.name!r}")

    def _lower_method_call(self, expr: C.CallExpr) -> Value:
        receiver = expr.receiver
        if isinstance(receiver, C.VarRef) and receiver.name == "pkt":
            table = METHOD_TABLE[RECEIVER_PACKET]
            if expr.name not in table:
                raise LoweringError(f"packet has no method {expr.name!r}")
            return self._lower_api_call(table[expr.name], None, expr.args)
        if isinstance(receiver, C.VarRef) and receiver.name in self.module.globals:
            decl = self.element.state_decl(receiver.name)
            if decl.kind == "hashmap":
                table = METHOD_TABLE[RECEIVER_HASHMAP]
            elif decl.kind == "vector":
                table = METHOD_TABLE[RECEIVER_VECTOR]
            else:
                raise LoweringError(
                    f"state {receiver.name!r} of kind {decl.kind} has no methods"
                )
            if expr.name not in table:
                raise LoweringError(
                    f"{decl.kind} has no method {expr.name!r}"
                )
            return self._lower_api_call(table[expr.name], decl, expr.args)
        raise LoweringError(f"bad method receiver for {expr.name!r}")

    def _api_shape_type(
        self, shape: str, decl: Optional[C.StateDecl]
    ) -> IRType:
        if shape in C.TYPE_BITS or shape == "void":
            return self.types.resolve(shape if shape != "bool" else "bool")
        if shape.endswith("*"):
            inner = shape[:-1]
            if inner in _HEADER_STRUCTS:
                return PointerType(_HEADER_STRUCTS[inner])
            if decl is None:
                raise LoweringError(f"shape {shape!r} needs a state receiver")
            if inner == "key":
                return PointerType(self.types.structs[decl.key_struct])  # type: ignore[index]
            if inner == "value":
                return PointerType(self.types.structs[decl.value_type])
            if inner == "elem":
                if decl.value_type in C.TYPE_BITS:
                    return PointerType(_script_int_type(decl.value_type))
                return PointerType(self.types.structs[decl.value_type])
        raise LoweringError(f"unknown API shape {shape!r}")

    def _lower_api_call(
        self,
        api_name: str,
        decl: Optional[C.StateDecl],
        args: List[C.Expr],
    ) -> Value:
        spec = API_REGISTRY[api_name]
        if len(args) != len(spec.params):
            raise LoweringError(
                f"API {api_name} expects {len(spec.params)} args, got {len(args)}"
            )
        lowered: List[Value] = []
        if spec.receiver == RECEIVER_PACKET:
            if self.pkt_arg is None:
                raise LoweringError(
                    f"{self.function.name} has no packet argument for {api_name}"
                )
            lowered.append(self.pkt_arg)
        elif spec.receiver in (RECEIVER_HASHMAP, RECEIVER_VECTOR):
            assert decl is not None
            lowered.append(self._state_global(decl.name))
        for shape, arg in zip(spec.params, args):
            if shape.endswith("*") and shape[:-1] in ("key", "value", "elem"):
                lowered.append(self.lower_lvalue(arg))
            elif shape.endswith("*"):
                value = self.lower_expr(arg)
                expected = self._api_shape_type(shape, decl)
                if value.type != expected:
                    raise LoweringError(
                        f"API {api_name} arg has type {value.type}, expected"
                        f" {expected}"
                    )
                lowered.append(value)
            else:
                lowered.append(
                    self._coerce(self.lower_expr(arg), self._api_shape_type(shape, decl))
                )
        ret_type = self._api_shape_type(spec.ret, decl) if spec.ret != "void" else VOID
        call = self.builder.call(api_name, lowered, ret_type, kind=CALL_KIND_API)
        if spec.is_stateful and decl is not None and ret_type.is_pointer:
            call.meta["points_to"] = f"stateful:{decl.name}"
        return call

    # -- statements -----------------------------------------------------
    def lower_stmts(self, stmts: List[C.Stmt]) -> None:
        for stmt in stmts:
            if self.builder.block.is_terminated:
                # Unreachable code after return/break; skip lowering the
                # remainder of this statement list.
                return
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: C.Stmt) -> None:
        if isinstance(stmt, C.DeclStmt):
            type_ = self.types.resolve(stmt.type)
            slot = self._alloca(stmt.name, type_)
            if stmt.init is not None:
                value = self.lower_expr(stmt.init)
                if type_.is_pointer:
                    if not value.type.is_pointer:
                        raise LoweringError(
                            f"initializing pointer {stmt.name} with {value.type}"
                        )
                    self.builder.store(value, slot)
                elif isinstance(type_, IntType):
                    self.builder.store(self._coerce(value, type_), slot)
                else:
                    raise LoweringError(
                        f"cannot initialize aggregate {stmt.name!r} inline"
                    )
            return
        if isinstance(stmt, C.AssignStmt):
            ptr = self.lower_lvalue(stmt.target)
            value = self.lower_expr(stmt.value)
            pointee = ptr.type.pointee  # type: ignore[union-attr]
            if isinstance(pointee, IntType):
                value = self._coerce(value, pointee)
            elif pointee.is_pointer:
                if value.type != pointee:
                    raise LoweringError(
                        f"assigning {value.type} to pointer slot {pointee}"
                    )
            else:
                raise LoweringError(f"cannot assign aggregate {pointee}")
            self.builder.store(value, ptr)
            return
        if isinstance(stmt, C.IfStmt):
            cond = self._truthy(self.lower_expr(stmt.cond))
            then_block = self._new_block("if.then")
            merge_block = self._new_block("if.end")
            else_block = (
                self._new_block("if.else") if stmt.else_body else merge_block
            )
            self.builder.cond_br(cond, then_block, else_block)
            self.builder.position_at_end(then_block)
            self.lower_stmts(stmt.then_body)
            if not self.builder.block.is_terminated:
                self.builder.br(merge_block)
            if stmt.else_body:
                self.builder.position_at_end(else_block)
                self.lower_stmts(stmt.else_body)
                if not self.builder.block.is_terminated:
                    self.builder.br(merge_block)
            self.builder.position_at_end(merge_block)
            return
        if isinstance(stmt, C.WhileStmt):
            cond_block = self._new_block("while.cond")
            body_block = self._new_block("while.body")
            exit_block = self._new_block("while.end")
            self.builder.br(cond_block)
            self.builder.position_at_end(cond_block)
            cond = self._truthy(self.lower_expr(stmt.cond))
            self.builder.cond_br(cond, body_block, exit_block)
            self.builder.position_at_end(body_block)
            self.loop_stack.append((cond_block, exit_block))
            self.lower_stmts(stmt.body)
            self.loop_stack.pop()
            if not self.builder.block.is_terminated:
                self.builder.br(cond_block)
            self.builder.position_at_end(exit_block)
            return
        if isinstance(stmt, C.ForStmt):
            var_type = self.types.resolve(stmt.var_type)
            if not isinstance(var_type, IntType):
                raise LoweringError("for-loop variable must be an integer")
            slot = self._alloca(stmt.var, var_type)
            start = self._coerce(self.lower_expr(stmt.start), var_type)
            self.builder.store(start, slot)
            cond_block = self._new_block("for.cond")
            body_block = self._new_block("for.body")
            inc_block = self._new_block("for.inc")
            exit_block = self._new_block("for.end")
            self.builder.br(cond_block)
            self.builder.position_at_end(cond_block)
            current = self.builder.load(slot)
            end = self._coerce(self.lower_expr(stmt.end), var_type)
            cond = self.builder.icmp("ult", current, end)
            self.builder.cond_br(cond, body_block, exit_block)
            self.builder.position_at_end(body_block)
            self.loop_stack.append((inc_block, exit_block))
            self.lower_stmts(stmt.body)
            self.loop_stack.pop()
            if not self.builder.block.is_terminated:
                self.builder.br(inc_block)
            self.builder.position_at_end(inc_block)
            bumped = self.builder.add(
                self.builder.load(slot), Constant(var_type, 1)
            )
            self.builder.store(bumped, slot)
            self.builder.br(cond_block)
            self.builder.position_at_end(exit_block)
            return
        if isinstance(stmt, C.ExprStmt):
            self.lower_expr(stmt.expr)
            return
        if isinstance(stmt, C.ReturnStmt):
            if self.function.ret_type.is_void:
                if stmt.value is not None:
                    raise LoweringError("void function returns a value")
                self.builder.ret()
            else:
                if stmt.value is None:
                    raise LoweringError("non-void function returns nothing")
                value = self._coerce(
                    self.lower_expr(stmt.value), self.function.ret_type
                )
                self.builder.ret(value)
            return
        if isinstance(stmt, C.BreakStmt):
            if not self.loop_stack:
                raise LoweringError("break outside a loop")
            self.builder.br(self.loop_stack[-1][1])
            return
        if isinstance(stmt, C.ContinueStmt):
            if not self.loop_stack:
                raise LoweringError("continue outside a loop")
            self.builder.br(self.loop_stack[-1][0])
            return
        raise LoweringError(f"cannot lower statement {stmt.kind}")


def _lower_state(
    element: C.ElementDef, module: Module, types: _ElementTypes
) -> None:
    for decl in element.state:
        if decl.kind == "scalar":
            module.add_global(
                GlobalVariable(
                    decl.name, _script_int_type(decl.value_type), kind="scalar"
                )
            )
        elif decl.kind == "array":
            elem = _script_int_type(decl.value_type)
            module.add_global(
                GlobalVariable(
                    decl.name,
                    ArrayType(elem, decl.entries),
                    kind="array",
                    entries=decl.entries,
                )
            )
        elif decl.kind == "struct":
            module.add_global(
                GlobalVariable(
                    decl.name, types.structs[decl.value_type], kind="struct"
                )
            )
        elif decl.kind == "hashmap":
            entry, _key, _value = _hashmap_entry_struct(types, decl)
            module.add_global(
                GlobalVariable(
                    decl.name,
                    ArrayType(entry, decl.entries),
                    kind="hashmap",
                    entries=decl.entries,
                )
            )
        elif decl.kind == "vector":
            entry, _elem = _vector_entry_struct(types, decl)
            module.add_global(
                GlobalVariable(
                    decl.name,
                    ArrayType(entry, decl.entries),
                    kind="vector",
                    entries=decl.entries,
                )
            )


def lower_element(element: C.ElementDef, inline: bool = True) -> Module:
    """Lower a ClickScript element to an NFIR module.

    With ``inline=True`` (the default, matching the paper) internal
    helper calls are inlined into the handler.
    """
    module = Module(element.name)
    module.meta["element"] = element
    types = _ElementTypes(element)
    _lower_state(element, module, types)

    helper_names = {h.name: h for h in element.helpers}

    for helper in element.helpers:
        params = [(n, types.resolve(t)) for n, t in helper.params]
        function = Function(helper.name, params, types.resolve(helper.ret_type))
        module.add_function(function)
        lowering = _FunctionLowering(element, module, types, function, helper_names)
        # -O0 style: copy parameters into allocas so they are mutable.
        for arg in function.args:
            slot = lowering._alloca(arg.name, arg.type)
            lowering.builder.store(arg, slot)
        lowering.lower_stmts(helper.body)
        lowering._finish()

    handler = Function("pkt_handler", [("pkt", PointerType(PACKET_TYPE))], VOID)
    module.add_function(handler)
    lowering = _FunctionLowering(element, module, types, handler, helper_names)
    lowering.lower_stmts(element.handler)
    lowering._finish()

    if inline:
        inline_internal_calls(module)
    return module
