"""The typed Clara exception hierarchy.

Every error the library raises on *user-facing* misuse — unknown
element names, invalid workload specs, analysis before training,
unreadable artifacts — derives from :class:`ClaraError`, so callers
can catch one base class, and the CLI can map each subclass to a
distinct non-zero exit code (the ``exit_code`` attribute) with a clean
one-line message instead of a traceback.

Each subclass also inherits the builtin exception it historically was
(``KeyError``, ``ValueError``, ``RuntimeError``), so pre-hierarchy
callers that caught builtins keep working unchanged.

This module lives at the top of the package and imports nothing from
it, so :mod:`repro.workload` and :mod:`repro.click` can raise typed
errors without importing :mod:`repro.core`.
"""

from __future__ import annotations

__all__ = [
    "ArtifactCacheMiss",
    "ArtifactError",
    "BENCH_EXIT_ERROR",
    "BENCH_EXIT_WARNING",
    "ClaraError",
    "EXIT_CODES",
    "HTTP_STATUSES",
    "InvalidWorkloadError",
    "LINT_EXIT_ERROR",
    "LINT_EXIT_WARNING",
    "NotTrainedError",
    "UnknownElementError",
    "UnknownTargetError",
    "http_status_for",
]


class ClaraError(Exception):
    """Base class of every typed Clara error.

    ``exit_code`` is the process exit status the CLI uses for the
    class; ``http_status`` is the response status ``clara serve`` maps
    the class to.  Subclasses override both with distinct values (see
    :data:`EXIT_CODES` and :data:`HTTP_STATUSES`).
    """

    exit_code = 2
    http_status = 400

    def __str__(self) -> str:  # KeyError subclasses repr() their arg
        return str(self.args[0]) if self.args else self.__class__.__name__


class UnknownElementError(ClaraError, KeyError):
    """An element name is not in the element library."""

    exit_code = 3
    http_status = 404


class UnknownTargetError(ClaraError, KeyError):
    """A NIC target name is not in the target registry."""

    exit_code = 12
    http_status = 404


class InvalidWorkloadError(ClaraError, ValueError):
    """A workload specification fails validation."""

    exit_code = 4
    http_status = 400


class NotTrainedError(ClaraError, RuntimeError):
    """An advisor (or Clara itself) was used before its learning phase."""

    exit_code = 5
    http_status = 503


class ArtifactError(ClaraError, RuntimeError):
    """A saved artifact is unreadable, corrupt, or from another version."""

    exit_code = 6
    http_status = 500


class ArtifactCacheMiss(ArtifactError):
    """``cache="require"`` found no stored artifact for the key."""

    exit_code = 7
    http_status = 503


#: ``clara lint`` exit statuses (not exceptions — lint findings are a
#: result, not a failure): 0 means clean or notes only,
#: :data:`LINT_EXIT_WARNING` means warnings but no errors, and
#: :data:`LINT_EXIT_ERROR` means at least one error-severity
#: diagnostic.  Distinct from the exception codes below so scripts can
#: tell "the NF has portability problems" from "the tool failed".
LINT_EXIT_WARNING = 8
LINT_EXIT_ERROR = 9

#: ``clara bench --compare`` exit statuses (like lint: a detected
#: regression is a *finding*, not a tool failure).  0 means no
#: regression beyond threshold, :data:`BENCH_EXIT_WARNING` means
#: warn-grade slowdowns only (CI tolerates these — machines differ),
#: and :data:`BENCH_EXIT_ERROR` means at least one error-grade
#: slowdown (more than twice the regression threshold), which gates
#: merges.
BENCH_EXIT_WARNING = 10
BENCH_EXIT_ERROR = 11

#: exception class name -> CLI exit status (documented in docs/API.md).
EXIT_CODES = {
    cls.__name__: cls.exit_code
    for cls in (
        ClaraError,
        UnknownElementError,
        UnknownTargetError,
        InvalidWorkloadError,
        NotTrainedError,
        ArtifactError,
        ArtifactCacheMiss,
    )
}

#: exception class name -> ``clara serve`` HTTP response status
#: (documented in docs/API.md).  Client mistakes are 4xx (bad request
#: payloads, unknown elements); server-side conditions are 5xx (a
#: not-yet-warm or mis-deployed daemon).
HTTP_STATUSES = {
    cls.__name__: cls.http_status
    for cls in (
        ClaraError,
        UnknownElementError,
        UnknownTargetError,
        InvalidWorkloadError,
        NotTrainedError,
        ArtifactError,
        ArtifactCacheMiss,
    )
}


def http_status_for(exc: BaseException) -> int:
    """The HTTP status the serving layer uses for ``exc``:
    the class's ``http_status`` for :class:`ClaraError` subclasses,
    500 for anything else."""
    return getattr(exc, "http_status", 500) if isinstance(
        exc, ClaraError
    ) else 500
