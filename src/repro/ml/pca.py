"""Principal component analysis (used for the Figure 10(a) feature-
space visualization of accelerator classification)."""

from __future__ import annotations

from typing import Optional

import numpy as np


class PCA:
    def __init__(self, n_components: int = 2) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "PCA":
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        _u, s, vt = np.linalg.svd(centered, full_matrices=False)
        k = min(self.n_components, vt.shape[0])
        self.components_ = vt[:k]
        variance = s**2
        total = variance.sum()
        self.explained_variance_ratio_ = (
            variance[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
