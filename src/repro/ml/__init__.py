"""A compact, numpy-only machine-learning library.

Substitutes for the paper's Scikit-learn / TensorFlow / XGBoost / TPOT
stack (none of which is available offline): LSTM+FC sequence
regression, MLP and 1-D CNN baselines, CART / random forest / GBDT,
kNN, linear SVM, K-means, PCA, a LambdaMART-style pairwise ranker, a
small AutoML pipeline search, sequential pattern extraction, and the
evaluation metrics the paper reports (WMAPE, precision/recall, top-k
ranking accuracy, and the six distribution-divergence measures of
Table 1).

All models take an explicit ``seed`` and are deterministic.
"""

from repro.ml import metrics
from repro.ml.encoding import (
    InstructionVocabulary,
    abstract_instruction,
    encode_blocks,
    encode_sequence,
)
from repro.ml.lstm import LSTMRegressor
from repro.ml.mlp import MLPClassifier, MLPRegressor
from repro.ml.cnn import CNNRegressor
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbdt import GBDTClassifier, GBDTRegressor
from repro.ml.knn import KNNClassifier, KNNRegressor
from repro.ml.svm import LinearSVM
from repro.ml.kmeans import KMeans
from repro.ml.pca import PCA
from repro.ml.ranking import LambdaRanker
from repro.ml.automl import AutoMLRegressor, AutoMLClassifier
from repro.ml.spe import SequentialPatternExtractor

__all__ = [
    "metrics",
    "InstructionVocabulary",
    "abstract_instruction",
    "encode_blocks",
    "encode_sequence",
    "LSTMRegressor",
    "MLPClassifier",
    "MLPRegressor",
    "CNNRegressor",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "GBDTClassifier",
    "GBDTRegressor",
    "KNNClassifier",
    "KNNRegressor",
    "LinearSVM",
    "KMeans",
    "PCA",
    "LambdaRanker",
    "AutoMLRegressor",
    "AutoMLClassifier",
    "SequentialPatternExtractor",
]
