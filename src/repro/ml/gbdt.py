"""Gradient-boosted decision trees.

The paper uses GBDT (via XGBoost) for multicore scale-out regression
(Section 4.2) and LambdaMART ranking for colocation (Section 4.5).  The
generic :meth:`GBDTRegressor.fit_gradients` entry point boosts against
arbitrary per-sample gradients, which is what the LambdaMART ranker in
:mod:`repro.ml.ranking` builds on.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.ml.tree import DecisionTreeRegressor


class GBDTRegressor:
    def __init__(
        self,
        n_rounds: int = 60,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 3,
        subsample: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.n_rounds = n_rounds
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self.base_: float = 0.0
        self.trees: List[DecisionTreeRegressor] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GBDTRegressor":
        """Least-squares boosting."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        self.base_ = float(y.mean())
        current = np.full(len(y), self.base_)
        rng = np.random.default_rng(self.seed)
        self.trees = []
        n = len(y)
        for t in range(self.n_rounds):
            residual = y - current
            if self.subsample < 1.0:
                idx = rng.choice(n, size=max(2, int(n * self.subsample)),
                                 replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=self.seed + t,
            )
            tree.fit(X[idx], residual[idx])
            current += self.learning_rate * tree.predict(X)
            self.trees.append(tree)
        return self

    def fit_gradients(
        self,
        X: np.ndarray,
        gradient_fn: Callable[[np.ndarray], np.ndarray],
    ) -> "GBDTRegressor":
        """Boost against arbitrary negative gradients.

        ``gradient_fn(current_scores) -> pseudo-residuals`` is called
        once per round; used by LambdaMART, where the pseudo-residuals
        are the lambda gradients of the ranking loss.
        """
        X = np.asarray(X, dtype=float)
        n = X.shape[0]
        self.base_ = 0.0
        current = np.zeros(n)
        self.trees = []
        for t in range(self.n_rounds):
            residual = np.asarray(gradient_fn(current), dtype=float)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=self.seed + t,
            )
            tree.fit(X, residual)
            current += self.learning_rate * tree.predict(X)
            self.trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        out = np.full(len(X), self.base_)
        for tree in self.trees:
            out += self.learning_rate * tree.predict(X)
        return out


class GBDTClassifier:
    """Binary logistic boosting; multiclass handled one-vs-rest."""

    def __init__(
        self,
        n_rounds: int = 60,
        learning_rate: float = 0.15,
        max_depth: int = 3,
        min_samples_leaf: int = 3,
        seed: int = 0,
    ) -> None:
        self.n_rounds = n_rounds
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.classes_: Optional[np.ndarray] = None
        self._boosters: List[List[DecisionTreeRegressor]] = []
        self._bases: List[float] = []

    def _fit_binary(self, X: np.ndarray, y01: np.ndarray, seed: int):
        n = len(y01)
        prior = np.clip(y01.mean(), 1e-6, 1 - 1e-6)
        base = float(np.log(prior / (1 - prior)))
        scores = np.full(n, base)
        trees: List[DecisionTreeRegressor] = []
        for t in range(self.n_rounds):
            p = 1.0 / (1.0 + np.exp(-scores))
            residual = y01 - p
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=seed + t,
            )
            tree.fit(X, residual)
            scores += self.learning_rate * tree.predict(X)
            trees.append(tree)
        return base, trees

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GBDTClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        self._boosters = []
        self._bases = []
        for k, cls in enumerate(self.classes_):
            base, trees = self._fit_binary(
                X, (y == cls).astype(float), self.seed + 10_000 * k
            )
            self._bases.append(base)
            self._boosters.append(trees)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        scores = np.zeros((len(X), len(self._boosters)))
        for k, trees in enumerate(self._boosters):
            s = np.full(len(X), self._bases[k])
            for tree in trees:
                s += self.learning_rate * tree.predict(X)
            scores[:, k] = s
        return scores

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        p = 1.0 / (1.0 + np.exp(-scores))
        totals = p.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return p / totals

    def predict(self, X: np.ndarray) -> np.ndarray:
        assert self.classes_ is not None
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]
