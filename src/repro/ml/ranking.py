"""LambdaMART-style pairwise ranking on gradient-boosted trees.

The paper uses XGBoost's LambdaMART for colocation friendliness
ranking (Section 4.5): "By sampling many data pairs and minimizing the
pairwise loss during training, Clara learns an ML model for ranking."
This implementation boosts regression trees against lambda gradients —
the classic RankNet gradients scaled by the NDCG swap delta.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.ml.gbdt import GBDTRegressor


def ndcg_at_k(relevance_in_rank_order: Sequence[float], k: int = 0) -> float:
    """NDCG of a ranking given item relevances in ranked order."""
    rel = np.asarray(relevance_in_rank_order, dtype=float)
    if k:
        rel = rel[:k]
    discounts = 1.0 / np.log2(np.arange(2, len(rel) + 2))
    dcg = float(np.sum((2**rel - 1) * discounts))
    ideal = np.sort(rel)[::-1]
    idcg = float(np.sum((2**ideal - 1) * discounts))
    return dcg / idcg if idcg > 0 else 1.0


class LambdaRanker:
    def __init__(
        self,
        n_rounds: int = 60,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        sigma: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.sigma = sigma
        self.booster = GBDTRegressor(
            n_rounds=n_rounds,
            learning_rate=learning_rate,
            max_depth=max_depth,
            seed=seed,
        )

    def fit(
        self,
        X: np.ndarray,
        relevance: np.ndarray,
        query_ids: np.ndarray,
    ) -> "LambdaRanker":
        """``relevance``: higher is better within each query group."""
        X = np.asarray(X, dtype=float)
        relevance = np.asarray(relevance, dtype=float)
        query_ids = np.asarray(query_ids)
        groups: Dict[object, np.ndarray] = {
            q: np.where(query_ids == q)[0] for q in np.unique(query_ids)
        }

        def lambda_gradients(scores: np.ndarray) -> np.ndarray:
            lambdas = np.zeros_like(scores)
            for idx in groups.values():
                if len(idx) < 2:
                    continue
                rel = relevance[idx]
                s = scores[idx]
                # Current rank positions (descending by score).
                order = np.argsort(-s, kind="stable")
                position = np.empty_like(order)
                position[order] = np.arange(len(idx))
                discount = 1.0 / np.log2(position + 2.0)
                gain = 2.0**rel - 1.0
                ideal = np.sort(rel)[::-1]
                idcg = float(
                    np.sum((2.0**ideal - 1.0) / np.log2(np.arange(2, len(idx) + 2)))
                )
                if idcg <= 0:
                    continue
                for a in range(len(idx)):
                    for b in range(len(idx)):
                        if rel[a] <= rel[b]:
                            continue
                        # a should rank above b.
                        diff = s[a] - s[b]
                        rho = 1.0 / (1.0 + np.exp(self.sigma * diff))
                        delta_ndcg = (
                            abs(gain[a] - gain[b])
                            * abs(discount[a] - discount[b])
                            / idcg
                        )
                        lam = self.sigma * rho * delta_ndcg
                        lambdas[idx[a]] += lam
                        lambdas[idx[b]] -= lam
            return lambdas

        self.booster.fit_gradients(X, lambda_gradients)
        return self

    def score(self, X: np.ndarray) -> np.ndarray:
        return self.booster.predict(X)

    def rank(self, X: np.ndarray) -> np.ndarray:
        """Item indices ordered best-first."""
        return np.argsort(-self.score(X), kind="stable")
