"""CART decision trees (regression and classification).

Vectorized threshold search over presorted feature values; used
directly as the paper's "DT" baseline and as the weak learner inside
the random forest, GBDT, and LambdaMART models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0
    #: class-probability vector at leaves (classification only).
    proba: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split_mse(X: np.ndarray, y: np.ndarray, feature_indices: np.ndarray,
                    min_leaf: int):
    """Best (feature, threshold, gain) under MSE reduction."""
    n = len(y)
    total_sum = y.sum()
    total_sq = (y**2).sum()
    base_impurity = total_sq - total_sum**2 / n
    best = (None, 0.0, 0.0)
    for feature in feature_indices:
        order = np.argsort(X[:, feature], kind="stable")
        xs = X[order, feature]
        ys = y[order]
        csum = np.cumsum(ys)[:-1]
        csq = np.cumsum(ys**2)[:-1]
        counts = np.arange(1, n)
        valid = (xs[1:] != xs[:-1]) & (counts >= min_leaf) & (n - counts >= min_leaf)
        if not valid.any():
            continue
        left_imp = csq - csum**2 / counts
        right_sum = total_sum - csum
        right_sq = total_sq - csq
        right_imp = right_sq - right_sum**2 / (n - counts)
        gain = base_impurity - (left_imp + right_imp)
        gain = np.where(valid, gain, -np.inf)
        idx = int(np.argmax(gain))
        if gain[idx] > best[2]:
            threshold = 0.5 * (xs[idx] + xs[idx + 1])
            best = (int(feature), float(threshold), float(gain[idx]))
    return best


class DecisionTreeRegressor:
    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 2,
        max_features: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = np.random.default_rng(seed)
        self.root: Optional[_Node] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        self.n_features = X.shape[1]
        self.root = self._build(X, y, depth=0)
        return self

    def _feature_candidates(self) -> np.ndarray:
        if self.max_features is None:
            return np.arange(self.n_features)
        k = max(1, int(self.n_features * self.max_features))
        return self.rng.choice(self.n_features, size=k, replace=False)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        if float(y.var()) < 1e-12:
            return node
        feature, threshold, gain = _best_split_mse(
            X, y, self._feature_candidates(), self.min_samples_leaf
        )
        if feature is None or gain <= 1e-12:
            return node
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self.root
            while node is not None and not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value if node is not None else 0.0
        return out


class DecisionTreeClassifier:
    """CART classifier via one-vs-rest regression trees on class
    indicators (Gini-equivalent for binary splits on MSE of
    indicators)."""

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 2,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.classes_: Optional[np.ndarray] = None
        self._trees: List[DecisionTreeRegressor] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        self._trees = []
        for cls in self.classes_:
            tree = DecisionTreeRegressor(
                self.max_depth, self.min_samples_leaf, seed=self.seed
            )
            tree.fit(X, (y == cls).astype(float))
            self._trees.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        scores = np.stack([t.predict(X) for t in self._trees], axis=1)
        scores = np.clip(scores, 0.0, None)
        totals = scores.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return scores / totals

    def predict(self, X: np.ndarray) -> np.ndarray:
        assert self.classes_ is not None
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]
