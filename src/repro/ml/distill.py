"""Confidence-gated GBDT distillation of a sequence model.

The LSTM predictor is accurate but recurrent; a GBDT over bag-of-words
histogram features answers in a handful of tree walks.  Distillation
trains the GBDT to imitate the *LSTM's own outputs* (not ground truth)
over the synthesized corpus, so serving it is an approximation of the
same function, and an **error model** — a second GBDT trained on
K-fold out-of-fold absolute residuals of the student — predicts how
far off the student is likely to be for a given feature row.  Rows
whose predicted error is within the calibrated threshold are served by
the student; the rest fall back to the teacher.

This module is pure mechanism (features in, gated predictions out);
the policy of *when* to consult it lives in
:class:`repro.core.predictor.InstructionPredictor`.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Optional

import numpy as np

from repro.ml.gbdt import GBDTRegressor

__all__ = ["ConfidenceGatedGBDT", "DEFAULT_CONFIDENCE_QUANTILE"]

#: Fraction of out-of-fold residuals the confidence threshold admits:
#: at 0.5, rows the error model scores better than the student's median
#: out-of-fold error are served without teacher fallback.
DEFAULT_CONFIDENCE_QUANTILE = 0.5


class ConfidenceGatedGBDT:
    """A distilled student model plus its own error predictor.

    ``model`` regresses the teacher's log-space outputs from histogram
    features; ``error_model`` regresses the student's expected absolute
    log-space residual (estimated out-of-fold, so it is honest about
    unseen rows); ``threshold`` is the residual level below which the
    student is trusted.
    """

    def __init__(
        self,
        model: GBDTRegressor,
        error_model: GBDTRegressor,
        threshold: float,
    ) -> None:
        self.model = model
        self.error_model = error_model
        self.threshold = float(threshold)

    @classmethod
    def distill(
        cls,
        features: np.ndarray,
        teacher_log: np.ndarray,
        seed: int = 0,
        n_folds: int = 5,
        confidence_quantile: float = DEFAULT_CONFIDENCE_QUANTILE,
        n_rounds: Optional[int] = None,
    ) -> "ConfidenceGatedGBDT":
        """Fit student + error model from ``(features, teacher_log)``.

        The error model's training targets are **out-of-fold**: each
        row's residual comes from a student that never saw it, so the
        confidence gate generalizes instead of memorizing the corpus.
        """
        features = np.asarray(features, dtype=float)
        teacher_log = np.asarray(teacher_log, dtype=float)
        n = len(features)
        if n == 0:
            raise ValueError("cannot distill from an empty corpus")
        kwargs = {} if n_rounds is None else {"n_rounds": int(n_rounds)}
        model = GBDTRegressor(seed=seed, **kwargs).fit(features, teacher_log)

        folds = min(max(2, n_folds), n)
        rng = np.random.default_rng(seed)
        fold_ids = rng.permutation(n) % folds
        oof_abs = np.zeros(n)
        for k in range(folds):
            held = fold_ids == k
            train = ~held
            if not held.any() or not train.any():
                continue
            student = GBDTRegressor(seed=seed + 1 + k, **kwargs).fit(
                features[train], teacher_log[train]
            )
            oof_abs[held] = np.abs(
                student.predict(features[held]) - teacher_log[held]
            )
        error_model = GBDTRegressor(seed=seed + 101, **kwargs).fit(
            features, oof_abs
        )
        threshold = float(np.quantile(oof_abs, confidence_quantile))
        return cls(model, error_model, threshold)

    def predict_counts(self, features: np.ndarray) -> np.ndarray:
        """Student predictions mapped back to count space (the same
        ``expm1``/clamp the LSTM inference path applies)."""
        return np.maximum(np.expm1(self.model.predict(features)), 0.0)

    def confident(self, features: np.ndarray) -> np.ndarray:
        """Boolean mask: rows whose predicted student error is within
        the calibrated threshold."""
        return self.error_model.predict(features) <= self.threshold

    def fingerprint(self) -> str:
        """Content hash of the fitted student+gate (prediction-cache
        namespacing): identical distillations hash identically."""
        payload = pickle.dumps(
            (
                self.threshold,
                self.model.base_,
                self.model.trees,
                self.error_model.base_,
                self.error_model.trees,
            ),
            protocol=4,
        )
        return hashlib.sha256(payload).hexdigest()[:24]
