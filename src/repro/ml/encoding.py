"""Instruction abstraction and vocabulary compaction (paper Section 3.2).

"Clara compacts the vocabulary by abstracting away concrete variable
names and substituting an operand with its type (e.g., 'add int const'
instead of 'add x 2'), with the exception of well-defined header field
names."  The compacted vocabulary stays small (a few hundred words), so
basic one-hot encoding suffices — no word embeddings needed.

The ablation path (``compact=False``) keeps concrete operand text,
blowing the vocabulary up and degrading the LSTM exactly as the paper's
"prior experience of applying LSTM without vocabulary compaction"
reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.click.packet import HEADER_FIELD_NAMES
from repro.nfir.block import BasicBlock
from repro.nfir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.nfir.values import Constant, Value

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"


def _operand_token(value: Value, compact: bool) -> str:
    if isinstance(value, Constant):
        if not compact:
            return str(value.value)
        if value.is_null:
            return "NULL"
        # Constants are abstracted to their *compile-relevant class*,
        # not their value: the NIC compiler treats powers of two
        # (shifts), small immediates (free), 16-bit immediates (one
        # instruction) and wide immediates (a pair) very differently,
        # and the vocabulary must preserve that distinction while
        # staying compact (4 classes, not 2^32 values).
        magnitude = value.value
        if magnitude > 0 and (magnitude & (magnitude - 1)) == 0:
            return "INT_P2"
        if magnitude < 256:
            return "INT_SM"
        if magnitude <= 0xFFFF:
            return "INT_MID"
        return "INT_WIDE"
    if not compact:
        return value.ref()
    return "VAR"


def _gep_field_token(field: str) -> str:
    """Header field names survive compaction; other fields collapse."""
    return field if field in HEADER_FIELD_NAMES else "FIELD"


def abstract_instruction(instr: Instruction, compact: bool = True) -> str:
    """One "word" per instruction, e.g. ``add i32 VAR INT``."""
    if isinstance(instr, BinaryOp):
        return (
            f"{instr.opcode} {instr.type} "
            f"{_operand_token(instr.lhs, compact)} "
            f"{_operand_token(instr.rhs, compact)}"
        )
    if isinstance(instr, ICmp):
        return (
            f"icmp {instr.predicate} {instr.lhs.type} "
            f"{_operand_token(instr.lhs, compact)} "
            f"{_operand_token(instr.rhs, compact)}"
        )
    if isinstance(instr, Select):
        return f"select {instr.type}"
    if isinstance(instr, Cast):
        return f"{instr.opcode} {instr.value.type} {instr.type}"
    if isinstance(instr, Alloca):
        return f"alloca {instr.allocated_type.size_bytes()}"
    if isinstance(instr, Load):
        category = instr.meta.get("category")
        tag = getattr(category, "value", "mem")
        return f"load {instr.type} {tag}"
    if isinstance(instr, Store):
        category = instr.meta.get("category")
        tag = getattr(category, "value", "mem")
        return (
            f"store {instr.value.type} {tag} "
            f"{_operand_token(instr.value, compact)}"
        )
    if isinstance(instr, GEP):
        parts = ["getelementptr"]
        for index in instr.indices:
            if isinstance(index, str):
                parts.append(_gep_field_token(index) if compact else index)
            else:
                parts.append(_operand_token(index, compact))
        return " ".join(parts)
    if isinstance(instr, Call):
        return f"call {instr.callee} {instr.kind}"
    if isinstance(instr, Br):
        return "br"
    if isinstance(instr, CondBr):
        return "br_cond"
    if isinstance(instr, Ret):
        return "ret"
    if isinstance(instr, Phi):
        return f"phi {instr.type}"
    raise TypeError(f"cannot abstract {instr!r}")


def block_tokens(block: BasicBlock, compact: bool = True) -> List[str]:
    return [abstract_instruction(i, compact) for i in block.instructions]


class InstructionVocabulary:
    """Token -> index mapping with pad/unk entries."""

    def __init__(self) -> None:
        self._index: Dict[str, int] = {PAD_TOKEN: 0, UNK_TOKEN: 1}

    @property
    def size(self) -> int:
        return len(self._index)

    def fit(self, sequences: Iterable[Sequence[str]]) -> "InstructionVocabulary":
        for seq in sequences:
            for token in seq:
                if token not in self._index:
                    self._index[token] = len(self._index)
        return self

    def index(self, token: str) -> int:
        return self._index.get(token, self._index[UNK_TOKEN])

    def encode(self, tokens: Sequence[str]) -> np.ndarray:
        return np.array([self.index(t) for t in tokens], dtype=np.int64)

    def tokens(self) -> List[str]:
        return list(self._index)


def encode_sequence(
    vocab: InstructionVocabulary,
    tokens: Sequence[str],
    max_len: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """One-hot encode a token sequence, padded/truncated to ``max_len``.

    Returns ``(one_hot[max_len, vocab], mask[max_len])``.
    """
    ids = vocab.encode(list(tokens)[:max_len])
    one_hot = np.zeros((max_len, vocab.size), dtype=np.float32)
    mask = np.zeros(max_len, dtype=np.float32)
    one_hot[np.arange(len(ids)), ids] = 1.0
    mask[: len(ids)] = 1.0
    return one_hot, mask


def encode_blocks(
    vocab: InstructionVocabulary,
    token_sequences: Sequence[Sequence[str]],
    max_len: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batch-encode sequences: ``(X[n, max_len, vocab], mask[n, max_len])``."""
    n = len(token_sequences)
    X = np.zeros((n, max_len, vocab.size), dtype=np.float32)
    mask = np.zeros((n, max_len), dtype=np.float32)
    for i, tokens in enumerate(token_sequences):
        X[i], mask[i] = encode_sequence(vocab, tokens, max_len)
    return X, mask


def encode_block_ids(
    vocab: InstructionVocabulary,
    token_sequences: Sequence[Sequence[str]],
    max_len: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Integer-id batch encoding: ``(ids[n, max_len], mask[n, max_len])``.

    The inference-side counterpart of :func:`encode_blocks`: the LSTM's
    input projection of a one-hot row is exactly one row of its weight
    matrix, so ``ids`` feed an embedding gather
    (:meth:`~repro.ml.lstm.LSTMRegressor.predict_ids`) that is
    bit-identical to the one-hot matmul without ever materializing the
    dense ``[n, max_len, vocab]`` tensor.  Padded positions hold id 0
    (the pad token) and mask 0.
    """
    n = len(token_sequences)
    ids = np.zeros((n, max_len), dtype=np.int64)
    mask = np.zeros((n, max_len), dtype=np.float32)
    for i, tokens in enumerate(token_sequences):
        encoded = vocab.encode(list(tokens)[:max_len])
        ids[i, : len(encoded)] = encoded
        mask[i, : len(encoded)] = 1.0
    return ids, mask


def histogram_features(
    vocab: InstructionVocabulary, token_sequences: Sequence[Sequence[str]]
) -> np.ndarray:
    """Bag-of-words counts — the representation the non-sequence
    baselines (DNN/AutoML/kNN/...) consume."""
    n = len(token_sequences)
    X = np.zeros((n, vocab.size), dtype=np.float32)
    for i, tokens in enumerate(token_sequences):
        for token in tokens:
            X[i, vocab.index(token)] += 1.0
    return X
