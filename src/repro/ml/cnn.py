"""1-D convolutional sequence regressor (the paper's "CNN" baseline,
in the style of sentence-classification CNNs: parallel convolutions of
several widths over the one-hot sequence, global max pooling, FC head).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


class CNNRegressor:
    def __init__(
        self,
        input_dim: int,
        n_filters: int = 16,
        widths: Sequence[int] = (2, 3, 4),
        lr: float = 2e-3,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.widths = tuple(widths)
        self.n_filters = n_filters
        self.params: Dict[str, np.ndarray] = {}
        for w in self.widths:
            self.params[f"K{w}"] = rng.normal(
                0.0, np.sqrt(2.0 / (w * input_dim)), size=(w, input_dim, n_filters)
            )
            self.params[f"kb{w}"] = np.zeros(n_filters)
        feat = n_filters * len(self.widths)
        self.params["W"] = rng.normal(0.0, np.sqrt(1.0 / feat), size=(feat, 1))
        self.params["b"] = np.zeros(1)
        self.lr = lr
        self._m = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._v = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._t = 0
        self.history: List[float] = []

    def _forward(self, X: np.ndarray, mask: np.ndarray):
        """X: [B,T,D]; mask: [B,T]."""
        B, T, D = X.shape
        Xm = X * mask[:, :, None]
        pooled = []
        cache = {}
        for w in self.widths:
            K = self.params[f"K{w}"]
            n_pos = max(T - w + 1, 1)
            conv = np.zeros((B, n_pos, self.n_filters))
            for offset in range(w):
                end = offset + n_pos
                # conv += X[:, offset:end, :] @ K[offset]
                conv += np.tensordot(Xm[:, offset:end, :], K[offset], axes=([2], [0]))
            conv += self.params[f"kb{w}"]
            relu = np.maximum(conv, 0.0)
            argmax = relu.argmax(axis=1)
            pooled_w = relu.max(axis=1)
            cache[w] = (Xm, conv, argmax, n_pos)
            pooled.append(pooled_w)
        features = np.concatenate(pooled, axis=1)
        out = (features @ self.params["W"] + self.params["b"]).ravel()
        return out, (features, cache)

    def _backward(self, d_out: np.ndarray, cache) -> Dict[str, np.ndarray]:
        features, conv_cache = cache
        grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        grads["W"] = features.T @ d_out[:, None]
        grads["b"] = d_out.sum(keepdims=True)
        d_feat = d_out[:, None] @ self.params["W"].T
        offset = 0
        for w in self.widths:
            Xm, conv, argmax, n_pos = conv_cache[w]
            d_pool = d_feat[:, offset : offset + self.n_filters]
            offset += self.n_filters
            B = conv.shape[0]
            d_conv = np.zeros_like(conv)
            rows = np.repeat(np.arange(B), self.n_filters)
            cols = argmax.ravel()
            filt = np.tile(np.arange(self.n_filters), B)
            d_conv[rows, cols, filt] = (d_pool * (conv[rows, cols, filt].reshape(B, -1) > 0)).ravel()
            for off in range(w):
                end = off + n_pos
                grads[f"K{w}"][off] = np.tensordot(
                    Xm[:, off:end, :], d_conv, axes=([0, 1], [0, 1])
                )
            grads[f"kb{w}"] = d_conv.sum(axis=(0, 1))
        return grads

    def _step(self, grads: Dict[str, np.ndarray]) -> None:
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        self._t += 1
        for key, grad in grads.items():
            self._m[key] = beta1 * self._m[key] + (1 - beta1) * grad
            self._v[key] = beta2 * self._v[key] + (1 - beta2) * grad**2
            m_hat = self._m[key] / (1 - beta1**self._t)
            v_hat = self._v[key] / (1 - beta2**self._t)
            self.params[key] -= self.lr * m_hat / (np.sqrt(v_hat) + eps)

    def fit(
        self,
        X: np.ndarray,
        mask: np.ndarray,
        y: np.ndarray,
        epochs: int = 40,
        batch_size: int = 32,
        seed: int = 0,
    ) -> "CNNRegressor":
        rng = np.random.default_rng(seed)
        y_log = np.log1p(np.asarray(y, dtype=float))
        n = X.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                pred, cache = self._forward(X[idx], mask[idx])
                err = pred - y_log[idx]
                losses.append(float(np.mean(err**2)))
                grads = self._backward(2.0 * err / len(idx), cache)
                self._step(grads)
            self.history.append(float(np.mean(losses)))
        return self

    def predict(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        pred_log, _ = self._forward(X, mask)
        return np.maximum(np.expm1(pred_log), 0.0)
