"""Linear support-vector machine trained with Pegasos (primal
sub-gradient descent on the hinge loss).

The paper's algorithm-identification classifier (Section 4.1) is an
SVM over SPE sequence features; those features are high-dimensional and
near-linearly separable, which is exactly the regime where a linear
SVM shines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class LinearSVM:
    def __init__(
        self,
        lam: float = 1e-3,
        epochs: int = 40,
        seed: int = 0,
        standardize: bool = True,
    ) -> None:
        self.lam = lam
        self.epochs = epochs
        self.seed = seed
        self.standardize = standardize
        self.w: Optional[np.ndarray] = None
        self.b: float = 0.0
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def _prep(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if self.standardize and self._mean is not None:
            X = (X - self._mean) / self._std
        return X

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        """``y`` in {0,1} or {-1,+1}."""
        X = np.asarray(X, dtype=float)
        if self.standardize:
            self._mean = X.mean(axis=0)
            self._std = X.std(axis=0)
            self._std[self._std == 0.0] = 1.0
            X = (X - self._mean) / self._std
        y = np.asarray(y, dtype=float)
        y = np.where(y > 0, 1.0, -1.0)
        n, d = X.shape
        rng = np.random.default_rng(self.seed)
        w = np.zeros(d)
        b = 0.0
        step = 0
        for _epoch in range(self.epochs):
            for i in rng.permutation(n):
                step += 1
                eta = 1.0 / (self.lam * step)
                margin = y[i] * (X[i] @ w + b)
                if margin < 1.0:
                    w = (1.0 - eta * self.lam) * w + eta * y[i] * X[i]
                    b += eta * y[i]
                else:
                    w = (1.0 - eta * self.lam) * w
        self.w, self.b = w, b
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.w is None:
            raise RuntimeError("model is not fitted")
        return self._prep(X) @ self.w + self.b

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(int)
