"""k-nearest-neighbour models (paper baselines for algorithm
identification and scale-out prediction)."""

from __future__ import annotations

from typing import Optional

import numpy as np


class _KNNBase:
    def __init__(self, k: int = 5, standardize: bool = True) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.standardize = standardize
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray):
        X = np.asarray(X, dtype=float)
        if self.standardize:
            self._mean = X.mean(axis=0)
            self._std = X.std(axis=0)
            self._std[self._std == 0.0] = 1.0
            X = (X - self._mean) / self._std
        self._X = X
        self._y = np.asarray(y)
        return self

    def _neighbors(self, X: np.ndarray) -> np.ndarray:
        assert self._X is not None
        X = np.asarray(X, dtype=float)
        if self.standardize:
            X = (X - self._mean) / self._std
        d2 = ((X[:, None, :] - self._X[None, :, :]) ** 2).sum(axis=2)
        k = min(self.k, self._X.shape[0])
        return np.argsort(d2, axis=1)[:, :k]


class KNNRegressor(_KNNBase):
    def predict(self, X: np.ndarray) -> np.ndarray:
        nbrs = self._neighbors(X)
        assert self._y is not None
        return self._y[nbrs].astype(float).mean(axis=1)


class KNNClassifier(_KNNBase):
    def predict(self, X: np.ndarray) -> np.ndarray:
        nbrs = self._neighbors(X)
        assert self._y is not None
        votes = self._y[nbrs]
        out = []
        for row in votes:
            values, counts = np.unique(row, return_counts=True)
            out.append(values[np.argmax(counts)])
        return np.asarray(out)
