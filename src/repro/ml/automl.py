"""A small AutoML pipeline search (the paper's TPOT stand-in).

TPOT "search[es] through different ML pipelines and hyperparameters";
we do the same over this library's model zoo with k-fold
cross-validation and a fixed candidate budget.  Like TPOT in the paper,
it tends to settle on random-forest pipelines for instruction
prediction and kNN for algorithm identification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.ml.forest import RandomForestRegressor
from repro.ml.gbdt import GBDTClassifier, GBDTRegressor
from repro.ml.knn import KNNClassifier, KNNRegressor
from repro.ml.metrics import accuracy, wmape
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


@dataclass
class _Candidate:
    name: str
    build: Callable[[], object]


def _kfold_indices(n: int, k: int, rng: np.random.Generator):
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        yield train, test


class _AutoMLBase:
    def __init__(self, n_folds: int = 3, seed: int = 0) -> None:
        self.n_folds = n_folds
        self.seed = seed
        self.best_name_: Optional[str] = None
        self.best_model_: Optional[object] = None
        self.leaderboard_: List[Tuple[str, float]] = []

    def _candidates(self) -> List[_Candidate]:
        raise NotImplementedError

    def _score(self, model, X_test, y_test) -> float:
        raise NotImplementedError

    def fit(self, X: np.ndarray, y: np.ndarray):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        rng = np.random.default_rng(self.seed)
        scores: List[Tuple[str, float]] = []
        candidates = self._candidates()
        for cand in candidates:
            fold_scores = []
            for train, test in _kfold_indices(len(y), self.n_folds, rng):
                model = cand.build()
                model.fit(X[train], y[train])
                fold_scores.append(self._score(model, X[test], y[test]))
            scores.append((cand.name, float(np.mean(fold_scores))))
        # Higher is better by convention; subclasses negate errors.
        self.leaderboard_ = sorted(scores, key=lambda item: -item[1])
        self.best_name_ = self.leaderboard_[0][0]
        best = next(c for c in candidates if c.name == self.best_name_)
        self.best_model_ = best.build()
        self.best_model_.fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.best_model_ is None:
            raise RuntimeError("model is not fitted")
        return self.best_model_.predict(np.asarray(X, dtype=float))


class AutoMLRegressor(_AutoMLBase):
    def _candidates(self) -> List[_Candidate]:
        seed = self.seed
        return [
            _Candidate(
                "random_forest_30",
                lambda: RandomForestRegressor(n_trees=30, max_depth=8, seed=seed),
            ),
            _Candidate(
                "random_forest_60",
                lambda: RandomForestRegressor(
                    n_trees=60, max_depth=10, max_features=0.7, seed=seed
                ),
            ),
            _Candidate(
                "gbdt_60", lambda: GBDTRegressor(n_rounds=60, seed=seed)
            ),
            _Candidate(
                "gbdt_shallow",
                lambda: GBDTRegressor(n_rounds=80, max_depth=2, seed=seed),
            ),
            _Candidate("knn_3", lambda: KNNRegressor(k=3)),
            _Candidate("knn_7", lambda: KNNRegressor(k=7)),
            _Candidate(
                "cart", lambda: DecisionTreeRegressor(max_depth=10, seed=seed)
            ),
        ]

    def _score(self, model, X_test, y_test) -> float:
        return -wmape(y_test, model.predict(X_test))


class AutoMLClassifier(_AutoMLBase):
    def _candidates(self) -> List[_Candidate]:
        seed = self.seed
        return [
            _Candidate("knn_3", lambda: KNNClassifier(k=3)),
            _Candidate("knn_5", lambda: KNNClassifier(k=5)),
            _Candidate(
                "gbdt", lambda: GBDTClassifier(n_rounds=40, seed=seed)
            ),
            _Candidate(
                "cart", lambda: DecisionTreeClassifier(max_depth=8, seed=seed)
            ),
        ]

    def _score(self, model, X_test, y_test) -> float:
        return accuracy(y_test, model.predict(X_test))
