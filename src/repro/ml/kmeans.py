"""K-means clustering (the paper's coalescing engine: "this is
achieved by a traditional K-means algorithm", Section 4.4).

k-means++ initialization, Lloyd iterations, deterministic under a seed.
Includes a silhouette-style model selection helper used to pick the
number of variable clusters automatically.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class KMeans:
    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 100,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.seed = seed
        self.centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: float = 0.0
        #: Lloyd iterations the last :meth:`fit` actually ran.
        self.n_iter_: int = 0

    def _init_centers(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding."""
        n = len(X)
        centers = [X[rng.integers(0, n)]]
        while len(centers) < self.n_clusters:
            d2 = np.min(
                ((X[:, None, :] - np.asarray(centers)[None]) ** 2).sum(axis=2),
                axis=1,
            )
            total = d2.sum()
            if total <= 0:
                centers.append(X[rng.integers(0, n)])
                continue
            probs = d2 / total
            centers.append(X[rng.choice(n, p=probs)])
        return np.asarray(centers)

    def fit(self, X: np.ndarray) -> "KMeans":
        X = np.asarray(X, dtype=float)
        if len(X) < self.n_clusters:
            raise ValueError("fewer samples than clusters")
        rng = np.random.default_rng(self.seed)
        centers = self._init_centers(X, rng)
        labels = np.zeros(len(X), dtype=int)
        self.n_iter_ = 0
        for _ in range(self.max_iter):
            self.n_iter_ += 1
            d2 = ((X[:, None, :] - centers[None]) ** 2).sum(axis=2)
            new_labels = np.argmin(d2, axis=1)
            if np.array_equal(new_labels, labels) and _ > 0:
                break
            labels = new_labels
            for k in range(self.n_clusters):
                members = X[labels == k]
                if len(members):
                    centers[k] = members.mean(axis=0)
        self.centers_ = centers
        self.labels_ = labels
        d2 = ((X[:, None, :] - centers[None]) ** 2).sum(axis=2)
        self.inertia_ = float(d2[np.arange(len(X)), labels].sum())
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.centers_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        d2 = ((X[:, None, :] - self.centers_[None]) ** 2).sum(axis=2)
        return np.argmin(d2, axis=1)


def silhouette_score(X: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient (used for choosing k)."""
    X = np.asarray(X, dtype=float)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        return 0.0
    n = len(X)
    dist = np.sqrt(((X[:, None, :] - X[None, :, :]) ** 2).sum(axis=2))
    scores = np.zeros(n)
    for i in range(n):
        same = labels == labels[i]
        same[i] = False
        a = dist[i, same].mean() if same.any() else 0.0
        b = np.inf
        for other in unique:
            if other == labels[i]:
                continue
            members = labels == other
            if members.any():
                b = min(b, dist[i, members].mean())
        if not np.isfinite(b):
            scores[i] = 0.0
        else:
            denom = max(a, b)
            scores[i] = (b - a) / denom if denom > 0 else 0.0
    return float(scores.mean())


def choose_k(
    X: np.ndarray, k_max: int, seed: int = 0
) -> Tuple[int, KMeans]:
    """Pick k in [2, k_max] maximizing silhouette; falls back to 1
    cluster when there are too few samples."""
    X = np.asarray(X, dtype=float)
    if len(X) < 3:
        model = KMeans(1, seed=seed).fit(X)
        return 1, model
    best_k, best_model, best_score = 1, None, -np.inf
    for k in range(2, min(k_max, len(X) - 1) + 1):
        model = KMeans(k, seed=seed).fit(X)
        score = silhouette_score(X, model.labels_)
        if score > best_score:
            best_k, best_model, best_score = k, model, score
    if best_model is None:
        best_model = KMeans(1, seed=seed).fit(X)
        best_k = 1
    return best_k, best_model


def choose_k_by_cutoff(
    X: np.ndarray, k_max: int, cutoff: float, seed: int = 0
) -> Tuple[int, KMeans]:
    """Pick the *smallest* k whose clusters are all tight: every member
    within ``cutoff`` of its center.

    This is the paper's Section-5.8 selection rule for coalescing
    clusters ("this has to use some cutoff threshold to determine some
    suitable inter-cluster distance"): small k keeps co-accessed
    variables together; the cutoff stops unrelated variables from being
    packed.
    """
    X = np.asarray(X, dtype=float)
    if len(X) == 0:
        raise ValueError("no samples")
    upper = min(k_max, len(X))
    chosen = None
    for k in range(1, upper + 1):
        model = KMeans(k, seed=seed).fit(X)
        assert model.centers_ is not None and model.labels_ is not None
        distances = np.linalg.norm(X - model.centers_[model.labels_], axis=1)
        if distances.max() <= cutoff:
            chosen = (k, model)
            break
    if chosen is None:
        chosen = (upper, KMeans(upper, seed=seed).fit(X))
    return chosen
