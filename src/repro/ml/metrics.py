"""Evaluation metrics.

Includes the six distribution-distance measures of the paper's Table 1
(Jensen-Shannon, Rényi, Bhattacharyya, cosine, Euclidean, variational),
the WMAPE used for instruction prediction (Section 5.2), classification
precision/recall (Section 5.3), MAE (Section 5.4), and top-k ranking
accuracy (Section 5.7).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

_EPS = 1e-12


def wmape(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Weighted mean absolute percentage error:
    ``sum|err| / sum|true|`` — robust to small denominators, which is
    why the paper reports it for per-block instruction counts."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    denom = np.abs(y_true).sum()
    if denom < _EPS:
        return 0.0 if np.abs(y_pred).sum() < _EPS else float("inf")
    return float(np.abs(y_true - y_pred).sum() / denom)


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    return float(np.abs(y_true - y_pred).mean())


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    return float((y_true == y_pred).mean())


def precision_recall(
    y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1
) -> Dict[str, float]:
    """Binary precision/recall (paper Section 5.3: TP/(TP+FP),
    TP/(TP+FN))."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    tp = int(np.sum((y_pred == positive) & (y_true == positive)))
    fp = int(np.sum((y_pred == positive) & (y_true != positive)))
    fn = int(np.sum((y_pred != positive) & (y_true == positive)))
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1, "tp": tp,
            "fp": fp, "fn": fn}


def top_k_accuracy(
    true_best: Sequence[int], ranked_lists: Sequence[Sequence[int]], k: int
) -> float:
    """Fraction of queries whose true-best item appears in the top-k of
    the predicted ranking (Figure 14a)."""
    hits = 0
    for best, ranking in zip(true_best, ranked_lists):
        if best in list(ranking)[:k]:
            hits += 1
    return hits / len(list(true_best)) if len(list(true_best)) else 0.0


# -- distribution distances (Table 1) ---------------------------------

def _normalize(p: np.ndarray) -> np.ndarray:
    p = np.asarray(p, dtype=float)
    p = np.clip(p, 0.0, None)
    total = p.sum()
    if total < _EPS:
        raise ValueError("distribution sums to zero")
    return p / total


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    p, q = _normalize(p), _normalize(q)
    mask = p > _EPS
    return float(np.sum(p[mask] * np.log(p[mask] / np.maximum(q[mask], _EPS))))


def jensen_shannon(p: np.ndarray, q: np.ndarray) -> float:
    p, q = _normalize(p), _normalize(q)
    m = 0.5 * (p + q)
    return 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m)


def renyi_divergence(p: np.ndarray, q: np.ndarray, alpha: float = 0.5) -> float:
    if alpha <= 0 or alpha == 1.0:
        raise ValueError("alpha must be positive and != 1")
    p, q = _normalize(p), _normalize(q)
    mask = (p > _EPS) | (q > _EPS)
    total = np.sum(
        np.power(np.maximum(p[mask], _EPS), alpha)
        * np.power(np.maximum(q[mask], _EPS), 1.0 - alpha)
    )
    return float(np.log(max(total, _EPS)) / (alpha - 1.0))


def bhattacharyya(p: np.ndarray, q: np.ndarray) -> float:
    p, q = _normalize(p), _normalize(q)
    coefficient = np.sum(np.sqrt(p * q))
    return float(-np.log(max(coefficient, _EPS)))


def cosine_distance(p: np.ndarray, q: np.ndarray) -> float:
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    denom = np.linalg.norm(p) * np.linalg.norm(q)
    if denom < _EPS:
        return 0.0
    return float(1.0 - np.dot(p, q) / denom)


def euclidean_distance(p: np.ndarray, q: np.ndarray) -> float:
    p, q = _normalize(p), _normalize(q)
    return float(np.linalg.norm(p - q))


def variational_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance, scaled as in the synthesis literature
    (L1 distance between the distributions)."""
    p, q = _normalize(p), _normalize(q)
    return float(np.abs(p - q).sum())


#: Names/metric functions matching Table 1's rows.
TABLE1_METRICS = {
    "Jensen-Shannon divergence": jensen_shannon,
    "Renyi divergence": renyi_divergence,
    "Bhattacharyya distance": bhattacharyya,
    "Cosine distance": cosine_distance,
    "Euclidean distance": euclidean_distance,
    "Variational distance": variational_distance,
}
