"""Random forest regression (bagged CART trees with feature
subsampling) — the pipeline TPOT settles on for instruction prediction
in the paper ("the best ML solution it suggested is an ML pipeline with
a random forest regression model", Section 5.2)."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.ml.tree import DecisionTreeRegressor


class RandomForestRegressor:
    def __init__(
        self,
        n_trees: int = 30,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        max_features: float = 0.5,
        seed: int = 0,
    ) -> None:
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees: List[DecisionTreeRegressor] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        rng = np.random.default_rng(self.seed)
        n = len(y)
        self.trees = []
        for t in range(self.n_trees):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=self.seed + 1000 + t,
            )
            tree.fit(X[idx], y[idx])
            self.trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees:
            raise RuntimeError("model is not fitted")
        return np.mean([t.predict(X) for t in self.trees], axis=0)
