"""LSTM + fully-connected regression head (paper Figure 6).

"The LSTM recurrently takes in LLVM instruction sequence encodings, and
outputs a hidden state ...; the information is then fed into a Fully
Connected (FC) layer for regression — i.e., predicting the number of
instructions."

Implementation: a single-layer LSTM with full BPTT and Adam, written
directly on numpy.  Targets are trained in ``log1p`` space (counts are
positive and heavy-tailed); predictions are clamped at zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

#: rows per inference slice.  Very large batches (the serve broker can
#: merge hundreds of concurrent requests) are processed in slices of
#: this many sequences so peak activation memory stays bounded; slicing
#: cannot change results because rows are independent.
INFER_CHUNK_ROWS = 2048


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


@dataclass
class _AdamState:
    m: Dict[str, np.ndarray]
    v: Dict[str, np.ndarray]
    t: int = 0


class LSTMRegressor:
    """Sequence regressor: one-hot instruction sequences -> counts."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int = 32,
        fc_dim: int = 32,
        lr: float = 5e-3,
        seed: int = 0,
    ) -> None:
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.fc_dim = fc_dim
        self.lr = lr
        rng = np.random.default_rng(seed)
        H, D, F = hidden_dim, input_dim, fc_dim
        scale_x = 1.0 / np.sqrt(D)
        scale_h = 1.0 / np.sqrt(H)
        self.params: Dict[str, np.ndarray] = {
            # Gate order: [input, forget, cell, output] stacked.
            "Wx": rng.normal(0.0, scale_x, size=(D, 4 * H)).astype(np.float64),
            "Wh": rng.normal(0.0, scale_h, size=(H, 4 * H)).astype(np.float64),
            "b": np.zeros(4 * H),
            # FC head sees [final hidden state, sequence length]: the
            # length feature relieves the recurrent state from having
            # to count raw positions across long blocks.
            "W1": rng.normal(0.0, scale_h, size=(H + 1, F)),
            "b1": np.zeros(F),
            "W2": rng.normal(0.0, 1.0 / np.sqrt(F), size=(F, 1)),
            "b2": np.zeros(1),
        }
        # Forget-gate bias init at 1.0 (standard practice).
        self.params["b"][H : 2 * H] = 1.0
        self._adam = _AdamState(
            m={k: np.zeros_like(p) for k, p in self.params.items()},
            v={k: np.zeros_like(p) for k, p in self.params.items()},
        )
        self.history: List[float] = []

    # -- forward -------------------------------------------------------
    def _forward(self, X: np.ndarray, mask: np.ndarray):
        """X: [B,T,D]; mask: [B,T].  Returns (pred[B], cache)."""
        B, T, _D = X.shape
        H = self.hidden_dim
        p = self.params
        h = np.zeros((B, H))
        c = np.zeros((B, H))
        caches = []
        for t in range(T):
            x_t = X[:, t, :]
            m_t = mask[:, t][:, None]
            z = x_t @ p["Wx"] + h @ p["Wh"] + p["b"]
            i = _sigmoid(z[:, :H])
            f = _sigmoid(z[:, H : 2 * H])
            g = np.tanh(z[:, 2 * H : 3 * H])
            o = _sigmoid(z[:, 3 * H :])
            c_new = f * c + i * g
            h_new = o * np.tanh(c_new)
            c_next = m_t * c_new + (1.0 - m_t) * c
            h_next = m_t * h_new + (1.0 - m_t) * h
            caches.append((x_t, h, c, i, f, g, o, c_new, m_t))
            h, c = h_next, c_next
        length = mask.sum(axis=1, keepdims=True) / max(T, 1)
        features = np.concatenate([h, length], axis=1)
        a1 = features @ p["W1"] + p["b1"]
        r1 = np.maximum(a1, 0.0)
        out = (r1 @ p["W2"] + p["b2"]).ravel()
        return out, (caches, features, a1, r1)

    def _infer_from_projections(
        self, Zx: np.ndarray, mask: np.ndarray, norm_len: int
    ) -> np.ndarray:
        """Inference-only recurrence: ``Zx[B, T_eff, 4H]`` holds the
        already-projected inputs (``x_t @ Wx`` for every timestep at
        once — one fused matmul or, for one-hot rows, an exact
        embedding gather), so the loop does a single ``[B,H]@[H,4H]``
        matmul per timestep and no BPTT caches are built.  ``mask`` is
        the *full* padded mask (its width may exceed ``Zx``'s T: fully
        masked tail timesteps carry h/c unchanged, so truncating them
        is exact).  ``norm_len`` is the padded width the length feature
        is normalized by — it must be the encoder's ``max_len``, not
        the truncated T, or truncation would change predictions.

        Results are independent of batch composition: the output
        projection is a per-row reduction (a width-1 matmul would
        dispatch to a GEMV whose accumulation order varies with B), and
        single-row batches are padded to two rows so every matmul takes
        the same GEMM path as larger batches.  This is what makes
        broker-merged, chunked, and per-request predictions
        bit-identical.

        Returns log-space predictions ``[B]``.
        """
        B, T_eff, _ = Zx.shape
        single = B == 1
        if single:
            Zx = np.concatenate([Zx, Zx], axis=0)
            mask = np.concatenate([mask, mask], axis=0)
            B = 2
        H = self.hidden_dim
        p = self.params
        Wh, b = p["Wh"], p["b"]
        h = np.zeros((B, H))
        c = np.zeros((B, H))
        for t in range(T_eff):
            z = Zx[:, t, :] + h @ Wh + b
            i = _sigmoid(z[:, :H])
            f = _sigmoid(z[:, H : 2 * H])
            g = np.tanh(z[:, 2 * H : 3 * H])
            o = _sigmoid(z[:, 3 * H :])
            c_new = f * c + i * g
            h_new = o * np.tanh(c_new)
            m_t = mask[:, t][:, None]
            c = m_t * c_new + (1.0 - m_t) * c
            h = m_t * h_new + (1.0 - m_t) * h
        length = mask.sum(axis=1, keepdims=True) / max(norm_len, 1)
        features = np.concatenate([h, length], axis=1)
        r1 = np.maximum(features @ p["W1"] + p["b1"], 0.0)
        out = (r1 * p["W2"].ravel()).sum(axis=1) + p["b2"].ravel()
        return out[:1] if single else out

    def _backward(self, X, mask, d_out, cache):
        B, T, _D = X.shape
        H = self.hidden_dim
        p = self.params
        caches, features, a1, r1 = cache
        grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        # FC head.
        grads["W2"] = r1.T @ d_out[:, None]
        grads["b2"] = d_out.sum(keepdims=True)
        d_r1 = d_out[:, None] @ p["W2"].T
        d_a1 = d_r1 * (a1 > 0.0)
        grads["W1"] = features.T @ d_a1
        grads["b1"] = d_a1.sum(axis=0)
        # The trailing length feature is an input, not a parameter.
        dh = (d_a1 @ p["W1"].T)[:, :H]
        dc = np.zeros((B, H))
        # BPTT.
        for t in range(T - 1, -1, -1):
            x_t, h_prev, c_prev, i, f, g, o, c_new, m_t = caches[t]
            dh_t = dh * m_t
            dc_t = dc * m_t
            dh_carry = dh * (1.0 - m_t)
            dc_carry = dc * (1.0 - m_t)
            tanh_c = np.tanh(c_new)
            do = dh_t * tanh_c
            dc_inner = dc_t + dh_t * o * (1.0 - tanh_c**2)
            di = dc_inner * g
            df = dc_inner * c_prev
            dg = dc_inner * i
            dz = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    dg * (1.0 - g**2),
                    do * o * (1.0 - o),
                ],
                axis=1,
            )
            grads["Wx"] += x_t.T @ dz
            grads["Wh"] += h_prev.T @ dz
            grads["b"] += dz.sum(axis=0)
            dh = dz @ p["Wh"].T + dh_carry
            dc = dc_inner * f + dc_carry
        return grads

    def _adam_step(self, grads: Dict[str, np.ndarray]) -> None:
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        self._adam.t += 1
        t = self._adam.t
        for key, grad in grads.items():
            np.clip(grad, -5.0, 5.0, out=grad)
            self._adam.m[key] = beta1 * self._adam.m[key] + (1 - beta1) * grad
            self._adam.v[key] = beta2 * self._adam.v[key] + (1 - beta2) * grad**2
            m_hat = self._adam.m[key] / (1 - beta1**t)
            v_hat = self._adam.v[key] / (1 - beta2**t)
            self.params[key] -= self.lr * m_hat / (np.sqrt(v_hat) + eps)

    # -- public API -------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        mask: np.ndarray,
        y: np.ndarray,
        epochs: int = 40,
        batch_size: int = 32,
        seed: int = 0,
        verbose: bool = False,
    ) -> "LSTMRegressor":
        """Train on sequences ``X`` with targets ``y`` (raw counts)."""
        rng = np.random.default_rng(seed)
        y_log = np.log1p(np.asarray(y, dtype=float))
        n = X.shape[0]
        for epoch in range(epochs):
            order = rng.permutation(n)
            losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                xb, mb, yb = X[idx], mask[idx], y_log[idx]
                pred, cache = self._forward(xb, mb)
                err = pred - yb
                losses.append(float(np.mean(err**2)))
                d_out = 2.0 * err / len(idx)
                grads = self._backward(xb, mb, d_out, cache)
                self._adam_step(grads)
            self.history.append(float(np.mean(losses)))
            if verbose:  # pragma: no cover - debugging aid
                print(f"epoch {epoch}: mse={self.history[-1]:.4f}")
        return self

    def predict(
        self,
        X: np.ndarray,
        mask: np.ndarray,
        chunk_rows: Optional[int] = None,
    ) -> np.ndarray:
        """Batched inference over dense (one-hot) sequences.

        Unlike the training forward pass this projects every timestep's
        input in one fused matmul, truncates the recurrence to the
        longest unmasked length in each slice, and processes at most
        ``chunk_rows`` sequences at a time (default
        :data:`INFER_CHUNK_ROWS`) to bound peak memory.  Rows are
        independent, so slicing and truncation cannot change results.
        """
        chunk_rows = INFER_CHUNK_ROWS if chunk_rows is None else chunk_rows
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        B, T, D = X.shape
        p = self.params
        out = np.empty(B)
        for start in range(0, B, chunk_rows):
            xb = X[start : start + chunk_rows]
            mb = mask[start : start + chunk_rows]
            t_eff = int(mb.sum(axis=1).max()) if len(mb) else 0
            Zx = (
                xb[:, :t_eff, :].reshape(len(xb) * t_eff, D) @ p["Wx"]
            ).reshape(len(xb), t_eff, 4 * self.hidden_dim)
            out[start : start + chunk_rows] = \
                self._infer_from_projections(Zx, mb, norm_len=T)
        return np.maximum(np.expm1(out), 0.0)

    def predict_ids(
        self,
        ids: np.ndarray,
        mask: np.ndarray,
        chunk_rows: Optional[int] = None,
    ) -> np.ndarray:
        """Batched inference over integer token ids ``[B, T]``.

        The input projection of a one-hot row is exactly one row of
        ``Wx``, so the fused matmul becomes an embedding gather —
        bit-identical to :meth:`predict` on the equivalent one-hot
        tensor (a one-hot dot product sums a single nonzero term) and
        much faster, because the dense ``[B, T, vocab]`` tensor is
        never materialized.
        """
        chunk_rows = INFER_CHUNK_ROWS if chunk_rows is None else chunk_rows
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        B, T = ids.shape
        Wx = self.params["Wx"]
        out = np.empty(B)
        for start in range(0, B, chunk_rows):
            ib = ids[start : start + chunk_rows]
            mb = mask[start : start + chunk_rows]
            t_eff = int(mb.sum(axis=1).max()) if len(mb) else 0
            Zx = Wx[ib[:, :t_eff]]
            out[start : start + chunk_rows] = \
                self._infer_from_projections(Zx, mb, norm_len=T)
        return np.maximum(np.expm1(out), 0.0)
