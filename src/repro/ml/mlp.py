"""Multi-layer perceptrons (the paper's "DNN" baseline)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class _MLPBase:
    def __init__(
        self,
        input_dim: int,
        hidden: Sequence[int] = (64, 32),
        output_dim: int = 1,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        dims = [input_dim, *hidden, output_dim]
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for d_in, d_out in zip(dims[:-1], dims[1:]):
            self.weights.append(
                rng.normal(0.0, np.sqrt(2.0 / d_in), size=(d_in, d_out))
            )
            self.biases.append(np.zeros(d_out))
        self.lr = lr
        self._adam_m = [
            (np.zeros_like(w), np.zeros_like(b))
            for w, b in zip(self.weights, self.biases)
        ]
        self._adam_v = [
            (np.zeros_like(w), np.zeros_like(b))
            for w, b in zip(self.weights, self.biases)
        ]
        self._t = 0
        self.history: List[float] = []

    def _forward(self, X: np.ndarray):
        activations = [X]
        pre = []
        for layer, (W, b) in enumerate(zip(self.weights, self.biases)):
            z = activations[-1] @ W + b
            pre.append(z)
            if layer < len(self.weights) - 1:
                activations.append(np.maximum(z, 0.0))
            else:
                activations.append(z)
        return activations, pre

    def _backward(self, activations, pre, d_out):
        grads = []
        delta = d_out
        for layer in range(len(self.weights) - 1, -1, -1):
            grads.append(
                (activations[layer].T @ delta, delta.sum(axis=0))
            )
            if layer > 0:
                delta = (delta @ self.weights[layer].T) * (pre[layer - 1] > 0.0)
        grads.reverse()
        return grads

    def _step(self, grads) -> None:
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        self._t += 1
        t = self._t
        for layer, (gw, gb) in enumerate(grads):
            mw, mb = self._adam_m[layer]
            vw, vb = self._adam_v[layer]
            mw = beta1 * mw + (1 - beta1) * gw
            vw = beta2 * vw + (1 - beta2) * gw**2
            mb = beta1 * mb + (1 - beta1) * gb
            vb = beta2 * vb + (1 - beta2) * gb**2
            self._adam_m[layer] = (mw, mb)
            self._adam_v[layer] = (vw, vb)
            self.weights[layer] -= (
                self.lr * (mw / (1 - beta1**t))
                / (np.sqrt(vw / (1 - beta2**t)) + eps)
            )
            self.biases[layer] -= (
                self.lr * (mb / (1 - beta1**t))
                / (np.sqrt(vb / (1 - beta2**t)) + eps)
            )

    def _train(
        self, X, y_matrix, loss_grad, epochs: int, batch_size: int, seed: int
    ) -> None:
        rng = np.random.default_rng(seed)
        n = X.shape[0]
        for _epoch in range(epochs):
            order = rng.permutation(n)
            losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                activations, pre = self._forward(X[idx])
                loss, d_out = loss_grad(activations[-1], y_matrix[idx])
                losses.append(loss)
                grads = self._backward(activations, pre, d_out)
                self._step(grads)
            self.history.append(float(np.mean(losses)))


class MLPRegressor(_MLPBase):
    """ReLU MLP trained with MSE in log1p space (count targets)."""

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 60,
        batch_size: int = 32,
        seed: int = 0,
    ) -> "MLPRegressor":
        y_log = np.log1p(np.asarray(y, dtype=float))[:, None]

        def loss_grad(pred, target):
            err = pred - target
            return float(np.mean(err**2)), 2.0 * err / len(err)

        self._train(np.asarray(X, float), y_log, loss_grad, epochs, batch_size, seed)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        activations, _ = self._forward(np.asarray(X, float))
        return np.maximum(np.expm1(activations[-1].ravel()), 0.0)


class MLPClassifier(_MLPBase):
    """Softmax MLP classifier."""

    def __init__(
        self,
        input_dim: int,
        n_classes: int,
        hidden: Sequence[int] = (64, 32),
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        super().__init__(input_dim, hidden, n_classes, lr, seed)
        self.n_classes = n_classes

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 60,
        batch_size: int = 32,
        seed: int = 0,
    ) -> "MLPClassifier":
        y = np.asarray(y, dtype=int)
        onehot = np.zeros((len(y), self.n_classes))
        onehot[np.arange(len(y)), y] = 1.0

        def loss_grad(logits, target):
            z = logits - logits.max(axis=1, keepdims=True)
            p = np.exp(z)
            p /= p.sum(axis=1, keepdims=True)
            loss = float(-np.mean(np.sum(target * np.log(p + 1e-12), axis=1)))
            return loss, (p - target) / len(target)

        self._train(np.asarray(X, float), onehot, loss_grad, epochs, batch_size, seed)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        activations, _ = self._forward(np.asarray(X, float))
        z = activations[-1] - activations[-1].max(axis=1, keepdims=True)
        p = np.exp(z)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1)
