"""Sequential Pattern Extraction (paper Section 4.1).

"Code features are extracted using the Sequential Pattern Extraction
(SPE) algorithm, where each feature is a subsequence of LLVM
instructions ... Feature extraction optimizes for ... high support [and]
high confidence."

We mine contiguous opcode n-grams (a practical SPE variant) from
labelled token sequences, keep those with support >= ``min_support``
among positive examples and confidence >= ``min_confidence`` against
negatives, and featurize new sequences by n-gram occurrence counts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

import numpy as np


@dataclass(frozen=True)
class Pattern:
    tokens: Tuple[str, ...]
    support: float
    confidence: float


def _ngrams(sequence: Sequence[str], n: int) -> Set[Tuple[str, ...]]:
    return {
        tuple(sequence[i : i + n]) for i in range(len(sequence) - n + 1)
    }


def _count_occurrences(sequence: Sequence[str], pattern: Tuple[str, ...]) -> int:
    n = len(pattern)
    return sum(
        1
        for i in range(len(sequence) - n + 1)
        if tuple(sequence[i : i + n]) == pattern
    )


class SequentialPatternExtractor:
    """Mines discriminative instruction subsequences."""

    def __init__(
        self,
        min_len: int = 2,
        max_len: int = 4,
        min_support: float = 0.5,
        min_confidence: float = 0.8,
        max_patterns: int = 64,
    ) -> None:
        self.min_len = min_len
        self.max_len = max_len
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.max_patterns = max_patterns
        self.patterns_: List[Pattern] = []

    def fit(
        self,
        sequences: Sequence[Sequence[str]],
        labels: Sequence[int],
    ) -> "SequentialPatternExtractor":
        """Mine patterns frequent in positive sequences (label 1) and
        rare in negatives (label 0)."""
        positives = [s for s, l in zip(sequences, labels) if l == 1]
        negatives = [s for s, l in zip(sequences, labels) if l == 0]
        if not positives:
            raise ValueError("need at least one positive example")

        candidates: Counter = Counter()
        for seq in positives:
            for n in range(self.min_len, self.max_len + 1):
                candidates.update(_ngrams(seq, n))

        patterns: List[Pattern] = []
        n_pos = len(positives)
        for pattern, pos_count in candidates.items():
            support = pos_count / n_pos
            if support < self.min_support:
                continue
            neg_count = sum(
                1 for seq in negatives if pattern in _ngrams(seq, len(pattern))
            )
            total = pos_count + neg_count
            confidence = pos_count / total if total else 1.0
            if confidence < self.min_confidence:
                continue
            patterns.append(Pattern(pattern, support, confidence))
        # Most discriminative first; longer patterns break ties.
        patterns.sort(
            key=lambda p: (-p.confidence, -p.support, -len(p.tokens), p.tokens)
        )
        self.patterns_ = patterns[: self.max_patterns]
        return self

    def transform(self, sequences: Sequence[Sequence[str]]) -> np.ndarray:
        """Occurrence-count feature vectors for the mined patterns."""
        if not self.patterns_:
            raise RuntimeError("extractor is not fitted or found no patterns")
        X = np.zeros((len(sequences), len(self.patterns_)), dtype=float)
        for i, seq in enumerate(sequences):
            seq = list(seq)
            for j, pattern in enumerate(self.patterns_):
                X[i, j] = _count_occurrences(seq, pattern.tokens)
        return X

    def fit_transform(
        self, sequences: Sequence[Sequence[str]], labels: Sequence[int]
    ) -> np.ndarray:
        return self.fit(sequences, labels).transform(sequences)
