"""Basic blocks: straight-line instruction sequences ended by a
terminator, matching the CFG node granularity Clara analyzes
(Section 3.1: "nodes are basic code blocks without branches or loops").
"""

from __future__ import annotations

from typing import Iterator, List, Optional, TYPE_CHECKING

from repro.nfir.instructions import Instruction

if TYPE_CHECKING:  # pragma: no cover
    from repro.nfir.function import Function


class BasicBlock:
    def __init__(self, name: str, parent: Optional["Function"] = None) -> None:
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    def append(self, instr: Instruction) -> Instruction:
        if self.is_terminated:
            raise ValueError(
                f"block {self.name} already terminated; cannot append {instr.opcode}"
            )
        instr.parent = self
        self.instructions.append(instr)
        return instr

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        return getattr(term, "successors", lambda: [])()

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def ref(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name} ({len(self.instructions)} instrs)>"
