"""Type system for NFIR.

Mirrors the small corner of LLVM's type system that network functions
need: fixed-width integers, pointers, named structs, and fixed-size
arrays.  Types are immutable and compared structurally, so they can be
used as dictionary keys and interned freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


class IRType:
    """Base class for all NFIR types."""

    def size_bytes(self) -> int:
        """Size of a value of this type in memory, in bytes."""
        raise NotImplementedError

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (StructType, ArrayType))


@dataclass(frozen=True)
class IntType(IRType):
    """Fixed-width integer type, e.g. ``i32``."""

    bits: int

    def __post_init__(self) -> None:
        if self.bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {self.bits}")

    def size_bytes(self) -> int:
        return max(1, self.bits // 8)

    def max_unsigned(self) -> int:
        return (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Wrap an arbitrary Python integer to this type's unsigned range."""
        return value & self.max_unsigned()

    def to_signed(self, value: int) -> int:
        """Interpret an unsigned ``value`` of this width as signed."""
        value = self.wrap(value)
        if value >= 1 << (self.bits - 1):
            return value - (1 << self.bits)
        return value

    def __str__(self) -> str:
        return f"i{self.bits}"


@dataclass(frozen=True)
class VoidType(IRType):
    def size_bytes(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class PointerType(IRType):
    """Pointer to a pointee type.  Pointers are 8 bytes (64-bit host)."""

    pointee: IRType

    def size_bytes(self) -> int:
        return 8

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(IRType):
    element: IRType
    count: int

    def size_bytes(self) -> int:
        return self.element.size_bytes() * self.count

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


@dataclass(frozen=True)
class StructType(IRType):
    """A named struct with ordered, named fields.

    Layout is packed (no padding): SmartNIC firmware conventionally uses
    packed layouts, and the memory-coalescing analysis (paper Section
    4.4) reasons about adjacency in exactly these terms.
    """

    name: str
    fields: Tuple[Tuple[str, IRType], ...] = field(default_factory=tuple)

    def size_bytes(self) -> int:
        return sum(t.size_bytes() for _, t in self.fields)

    def field_index(self, field_name: str) -> int:
        for i, (fname, _) in enumerate(self.fields):
            if fname == field_name:
                return i
        raise KeyError(f"struct {self.name} has no field {field_name!r}")

    def field_type(self, field_name: str) -> IRType:
        return self.fields[self.field_index(field_name)][1]

    def field_offset(self, field_name: str) -> int:
        """Byte offset of a field within the packed struct layout."""
        offset = 0
        for fname, ftype in self.fields:
            if fname == field_name:
                return offset
            offset += ftype.size_bytes()
        raise KeyError(f"struct {self.name} has no field {field_name!r}")

    def __str__(self) -> str:
        return f"%struct.{self.name}"


# Interned singletons for the common integer widths.
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
VOID = VoidType()


def int_type(bits: int) -> IntType:
    """Return the interned integer type of the given width."""
    return {1: I1, 8: I8, 16: I16, 32: I32, 64: I64}[bits]
