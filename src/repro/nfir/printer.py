"""Textual printer for NFIR modules.

The format is LLVM-flavoured and round-trips exactly through
:func:`repro.nfir.parser.parse_module`, which the test suite checks by
property.  Printed modules are also what the ML encoding layer consumes
(one instruction per "word", see :mod:`repro.ml.encoding`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.nfir.block import BasicBlock
from repro.nfir.function import Function, GlobalVariable, Module
from repro.nfir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.nfir.types import ArrayType, IRType, PointerType, StructType
from repro.nfir.values import Constant, Value


def type_str(type_: IRType) -> str:
    return str(type_)


def _operand(value: Value) -> str:
    if isinstance(value, Constant):
        return value.ref()  # integer literal or "null"
    return value.ref()


def _typed_operand(value: Value) -> str:
    return f"{type_str(value.type)} {_operand(value)}"


def print_instruction(instr: Instruction) -> str:
    """Render one instruction as a single line (no indentation)."""
    if isinstance(instr, BinaryOp):
        return (
            f"{instr.ref()} = {instr.opcode} {type_str(instr.type)} "
            f"{_operand(instr.lhs)}, {_operand(instr.rhs)}"
        )
    if isinstance(instr, ICmp):
        return (
            f"{instr.ref()} = icmp {instr.predicate} {type_str(instr.lhs.type)} "
            f"{_operand(instr.lhs)}, {_operand(instr.rhs)}"
        )
    if isinstance(instr, Select):
        return (
            f"{instr.ref()} = select {_typed_operand(instr.cond)}, "
            f"{_typed_operand(instr.if_true)}, {_typed_operand(instr.if_false)}"
        )
    if isinstance(instr, Cast):
        return (
            f"{instr.ref()} = {instr.opcode} {_typed_operand(instr.value)} "
            f"to {type_str(instr.type)}"
        )
    if isinstance(instr, Alloca):
        return f"{instr.ref()} = alloca {type_str(instr.allocated_type)}"
    if isinstance(instr, Load):
        return (
            f"{instr.ref()} = load {type_str(instr.type)}, "
            f"{type_str(instr.ptr.type)} {_operand(instr.ptr)}"
        )
    if isinstance(instr, Store):
        return (
            f"store {_typed_operand(instr.value)}, "
            f"{type_str(instr.ptr.type)} {_operand(instr.ptr)}"
        )
    if isinstance(instr, GEP):
        parts = [f"{type_str(instr.base.type)} {_operand(instr.base)}"]
        for idx in instr.indices:
            if isinstance(idx, str):
                parts.append(f".{idx}")
            else:
                parts.append(_typed_operand(idx))
        return f"{instr.ref()} = getelementptr {', '.join(parts)}"
    if isinstance(instr, Call):
        args = ", ".join(_typed_operand(a) for a in instr.args)
        call = f"call {type_str(instr.type)} @{instr.callee}({args}) !{instr.kind}"
        if instr.produces_value:
            return f"{instr.ref()} = {call}"
        return call
    if isinstance(instr, Br):
        return f"br label {instr.target.ref()}"
    if isinstance(instr, CondBr):
        return (
            f"br i1 {_operand(instr.cond)}, label {instr.if_true.ref()}, "
            f"label {instr.if_false.ref()}"
        )
    if isinstance(instr, Ret):
        if instr.value is None:
            return "ret void"
        return f"ret {_typed_operand(instr.value)}"
    if isinstance(instr, Phi):
        arms = ", ".join(
            f"[ {_operand(v)}, {b.ref()} ]" for v, b in instr.incomings
        )
        return f"{instr.ref()} = phi {type_str(instr.type)} {arms}"
    raise TypeError(f"cannot print instruction {instr!r}")


def _print_block(block: BasicBlock) -> List[str]:
    lines = [f"{block.name}:"]
    lines.extend(f"  {print_instruction(i)}" for i in block.instructions)
    return lines


def print_function(function: Function) -> str:
    args = ", ".join(f"{type_str(a.type)} {a.ref()}" for a in function.args)
    attr = " !api" if function.is_api else ""
    header = f"define {type_str(function.ret_type)} @{function.name}({args}){attr} {{"
    lines = [header]
    for block in function.blocks:
        lines.extend(_print_block(block))
    lines.append("}")
    return "\n".join(lines)


def _collect_structs(module: Module) -> Dict[str, StructType]:
    """Find every struct type reachable from globals and instructions.

    Returned in dependency postorder (field structs before the structs
    that contain them) so a single forward pass can re-parse them.
    """
    found: Dict[str, StructType] = {}

    def visit(type_: IRType) -> None:
        if isinstance(type_, StructType):
            if type_.name not in found:
                for _, ftype in type_.fields:
                    visit(ftype)
                found[type_.name] = type_
        elif isinstance(type_, PointerType):
            visit(type_.pointee)
        elif isinstance(type_, ArrayType):
            visit(type_.element)

    for g in module.globals.values():
        visit(g.value_type)
    for fn in module.functions.values():
        for arg in fn.args:
            visit(arg.type)
        visit(fn.ret_type)
        for instr in fn.instructions():
            visit(instr.type)
            if isinstance(instr, Alloca):
                visit(instr.allocated_type)
            for op in instr.operands:
                visit(op.type)
    return found


def _print_global(g: GlobalVariable) -> str:
    return (
        f"global @{g.name} : {type_str(g.value_type)} kind={g.kind} "
        f"entries={g.entries} size={g.size_bytes}"
    )


def print_module(module: Module) -> str:
    lines = [f'module "{module.name}"', ""]
    structs = _collect_structs(module)
    for name in structs:
        st = structs[name]
        fields = ", ".join(f"{fn}: {type_str(ft)}" for fn, ft in st.fields)
        lines.append(f"struct %struct.{name} = {{ {fields} }}")
    if structs:
        lines.append("")
    for gname in sorted(module.globals):
        lines.append(_print_global(module.globals[gname]))
    if module.globals:
        lines.append("")
    for fname, fn in module.functions.items():
        lines.append(print_function(fn))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
