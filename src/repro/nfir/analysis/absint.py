"""Abstract interpretation over NFIR: the interval (value-range) domain.

A flow-sensitive abstract interpreter built on the generic worklist
solver (:func:`~repro.nfir.analysis.dataflow.solve`).  Every integer
SSA value and every scalar stack slot is mapped to an unsigned interval
``[lo, hi]`` at block granularity, with three refinements that make the
domain useful for offload lint proofs:

* **branch refinement** — along each CondBr edge the compared operands
  (and, when an operand is a whole-slot load, the slot itself) are
  narrowed by the branch condition, so ``n = min(n, 64)`` clamps
  propagate (:meth:`_IntervalProblem.edge_transfer`);
* **widening** — every block widens its output against its previous
  output once it has been visited a few times, so the fixpoint
  terminates on arbitrary CFGs (including irreducible ones, which have
  cycles through no natural-loop header);
* **trip-count bounds** — loop bounds are *not* read off the widened
  counter range (widening destroys it) but re-derived per loop from the
  induction variable's step, its initial interval, and the bound's
  interval at the loop entry (:func:`loop_trip_bounds`).

The encoding trick: the solver only speaks frozensets with union or
intersection meets, so an abstract environment travels as a frozenset
of ``(value_id, lo, hi)`` facts.  Union accumulates facts from
predecessors; the transfer function normalizes by hull-joining facts
per value, which is exactly the interval join.  A value with no fact is
*unconstrained* (type-based top), so dropping facts is always sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.nfir.analysis.dataflow import (
    DataflowProblem,
    DataflowResult,
    FORWARD,
    slot_of,
    solve,
)
from repro.nfir.analysis.dominance import DominatorTree
from repro.nfir.block import BasicBlock
from repro.nfir.function import Function
from repro.nfir.instructions import (
    Alloca,
    BinaryOp,
    Call,
    Cast,
    CondBr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Select,
    Store,
)
from repro.nfir.types import IntType
from repro.nfir.values import Argument, Constant, Value

__all__ = [
    "Interval",
    "IntervalAnalysis",
    "LoopBound",
    "interval_binary",
    "interval_icmp",
    "loop_trip_bounds",
]


@dataclass(frozen=True)
class Interval:
    """An inclusive unsigned range ``[lo, hi]`` (never empty)."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.lo > self.hi:
            raise ValueError(f"bad interval [{self.lo}, {self.hi}]")

    @classmethod
    def top(cls, type_: IntType) -> "Interval":
        return cls(0, type_.max_unsigned())

    @classmethod
    def const(cls, value: int) -> "Interval":
        return cls(value, value)

    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi

    @property
    def width(self) -> int:
        """Number of values the interval contains."""
        return self.hi - self.lo + 1

    def is_top(self, type_: IntType) -> bool:
        return self.lo == 0 and self.hi >= type_.max_unsigned()

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> Optional["Interval"]:
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def widen(self, newer: "Interval", max_unsigned: int) -> "Interval":
        """Classic interval widening: an endpoint that moved since the
        previous iterate jumps straight to its type bound, so chains of
        iterates have length at most two per value."""
        lo = self.lo if newer.lo >= self.lo else 0
        hi = self.hi if newer.hi <= self.hi else max_unsigned
        return Interval(lo, hi)

    def signed_nonnegative(self, type_: IntType) -> bool:
        """Whether every member reads the same under signed and
        unsigned interpretation (fits in ``bits - 1``)."""
        return self.hi < (1 << (type_.bits - 1))

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


def _bit_ceil_mask(value: int) -> int:
    """Smallest ``2**k - 1`` covering ``value``."""
    return (1 << value.bit_length()) - 1


def interval_binary(
    opcode: str, type_: IntType, a: Interval, b: Interval
) -> Interval:
    """Abstract transfer of :func:`~repro.nfir.instructions
    .evaluate_binary` — any result that could wrap degrades to top, so
    the concrete unsigned-wrapped semantics are always contained."""
    top = Interval.top(type_)
    mask = type_.max_unsigned()
    bits = type_.bits
    if opcode == "add":
        hi = a.hi + b.hi
        return Interval(a.lo + b.lo, hi) if hi <= mask else top
    if opcode == "sub":
        lo = a.lo - b.hi
        return Interval(lo, a.hi - b.lo) if lo >= 0 else top
    if opcode == "mul":
        hi = a.hi * b.hi
        return Interval(a.lo * b.lo, hi) if hi <= mask else top
    if opcode == "udiv":
        # Division by zero yields 0 (the NFP software-divide contract).
        hi = a.hi // max(b.lo, 1)
        lo = a.lo // b.hi if b.lo > 0 else 0
        return Interval(lo, hi)
    if opcode == "urem":
        hi = min(a.hi, b.hi - 1) if b.hi > 0 else 0
        return Interval(0, max(hi, 0))
    if opcode == "and":
        return Interval(0, min(a.hi, b.hi))
    if opcode == "or":
        return Interval(
            max(a.lo, b.lo), _bit_ceil_mask(max(a.hi, b.hi))
        )
    if opcode == "xor":
        return Interval(0, _bit_ceil_mask(max(a.hi, b.hi)))
    if opcode == "shl":
        if b.hi >= bits:  # shift amount is taken mod bits
            return top
        hi = a.hi << b.hi
        return Interval(a.lo << b.lo, hi) if hi <= mask else top
    if opcode == "lshr":
        if b.hi >= bits:
            return top
        return Interval(a.lo >> b.hi, a.hi >> b.lo)
    if opcode == "ashr":
        if b.hi < bits and a.signed_nonnegative(type_):
            return Interval(a.lo >> b.hi, a.hi >> b.lo)
        return top
    if opcode in ("sdiv", "srem"):
        if a.signed_nonnegative(type_) and b.signed_nonnegative(type_):
            return interval_binary(
                "udiv" if opcode == "sdiv" else "urem", type_, a, b
            )
        return top
    return top


#: unsigned counterpart of each signed predicate (valid only when both
#: operand intervals are signed-nonnegative).
_SIGNED_TO_UNSIGNED = {"slt": "ult", "sle": "ule", "sgt": "ugt", "sge": "uge"}

#: predicate that holds on the false edge of a CondBr.
_NEGATED = {
    "eq": "ne", "ne": "eq",
    "ult": "uge", "uge": "ult", "ule": "ugt", "ugt": "ule",
    "slt": "sge", "sge": "slt", "sle": "sgt", "sgt": "sle",
}

#: predicate seen from the right operand's side (a P b == b mirror(P) a).
_MIRRORED = {
    "eq": "eq", "ne": "ne",
    "ult": "ugt", "ugt": "ult", "ule": "uge", "uge": "ule",
    "slt": "sgt", "sgt": "slt", "sle": "sge", "sge": "sle",
}


def _unsigned_predicate(
    predicate: str, type_: IntType, a: Interval, b: Interval
) -> Optional[str]:
    """Reduce a predicate to its unsigned form, or ``None`` when the
    operand ranges straddle the sign boundary."""
    if predicate in _SIGNED_TO_UNSIGNED:
        if a.signed_nonnegative(type_) and b.signed_nonnegative(type_):
            return _SIGNED_TO_UNSIGNED[predicate]
        return None
    return predicate


def interval_icmp(
    predicate: str, type_: IntType, a: Interval, b: Interval
) -> Optional[int]:
    """Decide a comparison from the operand ranges: 1 (always true),
    0 (always false), or ``None`` (both outcomes possible)."""
    predicate = _unsigned_predicate(predicate, type_, a, b)
    if predicate is None:
        return None
    if predicate == "eq":
        if a.is_constant and b.is_constant and a.lo == b.lo:
            return 1
        return 0 if a.meet(b) is None else None
    if predicate == "ne":
        decided = interval_icmp("eq", type_, a, b)
        return None if decided is None else 1 - decided
    if predicate in ("ugt", "uge"):
        a, b = b, a
        predicate = _MIRRORED[predicate]
    if predicate == "ult":
        if a.hi < b.lo:
            return 1
        if a.lo >= b.hi:
            return 0
        return None
    if predicate == "ule":
        if a.hi <= b.lo:
            return 1
        if a.lo > b.hi:
            return 0
        return None
    return None


def _refine_by_predicate(
    predicate: str, type_: IntType, a: Interval, b: Interval
) -> Tuple[Interval, Interval]:
    """Narrow ``(a, b)`` assuming ``a predicate b`` holds.  On a
    contradiction (the edge is infeasible) the inputs are returned
    unchanged — conservative, never empty."""
    predicate = _unsigned_predicate(predicate, type_, a, b)
    if predicate is None:
        return a, b
    if predicate == "eq":
        both = a.meet(b)
        return (both, both) if both is not None else (a, b)
    if predicate == "ne":
        new_a, new_b = a, b
        if b.is_constant and not a.is_constant:
            if b.lo == a.lo:
                new_a = Interval(a.lo + 1, a.hi)
            elif b.lo == a.hi:
                new_a = Interval(a.lo, a.hi - 1)
        if a.is_constant and not b.is_constant:
            if a.lo == b.lo:
                new_b = Interval(b.lo + 1, b.hi)
            elif a.lo == b.hi:
                new_b = Interval(b.lo, b.hi - 1)
        return new_a, new_b
    if predicate in ("ugt", "uge"):
        b, a = _refine_by_predicate(_MIRRORED[predicate], type_, b, a)
        return a, b
    if predicate == "ult":
        if b.hi == 0 or a.lo + 1 > type_.max_unsigned():
            return a, b  # infeasible
        new_a = a.meet(Interval(0, b.hi - 1))
        new_b = b.meet(Interval(min(a.lo + 1, type_.max_unsigned()),
                                type_.max_unsigned()))
        return new_a or a, new_b or b
    if predicate == "ule":
        new_a = a.meet(Interval(0, b.hi))
        new_b = b.meet(Interval(a.lo, type_.max_unsigned()))
        return new_a or a, new_b or b
    return a, b


def _int_type(value: Value) -> Optional[IntType]:
    type_ = getattr(value, "type", None)
    return type_ if isinstance(type_, IntType) else None


# ---------------------------------------------------------------------------
# The dataflow problem.
# ---------------------------------------------------------------------------

#: abstract environment: value id -> interval.
Env = Dict[int, Interval]


class _IntervalProblem(DataflowProblem):
    """Forward/union instance of the interval domain over fact sets.

    The problem instance is stateful (per-block visit counts and
    previous outputs drive widening), so every :func:`solve` call needs
    a fresh instance.
    """

    direction = FORWARD
    meet = "union"

    #: widening kicks in once a block has been evaluated this often —
    #: long enough to let short chains converge exactly, short enough
    #: to keep worst-case visits linear in practice.
    WIDEN_DELAY = 3

    def __init__(self, function: Function) -> None:
        self.function = function
        self.objects: Dict[int, Value] = {}
        self._visits: Dict[str, int] = {}
        self._prev_out: Dict[str, Env] = {}

    # -- fact-set plumbing ---------------------------------------------
    def _env_of(self, facts: FrozenSet) -> Env:
        env: Env = {}
        for key, lo, hi in facts:
            iv = Interval(lo, hi)
            prev = env.get(key)
            env[key] = iv if prev is None else prev.join(iv)
        return env

    def _facts_of(self, env: Env) -> FrozenSet:
        return frozenset((key, iv.lo, iv.hi) for key, iv in env.items())

    def _key(self, value: Value) -> int:
        self.objects[id(value)] = value
        return id(value)

    # -- evaluation ----------------------------------------------------
    def value_interval(self, value: Value, env: Env) -> Optional[Interval]:
        """The interval of an integer value under ``env`` (``None`` for
        non-integer values)."""
        type_ = _int_type(value)
        if type_ is None:
            return None
        if isinstance(value, Constant):
            return Interval.const(type_.wrap(value.value))
        known = env.get(id(value))
        if known is not None:
            capped = known.meet(Interval.top(type_))
            return capped if capped is not None else Interval.top(type_)
        return Interval.top(type_)

    def _step(self, instr: Instruction, env: Env) -> None:
        """Update ``env`` in place across one instruction."""
        if isinstance(instr, Store):
            slot = slot_of(instr.ptr)
            if slot is None:
                return
            if instr.ptr is slot and _int_type(instr.value) is not None:
                iv = self.value_interval(instr.value, env)
                if iv is not None:
                    env[self._key(slot)] = iv
                    return
            # Partial or untyped store: drop whatever we knew.
            env.pop(id(slot), None)
            return
        type_ = _int_type(instr)
        if type_ is None:
            return
        iv: Optional[Interval] = None
        if isinstance(instr, Load):
            if isinstance(instr.ptr, Alloca):
                iv = env.get(id(instr.ptr))
            # Loads through GEPs (header fields, array elements) and
            # from globals are unconstrained: type-based top captures
            # exactly the header-field range (load i8 -> [0, 255]).
        elif isinstance(instr, BinaryOp):
            a = self.value_interval(instr.lhs, env)
            b = self.value_interval(instr.rhs, env)
            if a is not None and b is not None:
                iv = interval_binary(instr.opcode, type_, a, b)
        elif isinstance(instr, ICmp):
            operand_type = _int_type(instr.lhs)
            if operand_type is not None:
                a = self.value_interval(instr.lhs, env)
                b = self.value_interval(instr.rhs, env)
                if a is not None and b is not None:
                    decided = interval_icmp(
                        instr.predicate, operand_type, a, b
                    )
                    if decided is not None:
                        iv = Interval.const(decided)
        elif isinstance(instr, Cast):
            iv = self._cast_interval(instr, type_, env)
        elif isinstance(instr, Select):
            a = self.value_interval(instr.if_true, env)
            b = self.value_interval(instr.if_false, env)
            cond = self.value_interval(instr.cond, env)
            if cond is not None and cond.is_constant:
                iv = a if cond.lo else b
            elif a is not None and b is not None:
                iv = a.join(b)
        elif isinstance(instr, Phi):
            joined: Optional[Interval] = None
            for value, _pred in instr.incomings:
                part = self.value_interval(value, env)
                if part is None:
                    joined = None
                    break
                joined = part if joined is None else joined.join(part)
            iv = joined
        elif isinstance(instr, Call):
            iv = None  # unknown result: top
        if iv is not None and not iv.is_top(type_):
            capped = iv.meet(Interval.top(type_))
            if capped is not None:
                env[self._key(instr)] = capped
                return
        env.pop(id(instr), None)

    def _cast_interval(
        self, instr: Cast, type_: IntType, env: Env
    ) -> Optional[Interval]:
        source_type = _int_type(instr.value)
        if source_type is None:
            return None
        iv = self.value_interval(instr.value, env)
        if iv is None:
            return None
        if instr.opcode == "zext":
            return iv
        if instr.opcode == "sext":
            return iv if iv.signed_nonnegative(source_type) else None
        if instr.opcode == "trunc":
            return iv if iv.hi <= type_.max_unsigned() else None
        if instr.opcode == "bitcast" and source_type == type_:
            return iv
        return None

    # -- solver hooks --------------------------------------------------
    def transfer(self, block: BasicBlock, value: FrozenSet) -> FrozenSet:
        env = self._env_of(value)
        for instr in block.instructions:
            self._step(instr, env)
        visits = self._visits.get(block.name, 0) + 1
        self._visits[block.name] = visits
        if visits > self.WIDEN_DELAY:
            previous = self._prev_out.get(block.name, {})
            for key, iv in list(env.items()):
                prev = previous.get(key)
                if prev is not None and prev != iv:
                    obj = self.objects.get(key)
                    type_ = _int_type(obj) if obj is not None else None
                    limit = (
                        type_.max_unsigned() if type_ is not None
                        else (1 << 64) - 1
                    )
                    env[key] = prev.widen(iv, limit)
        self._prev_out[block.name] = dict(env)
        return self._facts_of(env)

    def edge_transfer(
        self, source: BasicBlock, dest: BasicBlock, value: FrozenSet
    ) -> FrozenSet:
        term = source.terminator
        if not isinstance(term, CondBr) or term.if_true is term.if_false:
            return value
        cond = term.cond
        if not isinstance(cond, ICmp):
            return value
        operand_type = _int_type(cond.lhs)
        if operand_type is None:
            return value
        taken = dest is term.if_true
        predicate = cond.predicate if taken else _NEGATED[cond.predicate]
        env = self._env_of(value)
        a = self.value_interval(cond.lhs, env)
        b = self.value_interval(cond.rhs, env)
        if a is None or b is None:
            return value
        new_a, new_b = _refine_by_predicate(predicate, operand_type, a, b)
        self._assign_refined(cond.lhs, new_a, source, env)
        self._assign_refined(cond.rhs, new_b, source, env)
        env[self._key(cond)] = Interval.const(1 if taken else 0)
        return self._facts_of(env)

    def _assign_refined(
        self, operand: Value, iv: Interval, source: BasicBlock, env: Env
    ) -> None:
        if isinstance(operand, Constant) or not isinstance(
            operand, Instruction
        ):
            return
        env[self._key(operand)] = iv
        # When the operand is a whole-slot load and the slot is not
        # overwritten between the load and the branch, the slot itself
        # carries the refined range into the successor (this is what
        # makes `if (n > 64) n = 64;` clamp the slot).
        if isinstance(operand, Load) and isinstance(operand.ptr, Alloca):
            if operand.parent is source and not self._stored_after(
                operand, operand.ptr, source
            ):
                current = env.get(id(operand.ptr))
                refined = iv if current is None else (
                    current.meet(iv) or iv
                )
                env[self._key(operand.ptr)] = refined

    @staticmethod
    def _stored_after(
        load: Load, slot: Alloca, block: BasicBlock
    ) -> bool:
        seen_load = False
        for instr in block.instructions:
            if instr is load:
                seen_load = True
            elif seen_load and isinstance(instr, Store):
                if slot_of(instr.ptr) is slot:
                    return True
        return False


class IntervalAnalysis:
    """The solved interval fixpoint for one function.

    ``env_in``/``env_out`` give the abstract environment at block
    boundaries keyed by :class:`Value` (SSA values and allocas);
    :meth:`eval_block` replays the block to per-instruction precision.
    Values without an entry are unconstrained (type-based top —
    :meth:`interval_of` applies that default).
    """

    def __init__(self, function: Function) -> None:
        self.function = function
        self._problem = _IntervalProblem(function)
        self._result: DataflowResult = solve(function, self._problem)

    def _env(self, facts: FrozenSet) -> Dict[Value, Interval]:
        raw = self._problem._env_of(facts)
        return {
            self._problem.objects[key]: iv
            for key, iv in raw.items()
            if key in self._problem.objects
        }

    def env_in(self, block_name: str) -> Dict[Value, Interval]:
        return self._env(self._result.in_sets.get(block_name, frozenset()))

    def env_out(self, block_name: str) -> Dict[Value, Interval]:
        return self._env(self._result.out_sets.get(block_name, frozenset()))

    def interval_of(
        self, value: Value, env: Dict[Value, Interval]
    ) -> Optional[Interval]:
        """The interval of ``value`` under an ``env_in``/``env_out``
        environment, defaulting to type-based top (``None`` for
        non-integer values)."""
        raw = {id(v): iv for v, iv in env.items()}
        return self._problem.value_interval(value, raw)

    def eval_block(self, block: BasicBlock) -> Dict[Value, Interval]:
        """Per-instruction intervals: replay the transfer over the
        block from its entry environment and record each instruction's
        interval *at its program point* (plus final slot states)."""
        env = dict(self._problem._env_of(
            self._result.in_sets.get(block.name, frozenset())
        ))
        out: Dict[Value, Interval] = {}
        for instr in block.instructions:
            self._problem._step(instr, env)
            if isinstance(instr, CondBr):
                iv = self._problem.value_interval(instr.cond, env)
                if iv is not None:
                    out[instr.cond] = iv
            elif instr.produces_value:
                iv = env.get(id(instr))
                if iv is not None:
                    out[instr] = iv
        return out

    def walk(self, block: BasicBlock):
        """Yield ``(instr, lookup)`` pairs in program order, where
        ``lookup(value)`` is the interval of a value *immediately
        before* ``instr`` executes.  The lookup closes over a mutating
        environment: call it while handling the yielded pair, not
        after advancing the generator."""
        env = dict(self._problem._env_of(
            self._result.in_sets.get(block.name, frozenset())
        ))

        def lookup(value: Value) -> Optional[Interval]:
            return self._problem.value_interval(value, env)

        for instr in block.instructions:
            yield instr, lookup
            self._problem._step(instr, env)

    def edge_env(
        self, source: BasicBlock, dest: BasicBlock
    ) -> Dict[Value, Interval]:
        """The environment flowing along one CFG edge (the source's out
        refined by the branch condition)."""
        facts = self._problem.edge_transfer(
            source, dest,
            self._result.out_sets.get(source.name, frozenset()),
        )
        return self._env(facts)


# ---------------------------------------------------------------------------
# Loop trip-count bounds.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LoopBound:
    """A proven worst-case trip count for one natural loop."""

    header: str
    trip_max: int
    counter: str  #: display ref of the induction variable
    reason: str   #: one-line proof sketch for diagnostics


def _exiting_branches(
    function: Function, body: Set[str]
) -> List[Tuple[BasicBlock, CondBr]]:
    out = []
    for block in function.blocks:
        if block.name not in body:
            continue
        term = block.terminator
        if isinstance(term, CondBr) and any(
            s.name not in body for s in term.successors()
        ):
            out.append((block, term))
    return out


def _step_constant(
    counter: Value, body: Set[str], function: Function
) -> Optional[Tuple[int, Value]]:
    """The signed per-iteration step of an induction variable, plus
    the underlying storage (the alloca slot, or the phi itself).
    Requires every in-loop update to step by the same-direction
    constant; returns the smallest magnitude (worst case for bounds).
    """

    def step_of(value: Value, base_slot=None, base_phi=None) -> Optional[int]:
        if not isinstance(value, BinaryOp) or value.opcode not in (
            "add", "sub"
        ):
            return None
        const = (
            value.rhs if isinstance(value.rhs, Constant)
            else value.lhs if isinstance(value.lhs, Constant)
            else None
        )
        if const is None:
            return None
        other = value.lhs if const is value.rhs else value.rhs
        if base_phi is not None:
            if other is not base_phi:
                return None
        elif not (
            isinstance(other, Load) and slot_of(other.ptr) is base_slot
        ):
            return None
        if value.opcode == "sub" and const is value.lhs:
            return None  # const - counter is not a step
        magnitude = const.value
        return magnitude if value.opcode == "add" else -magnitude

    steps: List[int] = []
    if isinstance(counter, Load):
        slot = slot_of(counter.ptr)
        if slot is None:
            return None
        stores = [
            i for i in function.instructions()
            if isinstance(i, Store) and slot_of(i.ptr) is slot
            and i.parent is not None and i.parent.name in body
        ]
        if not stores:
            return None
        for store in stores:
            step = step_of(store.value, base_slot=slot)
            if step is None:
                return None
            steps.append(step)
        storage: Value = slot
    elif isinstance(counter, Phi):
        incomings = [
            value for value, pred in counter.incomings if pred.name in body
        ]
        if not incomings:
            return None
        for value in incomings:
            step = step_of(value, base_phi=counter)
            if step is None:
                return None
            steps.append(step)
        storage = counter
    else:
        return None
    if not steps or 0 in steps:
        return None
    if any((s > 0) != (steps[0] > 0) for s in steps):
        return None  # mixed directions
    chosen = min(steps, key=abs)
    return chosen, storage


def _entry_interval(
    analysis: IntervalAnalysis,
    value: Value,
    storage: Optional[Value],
    header: BasicBlock,
    body: Set[str],
    function: Function,
) -> Optional[Interval]:
    """The interval a value holds when the loop is first entered: the
    join of the refined environments along every entering edge."""
    preds = [
        b for b in function.blocks
        if b.name not in body
        and any(s is header for s in b.successors())
    ]
    if not preds:
        return None
    joined: Optional[Interval] = None
    for pred in preds:
        env = analysis.edge_env(pred, header)
        iv = None
        if storage is not None:
            if isinstance(storage, Phi):
                # A phi counter takes its entry value from the incoming
                # slot of this edge, not from the header env.
                incoming = next(
                    (v for v, p in storage.incomings if p is pred), None
                )
                if incoming is not None:
                    iv = analysis.interval_of(incoming, env)
            else:
                iv = env.get(storage)
        if iv is None:
            iv = analysis.interval_of(value, env)
        if iv is None:
            return None
        joined = iv if joined is None else joined.join(iv)
    return joined


def _invariant_storage(
    value: Value, body: Set[str], function: Function
) -> Optional[Value]:
    """The storage whose loop-entry interval describes ``value`` inside
    the loop: the slot of a load with no in-loop stores, or the value
    itself when it is defined outside the loop."""
    if isinstance(value, Load):
        slot = slot_of(value.ptr)
        if slot is not None and value.ptr is slot:
            written = any(
                isinstance(i, Store) and slot_of(i.ptr) is slot
                and i.parent is not None and i.parent.name in body
                for i in function.instructions()
            )
            return None if written else slot
    if isinstance(value, Constant):
        return value
    if isinstance(value, Instruction):
        if value.parent is not None and value.parent.name not in body:
            return value
        return None
    return value  # arguments, globals


def loop_trip_bounds(
    function: Function,
    analysis: Optional[IntervalAnalysis] = None,
    tree: Optional[DominatorTree] = None,
) -> Dict[str, LoopBound]:
    """Worst-case trip counts for the function's natural loops.

    A loop is bounded when some exiting comparison tests a
    constant-stepped induction variable against a loop-invariant bound,
    the exit test dominates every latch (so it runs every iteration),
    and the step cannot wrap the counter past the bound.  The bound is
    computed from the *loop-entry* intervals of the counter and the
    bound — the widened in-loop counter range is useless by design.
    """
    from repro.nfir.cfg import natural_loops

    if analysis is None:
        analysis = IntervalAnalysis(function)
    if tree is None:
        tree = DominatorTree(function)
    bounds: Dict[str, LoopBound] = {}
    by_name = {b.name: b for b in function.blocks}
    for header_name, body in natural_loops(function).items():
        header = by_name[header_name]
        latches = [
            b.name for b in function.blocks
            if b.name in body and any(s is header for s in b.successors())
        ]
        best: Optional[LoopBound] = None
        for block, term in _exiting_branches(function, body):
            if not all(tree.dominates(block.name, latch) for latch in latches):
                continue  # the test may be skipped on some iterations
            bound_ = _branch_bound(
                analysis, function, header, body, block, term
            )
            if bound_ is not None and (
                best is None or bound_.trip_max < best.trip_max
            ):
                best = bound_
        if best is not None:
            bounds[header_name] = best
    return bounds


def _branch_bound(
    analysis: IntervalAnalysis,
    function: Function,
    header: BasicBlock,
    body: Set[str],
    block: BasicBlock,
    term: CondBr,
) -> Optional[LoopBound]:
    cond = term.cond
    if not isinstance(cond, ICmp):
        return None
    type_ = _int_type(cond.lhs)
    if type_ is None:
        return None
    # Which condition value *stays* in the loop?
    true_in = term.if_true.name in body
    false_in = term.if_false.name in body
    if true_in == false_in:
        return None
    for counter, bound, mirrored in (
        (cond.lhs, cond.rhs, False), (cond.rhs, cond.lhs, True),
    ):
        stepped = _step_constant(counter, body, function)
        if stepped is None:
            continue
        step, storage = stepped
        bound_storage = _invariant_storage(bound, body, function)
        if bound_storage is None:
            continue
        init_iv = _entry_interval(
            analysis, counter, storage, header, body, function
        )
        bound_iv = _entry_interval(
            analysis, bound, bound_storage, header, body, function
        )
        if init_iv is None or bound_iv is None:
            continue
        predicate = cond.predicate if true_in else _NEGATED[cond.predicate]
        if mirrored:
            predicate = _MIRRORED[predicate]
        predicate = _unsigned_predicate(
            predicate, type_, init_iv, bound_iv
        ) if predicate in _SIGNED_TO_UNSIGNED else predicate
        if predicate is None:
            continue
        trip = _trip_from(
            predicate, type_, step, init_iv, bound_iv
        )
        if trip is None:
            continue
        return LoopBound(
            header=header.name,
            trip_max=trip,
            counter=storage.ref() if storage.name else counter.ref(),
            reason=(
                f"induction variable steps by {step} from {init_iv}"
                f" while {predicate} bound {bound_iv}"
            ),
        )
    return None


def _trip_from(
    predicate: str,
    type_: IntType,
    step: int,
    init_iv: Interval,
    bound_iv: Interval,
) -> Optional[int]:
    """Max iterations of ``for (c = init; c PRED bound; c += step)``,
    or ``None`` when the step direction/wrapping leaves it unbounded."""
    max_unsigned = type_.max_unsigned()
    if step > 0 and predicate in ("ult", "ule", "ne"):
        if predicate == "ne":
            # Must hit the bound exactly: step 1 from below.
            if step != 1 or init_iv.hi > bound_iv.lo:
                return None
            return bound_iv.hi - init_iv.lo
        span = bound_iv.hi - init_iv.lo + (1 if predicate == "ule" else 0)
        if span <= 0:
            return 0
        # The counter must not wrap past the bound between tests.
        last = bound_iv.hi - (1 if predicate == "ult" else 0)
        if last + step > max_unsigned:
            return None
        return -(-span // step)  # ceil
    if step < 0 and predicate in ("ugt", "uge"):
        magnitude = -step
        span = init_iv.hi - bound_iv.lo + (1 if predicate == "uge" else 0)
        if span <= 0:
            return 0
        floor = bound_iv.lo + (1 if predicate == "ugt" else 0)
        if floor - magnitude < 0:
            return None  # could wrap below zero and keep looping
        return -(-span // magnitude)
    return None
