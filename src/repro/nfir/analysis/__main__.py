"""Self-check entry point: ``python -m repro.nfir.analysis --self-check``.

Builds small known-shape functions (diamond, loop, unreachable block,
a deliberately broken module), runs the dominance/dataflow layers and
the full lint suite over them, and asserts the expected results.  CI
invokes this as a smoke test that the analysis stack is importable and
sane without needing the full pytest run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List


def _diamond():
    from repro.nfir import Function, I32, IRBuilder

    f = Function("pkt_handler")
    entry = f.add_block("entry")
    left = f.add_block("left")
    right = f.add_block("right")
    merge = f.add_block("merge")
    b = IRBuilder(f, entry)
    cond = b.icmp("ult", b.const(I32, 1), b.const(I32, 2))
    b.cond_br(cond, left, right)
    b.position_at_end(left)
    b.br(merge)
    b.position_at_end(right)
    b.br(merge)
    b.position_at_end(merge)
    b.ret()
    return f


def _counted_loop():
    from repro.nfir import Function, I32, IRBuilder

    f = Function("pkt_handler")
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b = IRBuilder(f, entry)
    slot = b.alloca(I32)
    b.store(b.const(I32, 0), slot)
    b.br(header)
    b.position_at_end(header)
    i = b.load(slot)
    cond = b.icmp("ult", i, b.const(I32, 10))
    b.cond_br(cond, body, exit_)
    b.position_at_end(body)
    b.store(b.add(b.load(slot), b.const(I32, 1)), slot)
    b.br(header)
    b.position_at_end(exit_)
    b.ret()
    return f


def _masked_table_reader():
    """A handler that reads a 4096-entry table through a masked
    (provably in [0, 255]) index: the interval domain must bound the
    index and the footprint domain must shrink the resident bytes."""
    from repro.nfir import Function, I32, IRBuilder, Module
    from repro.nfir.function import GlobalVariable
    from repro.nfir.types import ArrayType

    module = Module("absint_fixture")
    table = module.add_global(
        GlobalVariable("table", ArrayType(I32, 4096), kind="array")
    )
    f = Function("pkt_handler", args=(("hash", I32),))
    module.add_function(f)
    entry = f.add_block("entry")
    b = IRBuilder(f, entry)
    idx = b.and_(f.args[0], b.const(I32, 0xFF))
    cell = b.gep(table, [idx])
    b.load(cell)
    b.ret()
    return module


def self_check() -> List[str]:
    """Run the checks; returns a list of failure descriptions."""
    from repro.nfir import Module, verify_function
    from repro.nfir.analysis import (
        DominatorTree,
        Interval,
        IntervalAnalysis,
        default_registry,
        lint_module,
        liveness,
        loop_trip_bounds,
        maybe_uninitialized_loads,
        module_footprints,
        sarif_report,
    )

    failures: List[str] = []

    def check(ok: bool, what: str) -> None:
        if not ok:
            failures.append(what)

    diamond = _diamond()
    tree = DominatorTree(diamond)
    check(tree.dominates("entry", "merge"), "entry dominates merge")
    check(not tree.dominates("left", "merge"), "left must not dominate merge")
    check(tree.idom("merge") == "entry", "idom(merge) == entry")
    check(
        tree.frontier()["left"] == {"merge"},
        "dominance frontier of left is {merge}",
    )

    loop = _counted_loop()
    live = liveness(loop)
    check(
        any(v.name for v in live.in_sets["header"]),
        "loop header has live-in values",
    )
    check(
        not maybe_uninitialized_loads(loop),
        "counted loop has no uninitialized loads",
    )
    try:
        verify_function(loop)
    except Exception as exc:  # pragma: no cover - failure path
        failures.append(f"counted loop fails verification: {exc}")

    # Interval domain: the counted loop's trip bound is provable, and
    # inside the body the counter is refined below its bound.
    bounds = loop_trip_bounds(loop)
    check(
        bounds.get("header") is not None
        and bounds["header"].trip_max == 10,
        "interval domain proves the counted loop's 10-trip bound",
    )
    analysis = IntervalAnalysis(loop)
    body_env = analysis.env_in("body")
    body_ivs = [
        iv for value, iv in body_env.items()
        if getattr(value, "opcode", None) == "load"
    ]
    check(
        any(iv.hi <= 9 for iv in body_ivs),
        "branch refinement caps the counter inside the loop body",
    )
    check(
        Interval(0, 4).join(Interval(8, 12)) == Interval(0, 12),
        "interval join is the convex hull",
    )

    # Footprint domain: a masked index provably shrinks the resident
    # set of a declared table, keys it per-flow, and stays read-only.
    fixture = _masked_table_reader()
    footprints = module_footprints(fixture)
    table_fp = footprints["table"]
    check(table_fp.read_only, "masked table is read-only")
    check(table_fp.per_flow, "argument-derived index keys per-flow")
    check(
        table_fp.resident_proven and table_fp.resident_bytes == 1024,
        "interval-bounded index shrinks resident bytes to 1024",
    )

    registry = default_registry()
    check(len(registry) >= 13, "registry holds the built-in rules")
    module = Module("selfcheck")
    module.add_function(loop)
    report = lint_module(module)
    check(report.n_errors == 0, "clean module lints error-free")
    sarif = sarif_report([report], registry)
    check(sarif["version"] == "2.1.0", "SARIF version marker")
    check(
        len(sarif["runs"][0]["tool"]["driver"]["rules"]) == len(registry),
        "SARIF rule table matches registry",
    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.nfir.analysis",
        description="NFIR static-analysis self check",
    )
    parser.add_argument(
        "--self-check", action="store_true",
        help="run the built-in fixture checks",
    )
    args = parser.parse_args(argv)
    if not args.self_check:
        parser.print_help()
        return 0
    failures = self_check()
    if failures:
        for failure in failures:
            print(f"self-check FAILED: {failure}", file=sys.stderr)
        return 1
    print("repro.nfir.analysis self-check: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
