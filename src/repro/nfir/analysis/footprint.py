"""The state-footprint abstract domain: what an NF provably does to
each stateful global.

For every global the analysis derives, across all functions of the
module:

* **access mix** — read/write counts, including framework API calls
  (``hashmap_find`` reads its backing global, ``vector_push`` writes
  it), and from them the *read-only* verdict a scale-out race check
  cares about: replicas of a never-written table cannot diverge;
* **keying** — *per-flow* (indexed/keyed by packet-derived values, so
  concurrent flows touch disjoint entries) vs *cross-flow* (a shared
  scalar or an index independent of the packet, where every core
  contends on the same bytes);
* **worst-case resident bytes** — the byte span the NF can actually
  address, computed from the interval domain's bounds on GEP indices
  (an array indexed by ``hash & 0xff`` touches at most 256 entries no
  matter the declared capacity).  API-managed structures fall back to
  their declared backing store: baremetal NICs pre-size them.

Consumed by the second-generation lint rules: CL011 checks resident
bounds against the active target's memory regions, CL012 exonerates
read-only shared state from CL007's race warnings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.nfir.analysis.absint import Interval, IntervalAnalysis
from repro.nfir.annotate import (
    build_alloca_points_to,
    pointer_target,
    trace_pointer_root,
)
from repro.nfir.function import Function, GlobalVariable, Module
from repro.nfir.instructions import Call, GEP, Instruction, Load, Store
from repro.nfir.types import ArrayType, IntType, StructType
from repro.nfir.values import Value

__all__ = [
    "API_READS",
    "API_WRITES",
    "StateFootprint",
    "module_footprints",
    "read_only_globals",
]

#: Framework APIs that only *read* / only *write* their backing global
#: (mirrors repro.click.framework; kept local so repro.nfir stays
#: independent of the frontend package).
API_READS = frozenset({
    "hashmap_find", "hashmap_size", "vector_at", "vector_size",
})
API_WRITES = frozenset({
    "hashmap_insert", "hashmap_erase", "vector_push", "vector_remove",
})

#: keying verdicts.
PER_FLOW = "per-flow"
CROSS_FLOW = "cross-flow"


@dataclass
class StateFootprint:
    """What the module provably does to one stateful global."""

    name: str
    kind: str                #: scalar / array / struct / hashmap / vector
    declared_bytes: int
    n_reads: int = 0
    n_writes: int = 0
    #: worst-case bytes the NF can address (<= declared_bytes); equals
    #: declared_bytes when no range proof narrows it.
    resident_bytes: int = 0
    #: whether the resident bound is sharper than the declaration.
    resident_proven: bool = False
    keying: str = CROSS_FLOW

    @property
    def read_only(self) -> bool:
        """Only ever loaded (and read via read-only APIs) — replicas
        cannot diverge under scale-out."""
        return self.n_reads > 0 and self.n_writes == 0

    @property
    def accessed(self) -> bool:
        return self.n_reads > 0 or self.n_writes > 0

    @property
    def per_flow(self) -> bool:
        return self.keying == PER_FLOW

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "declared_bytes": self.declared_bytes,
            "resident_bytes": self.resident_bytes,
            "resident_proven": self.resident_proven,
            "n_reads": self.n_reads,
            "n_writes": self.n_writes,
            "read_only": self.read_only,
            "keying": self.keying,
        }


def read_only_globals(module: Module) -> Set[str]:
    """Names of stateful globals the module never writes (through
    stores or writing framework APIs) but does read somewhere — the
    cheap, interval-free core of the read-only verdict."""
    reads: Set[str] = set()
    writes: Set[str] = set()
    for function in module.functions.values():
        for instr in function.instructions():
            if isinstance(instr, Load):
                root = trace_pointer_root(instr.ptr)
                if isinstance(root, GlobalVariable):
                    reads.add(root.name)
            elif isinstance(instr, Store):
                root = trace_pointer_root(instr.ptr)
                if isinstance(root, GlobalVariable):
                    writes.add(root.name)
            elif isinstance(instr, Call):
                for arg in instr.args:
                    root = trace_pointer_root(arg)
                    if not isinstance(root, GlobalVariable):
                        continue
                    if instr.callee in API_READS:
                        reads.add(root.name)
                    elif instr.callee in API_WRITES:
                        writes.add(root.name)
                    else:
                        reads.add(root.name)
                        writes.add(root.name)
    return reads - writes


def _stores_by_slot(function: Function) -> Dict[int, List[Value]]:
    """Values stored into each alloca slot, flow-insensitively (a may-
    analysis is all the packet-derivation test needs)."""
    from repro.nfir.analysis.dataflow import slot_of

    out: Dict[int, List[Value]] = {}
    for instr in function.instructions():
        if isinstance(instr, Store):
            slot = slot_of(instr.ptr)
            if slot is not None:
                out.setdefault(id(slot), []).append(instr.value)
    return out


def _packet_derived(
    value: Value,
    alloca_map,
    stores_by_slot: Dict[int, List[Value]],
    budget: int = 200,
) -> bool:
    """Whether a value's operand DAG reaches packet bytes (a load from
    the packet buffer, a packet-handler argument, or an API result) —
    the test that makes an index *flow-keyed*.  Chases values through
    local slots (the frontend round-trips everything through allocas),
    including pointer values: a hashmap key struct filled from header
    fields is packet-derived."""
    from repro.nfir.analysis.dataflow import slot_of
    from repro.nfir.instructions import Alloca
    from repro.nfir.values import Argument

    seen: Set[int] = set()
    stack = [value]
    while stack and len(seen) < budget:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, Argument):
            return True
        if isinstance(node, (Load, GEP, Alloca)):
            ptr = node if isinstance(node, (GEP, Alloca)) else node.ptr
            if pointer_target(ptr, alloca_map) == "packet":
                return True
            slot = slot_of(ptr)
            if slot is not None:
                stack.extend(stores_by_slot.get(id(slot), ()))
            continue
        if isinstance(node, Call):
            return True
        if isinstance(node, Instruction):
            stack.extend(node.operands)
    return False


def _access_span(
    ptr: Value, access_bytes: int, lookup
) -> Optional[Tuple[int, int]]:
    """Byte span ``[lo, hi)`` of one load/store relative to its root
    global, walking the GEP chain with interval bounds on every array
    index (``None`` when the pointer is not a GEP chain off a global).
    """
    chain: List[GEP] = []
    node = ptr
    while isinstance(node, GEP):
        chain.append(node)
        node = node.base
    if not isinstance(node, GlobalVariable):
        return None
    lo, hi = 0, 0
    for gep in reversed(chain):
        pointee = gep.base.type.pointee  # type: ignore[union-attr]
        for idx in gep.indices:
            if isinstance(idx, str):
                assert isinstance(pointee, StructType)
                offset = pointee.field_offset(idx)
                lo += offset
                hi += offset
                pointee = pointee.field_type(idx)
            else:
                assert isinstance(pointee, ArrayType)
                element_bytes = pointee.element.size_bytes()
                iv: Optional[Interval] = lookup(idx)
                if iv is None:
                    iv = Interval(0, max(pointee.count - 1, 0))
                else:
                    capped = iv.meet(Interval(0, max(pointee.count - 1, 0)))
                    iv = capped if capped is not None else Interval(
                        0, max(pointee.count - 1, 0)
                    )
                lo += iv.lo * element_bytes
                hi += iv.hi * element_bytes
                pointee = pointee.element
    return lo, hi + access_bytes


def module_footprints(
    module: Module,
    analyses: Optional[Dict[str, IntervalAnalysis]] = None,
) -> Dict[str, StateFootprint]:
    """The state footprint of every global in ``module``.

    ``analyses`` supplies pre-solved interval fixpoints per function
    (e.g. from a shared lint context); missing ones are solved here.
    """
    if analyses is None:
        analyses = {}
    footprints = {
        name: StateFootprint(
            name=name,
            kind=g.kind,
            declared_bytes=g.size_bytes,
            resident_bytes=g.size_bytes,
        )
        for name, g in module.globals.items()
    }
    spans: Dict[str, List[Tuple[int, int]]] = {name: [] for name in footprints}
    unbounded: Set[str] = set()

    for function in module.functions.values():
        analysis = analyses.get(function.name)
        if analysis is None:
            analysis = analyses[function.name] = IntervalAnalysis(function)
        alloca_map = build_alloca_points_to(function)
        slot_stores = _stores_by_slot(function)
        for block in function.blocks:
            for instr, lookup in analysis.walk(block):
                if isinstance(instr, (Load, Store)):
                    ptr = instr.ptr
                    root = trace_pointer_root(ptr)
                    if not isinstance(root, GlobalVariable):
                        continue
                    fp = footprints[root.name]
                    if isinstance(instr, Load):
                        fp.n_reads += 1
                        access_bytes = instr.type.size_bytes()
                    else:
                        fp.n_writes += 1
                        access_bytes = instr.value.type.size_bytes()
                    span = _access_span(ptr, access_bytes, lookup)
                    if span is None:
                        unbounded.add(root.name)
                    else:
                        spans[root.name].append(span)
                    index_values = [
                        idx for idx in _gep_indices(ptr)
                        if isinstance(idx, Value)
                    ]
                    if index_values and any(
                        _packet_derived(idx, alloca_map, slot_stores)
                        for idx in index_values
                    ):
                        fp.keying = PER_FLOW
                elif isinstance(instr, Call):
                    backing = [
                        arg for arg in instr.args
                        if isinstance(
                            trace_pointer_root(arg), GlobalVariable
                        )
                    ]
                    for arg in backing:
                        root = trace_pointer_root(arg)
                        fp = footprints[root.name]
                        if instr.callee in API_READS:
                            fp.n_reads += 1
                        elif instr.callee in API_WRITES:
                            fp.n_writes += 1
                        else:
                            fp.n_reads += 1
                            fp.n_writes += 1
                        # API-managed structures are addressed by key,
                        # not byte span: the backing store stays fully
                        # resident (pre-sized, no runtime allocation).
                        unbounded.add(root.name)
                        keys = [a for a in instr.args if a is not arg]
                        if any(
                            _packet_derived(k, alloca_map, slot_stores)
                            for k in keys
                        ):
                            fp.keying = PER_FLOW

    for name, fp in footprints.items():
        if name in unbounded or not spans[name]:
            continue
        lo = min(s[0] for s in spans[name])
        hi = max(s[1] for s in spans[name])
        resident = min(max(hi - lo, 0), fp.declared_bytes)
        if resident < fp.declared_bytes:
            fp.resident_bytes = resident
            fp.resident_proven = True
    return footprints


def _gep_indices(ptr: Value) -> Iterable[object]:
    node = ptr
    while isinstance(node, GEP):
        yield from node.indices
        node = node.base
