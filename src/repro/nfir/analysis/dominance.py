"""Dominator tree and dominance frontier for NFIR functions.

Implements the Cooper-Harvey-Kennedy iterative algorithm ("A Simple,
Fast Dominance Algorithm") over the function's basic blocks directly —
no graph library needed — and exposes O(1) ``dominates`` queries via a
DFS interval numbering of the tree.  This is the shared foundation the
verifier's SSA checks, the loop analyses in :mod:`repro.nfir.cfg`, and
the lint passes all build on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.nfir.block import BasicBlock
from repro.nfir.function import Function


def block_predecessors(function: Function) -> Dict[str, List[BasicBlock]]:
    """Predecessor lists for every block (by block name)."""
    preds: Dict[str, List[BasicBlock]] = {b.name: [] for b in function.blocks}
    for block in function.blocks:
        for successor in block.successors():
            if successor.name in preds:
                preds[successor.name].append(block)
    return preds


class DominatorTree:
    """The dominator tree of a function's CFG.

    Only blocks reachable from the entry participate; unreachable
    blocks are reported via :attr:`reachable` and every ``dominates``
    query involving one returns ``False``.
    """

    def __init__(self, function: Function) -> None:
        self.function = function
        self.entry = function.entry.name
        preds = block_predecessors(function)

        # Reverse postorder over reachable blocks (iterative DFS).
        postorder: List[str] = []
        state: Dict[str, int] = {}
        stack: List[tuple] = [(function.entry, iter(function.entry.successors()))]
        state[self.entry] = 1
        while stack:
            block, it = stack[-1]
            advanced = False
            for succ in it:
                if succ.name not in state:
                    state[succ.name] = 1
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                postorder.append(block.name)
                stack.pop()
        rpo = list(reversed(postorder))
        self.reachable: Set[str] = set(rpo)
        self._rpo_index: Dict[str, int] = {name: i for i, name in enumerate(rpo)}

        # Cooper-Harvey-Kennedy fixpoint over idoms.
        idom: Dict[str, str] = {self.entry: self.entry}

        def intersect(a: str, b: str) -> str:
            while a != b:
                while self._rpo_index[a] > self._rpo_index[b]:
                    a = idom[a]
                while self._rpo_index[b] > self._rpo_index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for name in rpo[1:]:
                candidates = [
                    p.name for p in preds[name]
                    if p.name in idom
                ]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for other in candidates[1:]:
                    new_idom = intersect(new_idom, other)
                if idom.get(name) != new_idom:
                    idom[name] = new_idom
                    changed = True
        self._idom = idom

        # Children lists and a DFS interval numbering for O(1) queries.
        self.children: Dict[str, List[str]] = {name: [] for name in rpo}
        for name in rpo:
            if name != self.entry:
                self.children[self._idom[name]].append(name)
        self._tin: Dict[str, int] = {}
        self._tout: Dict[str, int] = {}
        clock = 0
        visit: List[tuple] = [(self.entry, False)]
        while visit:
            name, done = visit.pop()
            if done:
                self._tout[name] = clock
                clock += 1
                continue
            self._tin[name] = clock
            clock += 1
            visit.append((name, True))
            for child in reversed(self.children[name]):
                visit.append((child, False))

        self._frontier: Optional[Dict[str, Set[str]]] = None
        self._preds = preds

    def idom(self, name: str) -> Optional[str]:
        """Immediate dominator of a block (the entry's is itself);
        ``None`` for unreachable blocks."""
        return self._idom.get(name)

    def dominates(self, a: str, b: str) -> bool:
        """Whether block ``a`` dominates block ``b`` (reflexive)."""
        if a not in self._tin or b not in self._tin:
            return False
        return self._tin[a] <= self._tin[b] and self._tout[b] <= self._tout[a]

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def depth(self, name: str) -> int:
        """Tree depth of a block (entry = 0)."""
        if name not in self._idom:
            raise KeyError(f"block {name!r} is unreachable")
        d = 0
        while name != self.entry:
            name = self._idom[name]
            d += 1
        return d

    def frontier(self) -> Dict[str, Set[str]]:
        """Dominance frontier of every reachable block (computed once,
        cached): the blocks where a definition's dominance ends —
        exactly the phi-placement sites of SSA construction."""
        if self._frontier is None:
            frontier: Dict[str, Set[str]] = {n: set() for n in self.reachable}
            for name in self.reachable:
                preds = [
                    p.name for p in self._preds[name]
                    if p.name in self.reachable
                ]
                for pred in preds:
                    # Walk the runner up until it strictly dominates
                    # the join (not "until idom": the entry's idom is
                    # itself, so a back edge into the entry puts it in
                    # its own frontier).
                    runner = pred
                    while not self.strictly_dominates(runner, name):
                        frontier[runner].add(name)
                        if runner == self.entry:
                            break
                        runner = self._idom[runner]
            self._frontier = frontier
        return self._frontier
