"""Lint baselines: adopt the linter on a brownfield NF without fixing
(or silencing) every pre-existing finding first.

``clara lint --write-baseline FILE`` records a fingerprint for every
current diagnostic; later runs with ``--baseline FILE`` report only
*new* findings — the exit-code protocol then gates on regressions, not
on legacy debt.  Fingerprints hash the rule code and the *structural*
location (module/function/block/instruction ref plus a disambiguating
ordinal), never the message text, so rewording a diagnostic or adding
data does not invalidate a baseline.

The file format is schema-versioned JSON, one fingerprint list per
module, sorted for stable diffs under version control.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import ClaraError
from repro.nfir.analysis.lint import Diagnostic, LintReport

__all__ = [
    "LINT_BASELINE_SCHEMA",
    "LintBaseline",
    "apply_baseline",
    "baseline_from_reports",
    "diagnostic_fingerprint",
    "report_fingerprints",
]

#: Bump when the fingerprint recipe or the file layout changes;
#: loading a file with a different schema is a hard error (a stale
#: baseline silently matching nothing would resurface every legacy
#: finding as "new").
LINT_BASELINE_SCHEMA = 1


def diagnostic_fingerprint(
    module_name: str, diag: Diagnostic, ordinal: int = 0
) -> str:
    """A 16-hex-digit stable identity for one diagnostic.

    ``ordinal`` distinguishes otherwise-identical findings at the same
    structural location (the n-th CL001 on one instruction).
    """
    parts = "|".join((
        diag.rule,
        module_name,
        diag.function or "",
        diag.block or "",
        diag.instruction or "",
        str(ordinal),
    ))
    return hashlib.sha256(parts.encode("utf-8")).hexdigest()[:16]


def report_fingerprints(report: LintReport) -> List[str]:
    """Fingerprints of a report's diagnostics, in diagnostic order."""
    counts: Dict[Tuple[str, str, str, str], int] = {}
    out: List[str] = []
    for diag in report.diagnostics:
        key = (
            diag.rule,
            diag.function or "",
            diag.block or "",
            diag.instruction or "",
        )
        ordinal = counts.get(key, 0)
        counts[key] = ordinal + 1
        out.append(
            diagnostic_fingerprint(report.module_name, diag, ordinal)
        )
    return out


@dataclass
class LintBaseline:
    """Accepted (legacy) diagnostic fingerprints, per module."""

    target: Optional[str] = None
    fingerprints: Dict[str, Set[str]] = field(default_factory=dict)

    def __contains__(self, pair: Tuple[str, str]) -> bool:
        module, fingerprint = pair
        return fingerprint in self.fingerprints.get(module, ())

    @property
    def n_fingerprints(self) -> int:
        return sum(len(v) for v in self.fingerprints.values())

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": LINT_BASELINE_SCHEMA,
            "kind": "lint_baseline",
            "target": self.target,
            "fingerprints": {
                module: sorted(fps)
                for module, fps in sorted(self.fingerprints.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LintBaseline":
        schema = data.get("schema")
        if schema != LINT_BASELINE_SCHEMA:
            raise ClaraError(
                f"unsupported lint-baseline schema {schema!r}"
                f" (expected {LINT_BASELINE_SCHEMA}); regenerate with"
                " clara lint --write-baseline"
            )
        raw = data.get("fingerprints")
        if not isinstance(raw, Mapping):
            raise ClaraError("lint baseline has no fingerprint table")
        return cls(
            target=data.get("target"),
            fingerprints={
                str(module): {str(fp) for fp in fps}
                for module, fps in raw.items()
            },
        )

    def save(self, path: "Path | str") -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: "Path | str") -> "LintBaseline":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ClaraError(f"lint baseline not found: {path}") from None
        except json.JSONDecodeError as exc:
            raise ClaraError(
                f"lint baseline {path} is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(data)


def baseline_from_reports(
    reports: Sequence[LintReport], target: Optional[str] = None
) -> LintBaseline:
    """A baseline accepting every current diagnostic."""
    return LintBaseline(
        target=target,
        fingerprints={
            report.module_name: set(report_fingerprints(report))
            for report in reports
        },
    )


def apply_baseline(
    reports: Sequence[LintReport], baseline: LintBaseline
) -> Tuple[List[LintReport], int]:
    """Filter baselined diagnostics out of ``reports``.

    Returns ``(new_reports, n_baselined)``: fresh
    :class:`LintReport` s holding only diagnostics *absent* from the
    baseline (severity totals and exit codes then reflect regressions
    only), plus the number filtered out.  Suppressed diagnostics pass
    through untouched — they were already excluded from the totals.
    """
    filtered: List[LintReport] = []
    n_baselined = 0
    for report in reports:
        accepted = baseline.fingerprints.get(report.module_name, set())
        kept: List[Diagnostic] = []
        for diag, fingerprint in zip(
            report.diagnostics, report_fingerprints(report)
        ):
            if fingerprint in accepted:
                n_baselined += 1
            else:
                kept.append(diag)
        filtered.append(
            LintReport(
                module_name=report.module_name,
                diagnostics=kept,
                suppressed=list(report.suppressed),
            )
        )
    return filtered, n_baselined
